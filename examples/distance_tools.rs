//! Distance-measure toolbox tour: 1-NN classification with ED, DTW, cDTW
//! (including LB_Keogh pruning and window tuning), and SBD on one dataset.
//!
//! Mirrors the workflow behind the paper's Table 2 on a single synthetic
//! dataset so the output is quick to read.
//!
//! ```text
//! cargo run --release --example distance_tools
//! ```

use std::time::Instant;

use kshape_repro::prelude::*;
use tsdata::collection::split_alternating;
use tsdata::generators::{two_patterns, GenParams};
use tsdist::dtw::Dtw;
use tsdist::nn::one_nn_accuracy_lb;
use tsdist::tune::{default_candidates, tune_window};
use tsrand::StdRng;

fn timed<D: Distance>(
    d: &D,
    train: &tsdata::Dataset,
    test: &tsdata::Dataset,
    sink: &MemorySink,
) -> (f64, f64) {
    let t = Instant::now();
    let acc = one_nn_accuracy_with(d, train, test, &NnOptions::new().with_recorder(sink))
        .expect("split is clean");
    (acc, t.elapsed().as_secs_f64())
}

fn main() {
    // Four-class Two-Patterns-style data: order of step events matters,
    // positions jitter.
    let params = GenParams {
        n_per_class: 25,
        len: 128,
        noise: 0.3,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(11);
    let mut data = two_patterns::generate(&params, &mut rng);
    data.z_normalize();
    let split = split_alternating(data);

    println!(
        "Two-Patterns dataset: {} train / {} test series of length {}\n",
        split.train.n_series(),
        split.test.n_series(),
        split.train.series_len()
    );

    let sink = MemorySink::new();
    let (acc, secs) = timed(&EuclideanDistance, &split.train, &split.test, &sink);
    println!("ED        accuracy {acc:.3}   ({secs:.3}s)");
    let ed_secs = secs;

    let (acc, secs) = timed(&Dtw::unconstrained(), &split.train, &split.test, &sink);
    println!(
        "DTW       accuracy {acc:.3}   ({secs:.3}s, {:.0}x ED)",
        secs / ed_secs
    );

    // Tune the warping window on the training half, paper-style.
    let m = split.train.series_len();
    let candidates = default_candidates(m);
    let (w, loo) = tune_window(&split.train, &candidates);
    println!(
        "cDTW-opt  window {w} ({:.0}% of m), leave-one-out accuracy {loo:.3}",
        100.0 * w as f64 / m as f64
    );
    let (acc, secs) = timed(&Dtw::with_window(w), &split.train, &split.test, &sink);
    println!(
        "cDTW-opt  accuracy {acc:.3}   ({secs:.3}s, {:.0}x ED)",
        secs / ed_secs
    );

    // LB_Keogh-pruned search: same answers, fewer DP runs.
    let t = Instant::now();
    let (acc_lb, pruned) = one_nn_accuracy_lb(Some(w), &split.train, &split.test);
    let secs_lb = t.elapsed().as_secs_f64();
    println!(
        "cDTW-LB   accuracy {acc_lb:.3}   ({secs_lb:.3}s, pruned {:.0}% of candidates)",
        100.0 * pruned
    );
    assert!((acc - acc_lb).abs() < 1e-12, "LB pruning must be exact");

    let (acc, secs) = timed(&Sbd::new(), &split.train, &split.test, &sink);
    println!(
        "SBD       accuracy {acc:.3}   ({secs:.3}s, {:.0}x ED)",
        secs / ed_secs
    );

    println!(
        "\ntelemetry: {} full scans, {} train/test comparisons total",
        sink.counter_total("nn.queries") / split.test.n_series() as u64,
        sink.counter_total("nn.comparisons")
    );
    println!("SBD needs no tuning and runs orders of magnitude faster than DTW");
    println!("while matching its accuracy — the Table 2 story in miniature.");
}
