//! ECG clustering: the paper's motivating scenario (Figure 1).
//!
//! Two heartbeat morphologies recorded out of phase ("depending on when we
//! start taking the measurements"). A shape-based method must group them by
//! morphology regardless of the phase. We compare k-Shape against k-means
//! with Euclidean distance and print the recovered centroids next to the
//! true class prototypes.
//!
//! ```text
//! cargo run --release --example ecg_clustering
//! ```

use kshape_repro::prelude::*;
use tsdata::generators::{ecg, GenParams};
use tsdata::normalize::z_normalize;
use tseval::rand_index::rand_index;
use tsrand::StdRng;

fn main() {
    let params = GenParams {
        n_per_class: 30,
        len: 96,
        noise: 0.2,
        max_shift_frac: 0.25, // heartbeats out of phase
        amp_jitter: 1.4,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut data = ecg::generate(&params, &mut rng);
    data.z_normalize();

    println!(
        "ECG dataset: {} beats of length {}, two morphologies, strong phase jitter\n",
        data.n_series(),
        data.series_len()
    );

    // --- k-means with ED: phase jitter defeats the one-to-one alignment ---
    let km = kmeans_with(
        &data.series,
        &EuclideanDistance,
        &KMeansOptions::new(2).with_seed(7),
    )
    .expect("ECG series are clean");
    let km_rand = rand_index(&km.labels, &data.labels);

    // --- k-Shape: SBD realigns members before comparing ---
    let ks = KShape::fit_with(&data.series, &KShapeOptions::new(2).with_seed(7))
        .expect("ECG series are clean");
    let ks_rand = rand_index(&ks.labels, &data.labels);

    println!("Rand index:  k-AVG+ED {km_rand:.3}   k-Shape {ks_rand:.3}");
    assert!(
        ks_rand >= km_rand,
        "k-Shape should not lose on out-of-phase ECG"
    );

    // --- how close are the recovered centroids to the true prototypes? ---
    println!("\nSBD from each k-Shape centroid to the closest class prototype:");
    for (j, c) in ks.centroids.iter().enumerate() {
        let best: f64 = (0..2)
            .map(|class| sbd(&z_normalize(&ecg::prototype(class, params.len)), c).dist)
            .fold(f64::INFINITY, f64::min);
        println!("  centroid {j}: SBD {best:.4}");
    }
    println!("\nk-Shape recovers the beat morphologies despite the phase shifts;");
    println!("plain k-means mixes them because ED compares index-to-index.");
}
