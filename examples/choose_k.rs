//! Choosing the number of clusters with intrinsic criteria.
//!
//! The paper (footnote 2) notes that when no gold standard exists, k can be
//! estimated "by varying k and evaluating clustering quality with criteria
//! that capture information intrinsic to the data alone". This example
//! sweeps k over a mixed-shape dataset whose true class count is 4 and
//! prints the silhouette (peaks at the natural k) and inertia (elbow) per
//! candidate.
//!
//! ```text
//! cargo run --release --example choose_k
//! ```

use kshape::validity::{best_by_silhouette, sweep_k};
use tsdata::generators::{warped, GenParams};
use tsrand::StdRng;

fn main() {
    let true_k = 4;
    let params = GenParams {
        n_per_class: 15,
        len: 96,
        noise: 0.15,
        max_shift_frac: 0.1,
        amp_jitter: 1.3,
    };
    let mut rng = StdRng::seed_from_u64(77);
    let mut data = warped::generate(true_k, &params, &mut rng);
    data.z_normalize();

    println!(
        "dataset: {} series of length {}, true class count {true_k} (hidden)\n",
        data.n_series(),
        data.series_len()
    );
    println!("k   silhouette  inertia   converged");
    println!("-------------------------------------");
    let candidates = sweep_k(&data.series, 2..=7, 3, 42);
    for c in &candidates {
        println!(
            "{}   {:+.4}     {:>7.3}   {}",
            c.k, c.silhouette, c.inertia, c.result.converged
        );
    }
    let best = best_by_silhouette(&candidates);
    println!("\nsilhouette picks k = {}", best.k);
    if best.k == true_k {
        println!("…which matches the hidden class count.");
    } else {
        println!("(hidden class count was {true_k}; inspect the elbow as a second opinion)");
    }
}
