//! Seasonal-profile mining: group "market" series by the shape of their
//! seasonal pattern, ignoring inflation (offset/amplitude) and reporting
//! the cluster prototypes.
//!
//! This is the paper's Section 2.2 finance motivation — "analyze seasonal
//! variations in currency values on foreign exchange markets without being
//! biased by inflation" — run end-to-end: generate harmonically distinct
//! seasonal classes, distort each member with scaling, offset, phase shift,
//! and noise, then compare k-Shape to PAM+cDTW and hierarchical clustering.
//!
//! ```text
//! cargo run --release --example seasonal_profiles
//! ```

use kshape_repro::prelude::*;
use tsdata::generators::{seasonal, GenParams};
use tsdist::dtw::Dtw;
use tseval::nmi::normalized_mutual_information;
use tseval::rand_index::rand_index;
use tsrand::StdRng;

fn main() {
    let params = GenParams {
        n_per_class: 25,
        len: 120,
        noise: 0.35,
        max_shift_frac: 0.3, // series start at arbitrary points of the cycle
        amp_jitter: 2.0,     // strong "inflation"
    };
    let k = 3;
    let mut rng = StdRng::seed_from_u64(2026);
    let mut data = seasonal::generate(k, 2.0, &params, &mut rng);
    data.z_normalize();

    println!(
        "seasonal profiles: {} series, {} harmonic-mixture classes, heavy\n\
         amplitude and phase distortion\n",
        data.n_series(),
        k
    );

    // k-Shape.
    let ks = KShape::fit_with(&data.series, &KShapeOptions::new(k).with_seed(1))
        .expect("seasonal series are clean");
    report("k-Shape", &ks.labels, &data.labels);

    // PAM with cDTW-5 — the strongest non-scalable competitor.
    let w = (0.05 * params.len as f64).round() as usize;
    let matrix = DissimilarityMatrix::compute(&data.series, &Dtw::with_window(w));
    let pm = pam_with(&matrix, &PamOptions::new(k).with_max_iter(100)).expect("finite matrix");
    report("PAM+cDTW", &pm.labels, &data.labels);

    // Hierarchical (complete linkage) over SBD.
    let sbd_matrix = DissimilarityMatrix::compute(&data.series, &Sbd::new());
    let hc_opts = HierarchicalOptions::new(k).with_linkage(Linkage::Complete);
    let hc = hierarchical_cluster_with(&sbd_matrix, &hc_opts).expect("finite matrix");
    report("H-C+SBD", &hc, &data.labels);

    // Show what each k-Shape cluster's prototype looks like: dominant
    // harmonic content via zero crossings.
    println!("\nk-Shape cluster prototypes (zero crossings ≈ dominant frequency):");
    for (j, c) in ks.centroids.iter().enumerate() {
        let zc = c
            .windows(2)
            .filter(|w| w[0].signum() != w[1].signum())
            .count();
        println!(
            "  cluster {j}: {zc} zero crossings over {} samples",
            c.len()
        );
    }
}

fn report(name: &str, labels: &[usize], truth: &[usize]) {
    println!(
        "{name:<10} Rand {:.3}   NMI {:.3}",
        rand_index(labels, truth),
        normalized_mutual_information(labels, truth)
    );
}
