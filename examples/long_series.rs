//! Clustering very long series via dimensionality reduction.
//!
//! The paper notes (Section 3.3) that k-Shape's per-iteration cost is
//! dominated by the series length `m` and, in the rare `m ≫ n` regime,
//! recommends "segmentation or dimensionality reduction approaches … to
//! sufficiently reduce the length of the sequences". This example clusters
//! length-2048 series directly and after PAA / Haar reduction to 128
//! samples, comparing wall time and Rand index.
//!
//! ```text
//! cargo run --release --example long_series
//! ```

use std::time::Instant;

use kshape_repro::prelude::*;
use tsdata::generators::{seasonal, GenParams};
use tsdata::normalize::z_normalize;
use tsdata::reduce::{haar_reduce, paa};
use tseval::rand_index::rand_index;
use tsrand::StdRng;

fn cluster(series: &[Vec<f64>], truth: &[usize], label: &str) {
    let t = Instant::now();
    let opts = KShapeOptions::new(3).with_seed(9).with_max_iter(50);
    let r = KShape::fit_with(series, &opts).expect("seasonal series are clean");
    let secs = t.elapsed().as_secs_f64();
    println!(
        "{label:<22} m = {:>4}   Rand {:.3}   {:.2}s",
        series[0].len(),
        rand_index(&r.labels, truth),
        secs
    );
}

fn main() {
    let m = 2048usize;
    let params = GenParams {
        n_per_class: 12,
        len: m,
        noise: 0.3,
        max_shift_frac: 0.05,
        amp_jitter: 1.3,
    };
    let mut rng = StdRng::seed_from_u64(123);
    let mut data = seasonal::generate(3, 4.0, &params, &mut rng);
    data.z_normalize();
    println!(
        "{} series of length {m}, 3 seasonal classes\n",
        data.n_series()
    );

    cluster(&data.series, &data.labels, "full resolution");

    let target = 128usize;
    let paa_series: Vec<Vec<f64>> = data
        .series
        .iter()
        .map(|s| z_normalize(&paa(s, target)))
        .collect();
    cluster(&paa_series, &data.labels, "PAA to 128");

    let haar_series: Vec<Vec<f64>> = data
        .series
        .iter()
        .map(|s| z_normalize(&haar_reduce(s, target)))
        .collect();
    cluster(&haar_series, &data.labels, "Haar (128 coeffs)");

    println!("\nPAA preserves the cluster structure at a fraction of the cost — the");
    println!("mitigation the paper prescribes for m >> n. Note the trade-off: PAA");
    println!("keeps the time axis, so SBD's shift handling still works; the Haar");
    println!("coefficient space scrambles time, so phase-shifted members stop");
    println!("aligning and accuracy can drop. Prefer PAA (or any segmentation)");
    println!("before a shift-invariant method.");
}
