//! Quickstart: cluster a small set of time series with k-Shape.
//!
//! Generates a three-class synthetic dataset (Cylinder–Bell–Funnel, the
//! classic benchmark from the paper's scalability study), clusters it with
//! k-Shape, and scores the result against the known classes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kshape_repro::prelude::*;
use tsdata::generators::cbf;
use tsdata::normalize::z_normalize_in_place;
use tseval::rand_index::{adjusted_rand_index, rand_index};
use tsrand::StdRng;

fn main() {
    // 1. Generate 60 labeled series: cylinder / bell / funnel, length 128.
    let mut rng = StdRng::seed_from_u64(42);
    let mut series = Vec::new();
    let mut truth = Vec::new();
    for class in 0..3 {
        for _ in 0..20 {
            let mut s = cbf::generate_one(class, 128, &mut rng);
            // 2. z-normalize — the paper's mandatory preprocessing; SBD is
            //    scale invariant but centroids expect centered members.
            z_normalize_in_place(&mut s);
            series.push(s);
            truth.push(class);
        }
    }

    // 3. Cluster with k-Shape.
    let result = KShape::fit_with(&series, &KShapeOptions::new(3).with_seed(42))
        .expect("CBF series are clean");

    // 4. Score against the generating classes.
    println!("k-Shape on CBF (n = {}, m = 128, k = 3)", series.len());
    println!("  converged:            {}", result.converged);
    println!("  iterations:           {}", result.iterations);
    println!("  inertia (Σ SBD²):     {:.3}", result.inertia);
    println!(
        "  Rand index:           {:.3}",
        rand_index(&result.labels, &truth)
    );
    println!(
        "  Adjusted Rand index:  {:.3}",
        adjusted_rand_index(&result.labels, &truth)
    );

    // 5. The centroids are z-normalized shapes you can plot directly.
    for (j, c) in result.centroids.iter().enumerate() {
        let peak = c.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let argmax = c
            .iter()
            .position(|&v| v == peak)
            .expect("non-empty centroid");
        println!("  centroid {j}: peak {peak:.2} at t = {argmax}");
    }
}
