//! Chaos acceptance suite for `tsserve` (DESIGN.md §8).
//!
//! Every injected fault — garbage HTTP bytes, truncated bodies, NaN /
//! ragged / constant series, slow-loris clients, worker panics,
//! overload bursts — must yield a typed HTTP error or a shed 503;
//! never a process panic, never a hang past the request deadline. A
//! drain must finish in-flight work, and a restart over the same
//! checkpoint directory must warm-start and serve byte-identical
//! assignments without refitting.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tsdata::corrupt::{corrupt_bytes, ByteFault};
use tsrand::StdRng;
use tsserve::loadgen::{self, http_request, parse_response, raw_exchange, request_bytes};
use tsserve::{ServeConfig, Server, ServerHandle};

/// Short-deadline config sized for tests; `f` tweaks the knobs.
fn boot(f: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        read_deadline: Duration::from_millis(400),
        ..ServeConfig::default()
    };
    f(&mut config);
    Server::bind(config).expect("bind").spawn()
}

/// Two well-separated shape clusters: sines and spiky pulses.
fn two_cluster_body(n_per: usize, m: usize, k: usize, deadline_ms: u64) -> String {
    let mut rows = Vec::new();
    for i in 0..n_per {
        let phase = 0.2 * i as f64;
        let sine: Vec<String> = (0..m)
            .map(|t| format!("{:?}", (t as f64 * 0.3 + phase).sin()))
            .collect();
        rows.push(format!("[{}]", sine.join(",")));
        let pulse: Vec<String> = (0..m)
            .map(|t| {
                let x = if (t + i) % 8 < 2 { 3.0 } else { -0.5 };
                format!("{x:?}")
            })
            .collect();
        rows.push(format!("[{}]", pulse.join(",")));
    }
    format!(
        "{{\"series\":[{}],\"k\":{k},\"seed\":7,\"deadline_ms\":{deadline_ms}}}",
        rows.join(",")
    )
}

fn assign_body(n_per: usize, m: usize, deadline_ms: u64) -> String {
    let fit = two_cluster_body(n_per, m, 2, deadline_ms);
    // Reuse the series array, swap the trailing fields.
    let series_end = fit.rfind("],\"k\":").unwrap();
    format!("{}],\"deadline_ms\":{deadline_ms}}}", &fit[..series_end])
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn fit_assign_health_round_trip() {
    let server = boot(|_| {});
    let addr = server.addr();

    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/models/demo/fit",
        &two_cluster_body(8, 32, 2, 10_000),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200, "fit failed: {body}");
    assert!(body.contains("\"model\":\"demo\""), "{body}");
    assert!(body.contains("\"labels\":["), "{body}");

    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/models/demo/assign",
        &assign_body(4, 32, 10_000),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200, "assign failed: {body}");
    assert!(body.contains("\"labels\":["), "{body}");
    assert!(body.contains("\"distances\":["), "{body}");

    let (status, body) = http_request(addr, "GET", "/v1/models", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"demo\""), "{body}");

    let (status, body) = http_request(addr, "GET", "/healthz", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = http_request(addr, "GET", "/v1/telemetry", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("serve.request"), "telemetry empty: {body}");

    let (status, _) = http_request(addr, "POST", "/admin/drain", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    let summary = server.drain_and_join().unwrap();
    assert!(summary.completed >= 6, "completed {summary:?}");
    assert_eq!(summary.panics, 0);
}

#[test]
fn corrupt_request_bytes_yield_typed_errors_never_hangs() {
    let server = boot(|c| c.read_deadline = Duration::from_millis(250));
    let addr = server.addr();
    let good = request_bytes("POST", "/v1/models/x/fit", &two_cluster_body(2, 16, 2, 500));
    let mut rng = StdRng::seed_from_u64(42);

    for round in 0..8u64 {
        for kind in ByteFault::ALL {
            let mut bytes = good.clone();
            let report = corrupt_bytes(&mut bytes, kind, &mut rng);
            let sent = match kind {
                // The stall fault only marks the split point; enact it
                // by sending the prefix and going silent.
                ByteFault::MidStreamStall => bytes[..report.stall_at.unwrap()].to_vec(),
                _ => bytes,
            };
            let start = Instant::now();
            let outcome = raw_exchange(addr, &sent, Duration::from_secs(5));
            let elapsed = start.elapsed();
            assert!(
                elapsed < Duration::from_secs(5),
                "{kind:?} round {round}: exchange not bounded ({elapsed:?})"
            );
            if let Ok(raw) = outcome {
                if raw.is_empty() {
                    continue; // server saw nothing useful and hung up
                }
                let (status, body) = parse_response(raw).unwrap();
                assert!(
                    (400..=599).contains(&status) || status == 200,
                    "{kind:?} round {round}: status {status} body {body}"
                );
                // A fault that happens to leave the request valid (e.g.
                // a bit flip inside a numeric literal) may still be a
                // 200; anything else must be one of the typed errors.
                if status != 200 {
                    assert!(
                        body.contains("\"error\""),
                        "{kind:?}: untyped error body {body}"
                    );
                }
            }
        }
    }

    // The server survived all 32 corrupt exchanges.
    let (status, _) = http_request(addr, "GET", "/healthz", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    let summary = server.drain_and_join().unwrap();
    assert_eq!(summary.panics, 0, "corrupt bytes caused a panic");
}

#[test]
fn slow_loris_is_evicted_with_408() {
    let read_deadline = Duration::from_millis(300);
    let server = boot(|c| c.read_deadline = read_deadline);
    let addr = server.addr();

    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Drip the head one byte at a time, slower than it can complete.
    for b in b"POST /v1/normalize HTTP/1.1\r\n" {
        if stream.write_all(&[*b]).is_err() {
            break; // already evicted
        }
        std::thread::sleep(Duration::from_millis(20));
        if start.elapsed() > read_deadline + read_deadline {
            break;
        }
    }
    let mut raw = Vec::new();
    let _ = std::io::Read::read_to_end(&mut stream, &mut raw);
    let elapsed = start.elapsed();
    assert!(
        elapsed < read_deadline * 2 + Duration::from_millis(500),
        "loris held a worker for {elapsed:?}"
    );
    if !raw.is_empty() {
        let (status, _) = parse_response(raw).unwrap();
        assert_eq!(status, 408, "expected slow-client eviction");
    }
    let summary = server.drain_and_join().unwrap();
    assert_eq!(summary.panics, 0);
}

#[test]
fn invalid_series_yield_422_and_bad_json_400() {
    let server = boot(|_| {});
    let addr = server.addr();

    // NaN is unrepresentable in JSON: parse error, 400.
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/models/m/fit",
        "{\"series\":[[NaN,1.0]],\"k\":1}",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");

    // Constant series cannot be z-normalized: typed 422.
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/models/m/fit",
        "{\"series\":[[1.0,1.0,1.0],[0.0,1.0,2.0]],\"k\":1}",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("invalid_input"), "{body}");

    // Ragged series: typed 422 from fit validation.
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/models/m/fit",
        "{\"series\":[[0.0,1.0,2.0],[0.0,1.0]],\"k\":1}",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 422, "{body}");

    // k > n: typed 422.
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/models/m/fit",
        "{\"series\":[[0.0,1.0,2.0]],\"k\":5}",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 422, "{body}");

    // Bad model names are rejected before any work.
    let (status, _) = http_request(
        addr,
        "POST",
        "/v1/models/no%2Fslash/fit",
        "{\"series\":[[0.0,1.0]],\"k\":1}",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 400);

    // Unknown model on assign: 404.
    let (status, _) = http_request(
        addr,
        "POST",
        "/v1/models/ghost/assign",
        "{\"series\":[[0.0,1.0]]}",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 404);

    // Wrong method on a known path: 405.
    let (status, _) = http_request(addr, "DELETE", "/v1/models", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 405);

    let summary = server.drain_and_join().unwrap();
    assert_eq!(summary.panics, 0);
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let server = boot(|c| c.max_body_bytes = 1024);
    let addr = server.addr();
    let big = format!("{{\"series\":[[{}]],\"k\":1}}", vec!["0.5"; 2000].join(","));
    let (status, body) = http_request(addr, "POST", "/v1/normalize", &big, CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 413, "{body}");
    server.drain_and_join().unwrap();
}

#[test]
fn overload_burst_sheds_with_503_and_retry_after() {
    // One worker, tiny queue, and a read deadline long enough that an
    // idle connection pins the worker for the whole burst.
    let server = boot(|c| {
        c.workers = 1;
        c.queue_depth = 1;
        c.read_deadline = Duration::from_millis(1000);
    });
    let addr = server.addr();

    // Pin the single worker, then fill the queue, with idle
    // connections — staggered so the first is dequeued before the
    // second arrives, leaving both capacity slots occupied.
    let pin1 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(80));
    let pin2 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(80));

    let mut sheds = 0;
    for _ in 0..8 {
        if let Ok(raw) = raw_exchange(
            addr,
            &request_bytes("GET", "/healthz", ""),
            Duration::from_secs(3),
        ) {
            let text = String::from_utf8_lossy(&raw).into_owned();
            let (status, body) = parse_response(raw).unwrap();
            if status == 503 {
                sheds += 1;
                assert!(text.contains("Retry-After:"), "shed without Retry-After");
                assert!(body.contains("overloaded"), "{body}");
            }
        }
    }
    assert!(sheds >= 6, "burst was not shed (only {sheds}/8 were 503)");
    // Releasing the pins EOFs their reads; the worker frees up fast.
    drop(pin1);
    drop(pin2);

    // After the burst the server recovers and serves again.
    std::thread::sleep(Duration::from_millis(300));
    let (status, _) = http_request(addr, "GET", "/healthz", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);

    let summary = server.drain_and_join().unwrap();
    assert!(summary.shed >= 6, "{summary:?}");
    assert_eq!(summary.panics, 0);
}

#[test]
fn worker_panics_are_contained() {
    let server = boot(|c| {
        c.panic_probe = true;
        c.workers = 2;
    });
    let addr = server.addr();
    for _ in 0..5 {
        let (status, body) =
            http_request(addr, "POST", "/admin/panic", "", CLIENT_TIMEOUT).unwrap();
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("internal_panic"), "{body}");
    }
    // More panics than workers: the pool must still be alive.
    let (status, body) = http_request(addr, "GET", "/healthz", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"panics\":5"), "{body}");
    let summary = server.drain_and_join().unwrap();
    assert_eq!(summary.panics, 5);
}

#[test]
fn fit_deadline_returns_typed_result_not_a_hang() {
    let server = boot(|_| {});
    let addr = server.addr();
    // A 1 ms deadline on a non-trivial fit. Two legitimate outcomes,
    // both typed and both time-bounded: a 504 with the stop reason
    // (the ladder bottomed out), or — on a fast release build — a 200
    // because the final rung finished inside the window. What is
    // *never* allowed is a hang past ~2x the deadline plus dispatch
    // overhead, or an untyped error.
    let body = two_cluster_body(30, 64, 4, 1);
    let start = Instant::now();
    let (status, resp) =
        http_request(addr, "POST", "/v1/models/rushed/fit", &body, CLIENT_TIMEOUT).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline-tripped fit took {elapsed:?}"
    );
    match status {
        504 => {
            assert!(resp.contains("\"error\":\"stopped\""), "{resp}");
            assert!(resp.contains("\"reason\":\"deadline\""), "{resp}");
        }
        200 => assert!(resp.contains("\"model\":\"rushed\""), "{resp}"),
        other => panic!("expected 504 or 200, got {other}: {resp}"),
    }

    // A generous deadline on the same data: the ladder (possibly after
    // descents) must return a model.
    let (status, resp) = http_request(
        addr,
        "POST",
        "/v1/models/ok/fit",
        &two_cluster_body(30, 64, 4, 10_000),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");
    server.drain_and_join().unwrap();
}

#[test]
fn assign_deadline_returns_partial_labels() {
    let server = boot(|_| {});
    let addr = server.addr();
    let (status, resp) = http_request(
        addr,
        "POST",
        "/v1/models/pm/fit",
        &two_cluster_body(6, 64, 2, 10_000),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");

    // 1 ms for 2000 queries of length 64: trips mid-loop.
    let (status, resp) = http_request(
        addr,
        "POST",
        "/v1/models/pm/assign",
        &assign_body(1000, 64, 1),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 504, "{resp}");
    assert!(resp.contains("\"reason\":\"deadline\""), "{resp}");
    assert!(resp.contains("\"partial_labels\":"), "{resp}");
    server.drain_and_join().unwrap();
}

#[test]
fn restart_warm_starts_byte_identical_without_refitting() {
    let dir = std::env::temp_dir().join(format!("tsserve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let queries = assign_body(5, 48, 10_000);

    let first = boot(|c| c.checkpoint_dir = Some(dir.clone()));
    let addr = first.addr();
    let (status, fit_body) = http_request(
        addr,
        "POST",
        "/v1/models/persist/fit",
        &two_cluster_body(6, 48, 2, 10_000),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200, "{fit_body}");
    let (status, assign_a) = http_request(
        addr,
        "POST",
        "/v1/models/persist/assign",
        &queries,
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200);
    let (_, model_a) = http_request(addr, "GET", "/v1/models/persist", "", CLIENT_TIMEOUT).unwrap();
    // The first server dies without drain — the atomic store at fit
    // time is the only persistence step, exactly as under `kill -9`.
    drop(first);

    let second = boot(|c| c.checkpoint_dir = Some(dir.clone()));
    let addr2 = second.addr();
    // The model is served immediately — warm start, no refit.
    let (status, model_b) =
        http_request(addr2, "GET", "/v1/models/persist", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200, "model not warm-started: {model_b}");
    assert_eq!(model_a, model_b, "model payload changed across restart");

    let (status, assign_b) = http_request(
        addr2,
        "POST",
        "/v1/models/persist/assign",
        &queries,
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        assign_a, assign_b,
        "assignments diverged across kill/restart"
    );
    second.drain_and_join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_model_artifact_is_quarantined_and_refittable() {
    let dir = std::env::temp_dir().join(format!("tsserve-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A torn model file, as a kill mid-rewrite (or disk corruption)
    // would leave without the atomic store.
    std::fs::write(
        dir.join("model__broken.json"),
        "{\"name\":\"broken\",\"k\":",
    )
    .unwrap();

    let server = boot(|c| c.checkpoint_dir = Some(dir.clone()));
    let addr = server.addr();
    let (status, _) = http_request(addr, "GET", "/v1/models/broken", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 404, "corrupt model must not be served");
    assert!(
        dir.join("model__broken.json.corrupt").exists(),
        "corrupt artifact was not quarantined"
    );
    // Refit under the same name succeeds and persists a fresh artifact.
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/models/broken/fit",
        &two_cluster_body(4, 24, 2, 10_000),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(dir.join("model__broken.json").exists());
    server.drain_and_join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_finishes_inflight_work() {
    let server = boot(|c| c.workers = 2);
    let addr = server.addr();
    let slow_body = two_cluster_body(20, 64, 3, 5_000);
    let slow = std::thread::spawn(move || {
        http_request(
            addr,
            "POST",
            "/v1/models/inflight/fit",
            &slow_body,
            CLIENT_TIMEOUT,
        )
    });
    std::thread::sleep(Duration::from_millis(30));
    let (status, _) = http_request(addr, "POST", "/admin/drain", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);

    // The in-flight fit still gets a real response.
    let (status, body) = slow.join().unwrap().unwrap();
    assert!(
        status == 200 || status == 504,
        "in-flight request dropped during drain: {status} {body}"
    );
    let summary = server.drain_and_join().unwrap();
    assert!(summary.completed >= 2, "{summary:?}");
    assert_eq!(summary.panics, 0);

    // New connections are refused once the listener is gone.
    assert!(http_request(addr, "GET", "/healthz", "", Duration::from_millis(300)).is_err());
}

#[test]
fn loadgen_reports_consistent_totals() {
    let server = boot(|_| {});
    let addr = server.addr();
    let report = loadgen::drive(&loadgen::LoadSpec {
        addr,
        clients: 4,
        requests_per_client: 10,
        method: "GET".into(),
        path: "/healthz".into(),
        body: String::new(),
        timeout: CLIENT_TIMEOUT,
    });
    assert_eq!(report.total(), 40);
    assert_eq!(report.ok, 40, "{report:?}");
    assert_eq!(report.latencies_ns.len(), 40);
    assert!(report.throughput_rps() > 0.0);
    let summary = server.drain_and_join().unwrap();
    assert!(summary.completed >= 40);
}
