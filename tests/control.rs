//! Acceptance tests for the execution-control layer (`tsrun`) and the
//! checkpoint/resume harness (`tsexperiments::checkpoint`).
//!
//! Two properties are load-bearing enough to assert end-to-end:
//!
//! 1. **Bounded stop latency.** A 50 ms deadline on a dissimilarity-matrix
//!    build that would otherwise run for seconds must return a typed
//!    [`TsError::Stopped`] partial result in under 2× the deadline — the
//!    work-proportional `charge()` points bound detection latency by
//!    floating-point work, not by call counts.
//!
//! 2. **Byte-identical resume.** A sweep that is interrupted (and even has
//!    a checkpoint byte-truncated, as a `kill -9` mid-write would) and then
//!    resumed must produce output byte-identical to an uninterrupted sweep
//!    on the same pinned seed. CI runs the same protocol out-of-process via
//!    the `resumable` binary; this test keeps it hermetic and fast.

use std::time::{Duration, Instant};

use tscluster::matrix::DissimilarityMatrix;
use tsdata::dataset::SplitDataset;
use tserror::{StopReason, TsError};
use tsexperiments::checkpoint::CheckpointStore;
use tsexperiments::cluster_eval::{evaluate_method_checkpointed, DistKind, Method};
use tsexperiments::ExperimentConfig;
use tsrun::{Budget, CancelToken, RunControl};

/// Deterministic sine collection big enough that an unconstrained DTW
/// matrix takes well over any deadline used below.
fn big_series(n: usize, m: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let freq = 0.1 + 0.01 * (i % 17) as f64;
            let phase = 0.37 * i as f64;
            (0..m).map(|t| (t as f64 * freq + phase).sin()).collect()
        })
        .collect()
}

#[test]
fn deadline_on_large_dtw_matrix_trips_within_two_x() {
    // 96 series, 320 samples: 4560 unconstrained DTW pairs ≈ 4.7e8 DP
    // cells — seconds of work, far beyond the 50 ms budget.
    let series = big_series(96, 320);
    let deadline = Duration::from_millis(50);
    let ctrl = RunControl::new(Budget::unlimited().with_deadline(deadline), None);

    let start = Instant::now();
    let result = DissimilarityMatrix::try_compute_with_control(
        &series,
        &tsdist::Dtw::unconstrained(),
        &ctrl,
    );
    let elapsed = start.elapsed();

    match result {
        Err(TsError::Stopped {
            labels,
            iterations,
            reason,
        }) => {
            assert_eq!(reason, StopReason::Deadline);
            assert!(labels.is_empty(), "a matrix build has no labeling");
            let total_pairs = 96 * 95 / 2;
            assert!(
                iterations < total_pairs,
                "claimed to finish {iterations}/{total_pairs} pairs under a 50 ms deadline"
            );
        }
        Ok(_) => {
            panic!("4560 unconstrained DTW pairs finished inside 50 ms — deadline never polled")
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
    // The acceptance bound: typed partial result in < 2× the deadline.
    assert!(
        elapsed < deadline * 2,
        "stop latency {elapsed:?} exceeded 2x the {deadline:?} deadline"
    );
}

#[test]
fn pre_cancelled_token_stops_before_any_work() {
    let series = big_series(64, 256);
    let token = CancelToken::new();
    token.cancel();
    let ctrl = RunControl::new(Budget::unlimited(), Some(token));
    let start = Instant::now();
    let result = DissimilarityMatrix::try_compute_with_control(
        &series,
        &tsdist::Dtw::unconstrained(),
        &ctrl,
    );
    let elapsed = start.elapsed();
    match result {
        Err(TsError::Stopped {
            iterations, reason, ..
        }) => {
            assert_eq!(reason, StopReason::Cancelled);
            assert_eq!(iterations, 0, "work done after cancellation");
        }
        other => panic!("expected immediate Cancelled stop, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_millis(100),
        "cancellation took {elapsed:?}"
    );
}

/// Renders the sweep exactly like the `resumable` binary's stdout rows:
/// shortest round-trip float formatting, no wall-clock values.
fn render_sweep(
    methods: &[Method],
    collection: &[SplitDataset],
    cfg: &ExperimentConfig,
    store: &CheckpointStore,
) -> String {
    let mut out = String::new();
    for &method in methods {
        let eval = evaluate_method_checkpointed(method, collection, cfg, store);
        for (split, ri) in collection.iter().zip(eval.rand_indices.iter()) {
            out.push_str(&format!("{}\t{}\t{ri:?}\n", eval.name, split.name()));
        }
        out.push_str(&format!("MEAN\t{}\t{:?}\n", eval.name, eval.mean_rand()));
    }
    out
}

#[test]
fn interrupted_then_resumed_sweep_is_byte_identical() {
    let cfg = ExperimentConfig {
        size_factor: 0.2,
        runs: 2,
        max_iter: 10,
        seed: 0xC0FFEE,
        threads: 1,
    };
    let mut collection = cfg.collection();
    collection.truncate(3); // keep the test fast; determinism is per-cell
    let methods = [Method::KAvg(DistKind::Ed), Method::KShape];

    // Ground truth: one uninterrupted sweep, no checkpointing at all.
    let uninterrupted = render_sweep(&methods, &collection, &cfg, &CheckpointStore::disabled());

    // Interrupted run: finish only the first method, then "die".
    let dir = std::env::temp_dir().join(format!("tsexp_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir);
    let _ = render_sweep(&methods[..1], &collection, &cfg, &store);
    let written = std::fs::read_dir(&dir).expect("checkpoint dir").count();
    assert_eq!(written, 3, "one checkpoint per finished dataset");

    // Worse: one of the surviving checkpoints was byte-truncated by the
    // kill (simulating a non-atomic writer / torn page).
    let victim = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .next()
        .expect("a checkpoint to corrupt");
    let mut bytes = std::fs::read(&victim).expect("read victim");
    let mut rng = tsrand::StdRng::seed_from_u64(42);
    assert!(tsdata::corrupt::truncate_checkpoint(&mut bytes, &mut rng) > 0);
    std::fs::write(&victim, &bytes).expect("write truncated");

    // Resume: the full sweep over the same store. Valid cells are reused,
    // the corrupt one is quarantined and recomputed, the missing method
    // is computed fresh — and the output is byte-identical.
    let resumed = render_sweep(&methods, &collection, &cfg, &store);
    assert_eq!(
        resumed, uninterrupted,
        "resumed sweep diverged from uninterrupted sweep"
    );

    // The quarantined evidence survives on disk.
    let corrupt_files = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
        .count();
    assert_eq!(corrupt_files, 1, "quarantine file missing after resume");

    // And a second resumed sweep — now fully checkpoint-backed — is still
    // byte-identical (every cell served from disk through the float
    // round-trip).
    let cached = render_sweep(&methods, &collection, &cfg, &store);
    assert_eq!(cached, uninterrupted, "cache round-trip changed bytes");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_checkpoints_from_another_config_are_recomputed() {
    let cfg_a = ExperimentConfig {
        size_factor: 0.2,
        runs: 1,
        max_iter: 8,
        seed: 1,
        threads: 1,
    };
    let cfg_b = ExperimentConfig { seed: 2, ..cfg_a };
    let mut collection = cfg_a.collection();
    collection.truncate(1);
    let methods = [Method::KAvg(DistKind::Ed)];

    let dir = std::env::temp_dir().join(format!("tsexp_stale_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir);

    // Populate the store under config A…
    let _ = render_sweep(&methods, &collection, &cfg_a, &store);
    // …then sweep config B against the same directory. The stale cell
    // must not leak: B's output must match B computed without any store.
    let collection_b = {
        let mut c = cfg_b.collection();
        c.truncate(1);
        c
    };
    let fresh_b = render_sweep(
        &methods,
        &collection_b,
        &cfg_b,
        &CheckpointStore::disabled(),
    );
    let stored_b = render_sweep(&methods, &collection_b, &cfg_b, &store);
    assert_eq!(stored_b, fresh_b, "stale checkpoint leaked across configs");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite for the serving PR: deadline accuracy under contention.
/// N pool-style worker threads share ONE `RunControl` with a ~50 ms
/// wall deadline, each charging work-proportional cost in a tight
/// loop. Every thread must observe the trip and stop within 2× the
/// deadline — the strided clock check is per-control, not per-thread,
/// so one thread's CAS-elected clock read must fan out to all of them.
#[test]
fn shared_deadline_stops_all_contending_workers_within_two_x() {
    use std::sync::Arc;

    let workers = 8;
    let deadline = Duration::from_millis(50);
    let ctrl = Arc::new(RunControl::new(
        Budget::unlimited().with_deadline(deadline),
        None,
    ));

    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let ctrl = Arc::clone(&ctrl);
            std::thread::spawn(move || {
                let mut acc = 0.0f64;
                let mut charges = 0u64;
                loop {
                    // ~64 cost units of real floating-point work per
                    // charge, like a distance kernel would do.
                    for t in 0..64 {
                        acc += ((w * 64 + t) as f64 * 0.001).sin();
                    }
                    charges += 1;
                    if let Err(reason) = ctrl.charge(64) {
                        return (reason, start.elapsed(), charges, acc);
                    }
                }
            })
        })
        .collect();

    for handle in handles {
        let (reason, elapsed, charges, _acc) = handle.join().unwrap();
        assert_eq!(reason, StopReason::Deadline);
        assert!(charges > 0, "worker stopped before doing any work");
        assert!(
            elapsed < deadline * 2,
            "worker stopped after {elapsed:?}, over 2x the {deadline:?} deadline"
        );
    }
    // The control's clock was actually strided, not per-charge: total
    // cost across workers dwarfs the stride.
    assert!(ctrl.cost_spent() > 1024, "suspiciously little work charged");
}
