//! Determinism regression tests: with a fixed seed, every stochastic
//! entry point must produce bit-identical results across runs, and the
//! synthetic collection must match a pinned golden snapshot.
//!
//! These tests guard the in-tree `tsrand` stream: any change to the
//! generator (seeding, integer-range sampling, Gaussian draws) shows up
//! here before it silently shifts experiment tables.

use kshape::{KShape, KShapeConfig, KShapeOptions};
use tscluster::kmeans::{kmeans_with, KMeansConfig, KMeansOptions};
use tscluster::ksc::{ksc_with, KscConfig, KscOptions};
use tsdata::collection::{synthetic_collection, CollectionSpec};
use tsdata::normalize::z_normalize;
use tsdist::EuclideanDistance;

/// A small deterministic dataset with genuine cluster structure.
fn sine_dataset() -> Vec<Vec<f64>> {
    (0..10)
        .map(|i| {
            z_normalize(
                &(0..32)
                    .map(|t| ((t + i * 3) as f64 * 0.35).sin() + (i % 2) as f64 * 0.8)
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// FNV-1a over the exact bit patterns of a float slice.
fn hash_f64s(acc: u64, xs: &[f64]) -> u64 {
    let mut h = acc;
    for &x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[test]
fn kshape_fit_is_deterministic_for_fixed_seed() {
    let series = sine_dataset();
    let cfg = KShapeConfig {
        k: 3,
        seed: 42,
        max_iter: 50,
        ..Default::default()
    };
    let opts = KShapeOptions::from(cfg);
    let a = KShape::fit_with(&series, &opts).expect("clean series");
    let b = KShape::fit_with(&series, &opts).expect("clean series");
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.centroids.len(), b.centroids.len());
    for (ca, cb) in a.centroids.iter().zip(b.centroids.iter()) {
        // Bit-identical, not merely close: same seed, same arithmetic.
        let ba: Vec<u64> = ca.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = cb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ba, bb);
    }
    assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
}

#[test]
fn kshape_fit_is_thread_count_invariant() {
    // The parallel sweep uses fixed chunking with an ordered reduction, so
    // the worker count must never change a single bit of the output: the
    // contract the DESIGN.md "Hot path" section documents and the CI
    // thread matrix (KSHAPE_THREADS=1,4) enforces end to end.
    let series = sine_dataset();
    let base = KShapeConfig {
        k: 3,
        seed: 42,
        max_iter: 50,
        ..Default::default()
    };
    let single = KShape::fit_with(&series, &KShapeOptions::from(base).with_threads(1))
        .expect("clean series");
    for threads in [2usize, 4, 7] {
        let opts = KShapeOptions::from(base).with_threads(threads);
        let multi = KShape::fit_with(&series, &opts).expect("clean series");
        assert_eq!(single.labels, multi.labels, "threads={threads}");
        assert_eq!(single.iterations, multi.iterations, "threads={threads}");
        let mut ha = 0xcbf2_9ce4_8422_2325;
        let mut hb = 0xcbf2_9ce4_8422_2325;
        for (ca, cb) in single.centroids.iter().zip(multi.centroids.iter()) {
            ha = hash_f64s(ha, ca);
            hb = hash_f64s(hb, cb);
        }
        assert_eq!(ha, hb, "centroid bits differ at threads={threads}");
        assert_eq!(
            single.inertia.to_bits(),
            multi.inertia.to_bits(),
            "threads={threads}"
        );
    }
}

#[test]
fn kmeans_is_deterministic_for_fixed_seed() {
    let series = sine_dataset();
    let cfg = KMeansConfig {
        k: 3,
        seed: 7,
        max_iter: 50,
    };
    let opts = KMeansOptions::from(cfg);
    let a = kmeans_with(&series, &EuclideanDistance, &opts).expect("clean series");
    let b = kmeans_with(&series, &EuclideanDistance, &opts).expect("clean series");
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    for (ca, cb) in a.centroids.iter().zip(b.centroids.iter()) {
        let ba: Vec<u64> = ca.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = cb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ba, bb);
    }
}

#[test]
fn ksc_is_deterministic_for_fixed_seed() {
    let series = sine_dataset();
    let cfg = KscConfig {
        k: 2,
        seed: 13,
        max_iter: 50,
    };
    let opts = KscOptions::from(cfg);
    let a = ksc_with(&series, &opts).expect("clean series");
    let b = ksc_with(&series, &opts).expect("clean series");
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    for (ca, cb) in a.centroids.iter().zip(b.centroids.iter()) {
        let ba: Vec<u64> = ca.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = cb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ba, bb);
    }
}

/// Golden snapshot: the first dataset of the default synthetic collection
/// (at a small size factor) is pinned by an FNV-1a hash over the exact bit
/// patterns of every series plus the label sequences. If the `tsrand`
/// stream or any generator changes, this hash moves and the experiment
/// tables in the paper reproduction are no longer comparable.
#[test]
fn synthetic_collection_matches_golden_snapshot() {
    let spec = CollectionSpec {
        seed: 0x5ADE,
        size_factor: 0.34,
    };
    let collection = synthetic_collection(&spec);
    assert_eq!(collection.len(), 48);

    let d = &collection[0];
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for s in d.train.series.iter().chain(d.test.series.iter()) {
        h = hash_f64s(h, s);
    }
    for &l in d.train.labels.iter().chain(d.test.labels.iter()) {
        h = hash_f64s(h, &[l as f64]);
    }
    let n = d.train.series.len() + d.test.series.len();
    let m = d.train.series[0].len();

    // Pinned observed values — update ONLY with a deliberate, documented
    // change to the generator stream (see DESIGN.md).
    assert_eq!((n, m), (GOLDEN_N, GOLDEN_M), "collection[0] shape changed");
    assert_eq!(
        h, GOLDEN_HASH,
        "collection[0] content drifted: got {h:#018x}"
    );
}

const GOLDEN_N: usize = 12;
const GOLDEN_M: usize = 64;
const GOLDEN_HASH: u64 = 0x4A37_6DE9_30F8_0B25;
