//! Streaming acceptance suite: the full drifting-feed scenario from the
//! robustness milestone, end to end.
//!
//! A 10k-arrival synthetic feed whose cluster shapes rotate mid-stream,
//! with ~5% of arrivals corrupted by [`tsdata::corrupt::StreamFault`]s,
//! must: complete without panics, quarantine every invalidating fault
//! (zero leaks), keep every centroid value finite, answer the rotation
//! with at least one drift-triggered reseed, and recover a post-rotation
//! Rand index within 5% of a fresh batch k-Shape fit on the same clean
//! window. Killing the run mid-stream and resuming from the checkpoint
//! pair must reproduce the uninterrupted run byte-for-byte.

use tsexperiments::stream_eval::{
    run_stream_drift, StreamDriftConfig, StreamDriftReport, LABELS_ARTIFACT,
};
use tsexperiments::CheckpointStore;

fn acceptance_config() -> StreamDriftConfig {
    StreamDriftConfig::default() // 10k arrivals, rotate at 5k, 5% corrupt
}

fn assert_acceptance(report: &StreamDriftReport) {
    assert_eq!(report.arrivals, 10_000);
    assert!(
        report.quarantined > 0,
        "5% corruption must quarantine some arrivals"
    );
    assert_eq!(
        report.quarantine_leaks, 0,
        "invalidating fault escaped quarantine"
    );
    assert_eq!(report.nan_centroid_values, 0, "NaN leaked into a centroid");
    assert!(report.reseeds >= 1, "rotation must trigger a reseed");
    assert!(
        (0..=1_000).contains(&report.recovery_arrivals),
        "drift recovery took {} arrivals",
        report.recovery_arrivals,
    );
    assert!(
        report.stream_rand >= report.batch_rand - 0.05,
        "stream Rand {} not within 5% of batch {}",
        report.stream_rand,
        report.batch_rand,
    );
}

#[test]
fn drifting_corrupt_feed_meets_the_acceptance_contract() {
    let report = run_stream_drift(&acceptance_config(), &CheckpointStore::disabled());
    assert_acceptance(&report);
}

/// A smaller feed for the byte-identity protocols — replay determinism
/// does not need the full 10k acceptance scenario.
fn resume_config() -> StreamDriftConfig {
    StreamDriftConfig {
        n: 3_000,
        rotate_at: 1_500,
        checkpoint_every: 500,
        ..acceptance_config()
    }
}

#[test]
fn kill_and_resume_is_byte_identical_to_an_uninterrupted_run() {
    let cfg = resume_config();
    let uninterrupted = run_stream_drift(&cfg, &CheckpointStore::disabled());

    let dir = std::env::temp_dir().join(format!("kshape-stream-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir);

    // "Kill" mid-recovery: run only 1 800 arrivals (the rotation is at
    // 1 500), leaving the last checkpoint pair at arrival 1 500.
    let killed = StreamDriftConfig { n: 1_800, ..cfg };
    let _ = run_stream_drift(&killed, &store);

    // Resume from the checkpoint and finish the full feed.
    let resumed = run_stream_drift(&cfg, &store);
    assert_eq!(resumed, uninterrupted, "resumed run diverged");
    assert_eq!(resumed.labels_fnv, uninterrupted.labels_fnv);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_ahead_of_the_engine_is_truncated_on_resume() {
    let cfg = resume_config();
    let uninterrupted = run_stream_drift(&cfg, &CheckpointStore::disabled());

    let dir = std::env::temp_dir().join(format!("kshape-stream-truncate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir);

    let killed = StreamDriftConfig { n: 1_000, ..cfg };
    let _ = run_stream_drift(&killed, &store);

    // The journal is written before the engine at every checkpoint, so a
    // kill between the two writes leaves the journal ahead. Forge that
    // state: append bogus labels past the engine's arrival count.
    let (journal, _) = store.load_named(LABELS_ARTIFACT, |s| Some(s.to_string()));
    let journal = journal.expect("journal artifact present");
    let forged = format!("{},7,7,7]", journal.trim_end_matches(']'));
    store
        .store_named(LABELS_ARTIFACT, &forged)
        .expect("forged journal write");

    let resumed = run_stream_drift(&cfg, &store);
    assert_eq!(
        resumed, uninterrupted,
        "stale journal suffix leaked into the resumed run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
