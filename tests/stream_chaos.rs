//! Chaos property suite for the online k-Shape engine: every corrupted
//! arrival — series-level faults *and* framed-byte faults — must come
//! back as a typed [`kshape::PushOutcome::Quarantined`] or a finite
//! accept, **never** a panic and **never** a NaN in centroids or
//! distances. Drift injection must trigger exactly one reseed, and a
//! checkpoint taken mid-chaos must resume byte-identically.
//!
//! Driven by `tscheck`: rerun a failing case with
//! `TSCHECK_SEED=0x... cargo test --test stream_chaos`. CI pins three
//! seeds so the corruption space is explored beyond the default stream.

use kshape::{DriftConfig, PushOutcome, StreamConfig, StreamKShape};
use tscheck::Gen;
use tsdata::corrupt::{corrupt_stream_series, StreamFault, StreamFaultSchedule};
use tsrand::{Rng, StdRng};

/// A clean arrival for shape class `class`: a noisy sine whose frequency
/// identifies the class (random phase exercises SBD shift alignment).
fn clean_arrival(class: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
    let freq = (3 * class + 2) as f64;
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    (0..m)
        .map(|t| {
            let x = std::f64::consts::TAU * freq * t as f64 / m as f64 + phase;
            x.sin() + 0.05 * rng.gen_range(-1.0..1.0)
        })
        .collect()
}

/// A square-wave arrival at a shifted frequency — the post-drift regime
/// in the reseed property. Same-frequency sine→square is only an
/// ~0.1-SBD step; the frequency jump makes the regime change decisive
/// (and distinct from both pre-drift classes).
fn square_arrival(class: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
    let freq = (4 * class + 3) as f64;
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    (0..m)
        .map(|t| {
            let x = std::f64::consts::TAU * freq * t as f64 / m as f64 + phase;
            let base = if x.sin() >= 0.0 { 1.0 } else { -1.0 };
            base + 0.05 * rng.gen_range(-1.0..1.0)
        })
        .collect()
}

/// Builds an engine and feeds clean arrivals until it has bootstrapped.
fn bootstrapped_engine(g: &mut Gen, k: usize, m: usize) -> (StreamKShape, StdRng) {
    let config = StreamConfig::new(k, m)
        .with_seed(g.u64_in(0..1 << 32))
        .with_warmup(4 * k)
        .with_refresh_every(8);
    let mut engine = StreamKShape::new(config).expect("valid config");
    let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
    for i in 0..(8 * k).max(24) {
        let x = clean_arrival(i % k, m, &mut rng);
        engine.push(&x);
    }
    assert!(engine.stats().bootstrapped, "clean feed must bootstrap");
    (engine, rng)
}

/// The chaos invariants every engine must satisfy at any point.
fn assert_engine_invariants(engine: &StreamKShape, k: usize) {
    let stats = engine.stats();
    assert_eq!(stats.accepted + stats.quarantined, stats.arrivals);
    assert!(engine.centroids().len() <= k);
    for c in engine.centroids() {
        assert!(
            c.iter().all(|v| v.is_finite()),
            "NaN leaked into a centroid"
        );
    }
}

tscheck::props! {
    /// Every fault kind, pushed repeatedly into a live engine: an
    /// invalidating fault must come back quarantined with a typed
    /// reason; a degrading fault must be accepted finite or quarantined
    /// — and the centroids stay finite throughout.
    #[cases(16)]
    fn every_fault_kind_is_quarantined_or_absorbed(g) {
        let k = g.usize_in(2..4);
        let m = g.usize_in(16..48);
        let (mut engine, mut rng) = bootstrapped_engine(g, k, m);
        for fault in StreamFault::ALL {
            for rep in 0..3 {
                let mut x = clean_arrival(rep % k, m, &mut rng);
                corrupt_stream_series(&mut x, fault, &mut rng);
                match engine.push(&x) {
                    PushOutcome::Quarantined(reason) => {
                        // Typed reason, engine untouched; nothing else
                        // to check beyond the reason being nameable.
                        let _ = reason.name();
                    }
                    PushOutcome::Assigned(a) => {
                        assert!(
                            !fault.invalidates(),
                            "{fault:?} must be quarantined, was assigned"
                        );
                        assert!(a.label < k, "label {} out of range", a.label);
                        assert!(a.dist.is_finite(), "{fault:?} produced NaN distance");
                    }
                    other => panic!("bootstrapped engine returned {other:?}"),
                }
                assert_engine_invariants(&engine, k);
            }
        }
    }

    /// A long feed under a random fault schedule: no invalidating fault
    /// may slip through (leak count must be 0), counters must add up,
    /// and the engine must keep assigning finite labels.
    #[cases(10)]
    fn random_fault_schedule_never_leaks(g) {
        let k = g.usize_in(2..4);
        let m = g.usize_in(16..40);
        let (mut engine, mut rng) = bootstrapped_engine(g, k, m);
        let schedule = StreamFaultSchedule::all(g.f64_in(0.05..0.5));
        let mut leaks = 0u64;
        for i in 0..200 {
            let mut x = clean_arrival(i % k, m, &mut rng);
            let fault = schedule.apply(&mut x, &mut rng);
            let outcome = engine.push(&x);
            let quarantined = matches!(outcome, PushOutcome::Quarantined(_));
            if fault.is_some_and(StreamFault::invalidates) && !quarantined {
                leaks += 1;
            }
        }
        assert_eq!(leaks, 0, "invalidating faults escaped quarantine");
        assert_engine_invariants(&engine, k);
    }

    /// A regime change injected into a stable stream triggers exactly
    /// one reseed: detection arms an evidence countdown, the reseed
    /// fires once, and the cooldown (sized past the end of the feed)
    /// suppresses any second firing.
    #[cases(8)]
    fn drift_injection_triggers_exactly_one_reseed(g) {
        // m = 64 keeps SBD's integer-shift alignment residue small; at
        // m = 32 a clean freq-2 sine mis-aligned by half a sample already
        // scores dist² ~0.05, which fattens the stable-distance tail and
        // lets a 16-sample median occasionally cross the ratio test.
        // 32/128 median windows average that tail away.
        let m = 64;
        let mut config = StreamConfig::new(2, m)
            .with_seed(g.u64_in(0..1 << 32))
            .with_warmup(32)
            .with_window_capacity(160)
            .with_refresh_every(8);
        config.drift = DriftConfig {
            short_window: 32,
            long_window: 128,
            threshold: 4.0,
            cooldown: 10_000,
        };
        let mut engine = StreamKShape::new(config).expect("valid config");
        let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
        for i in 0..200 {
            let x = clean_arrival(i % 2, m, &mut rng);
            engine.push(&x);
        }
        assert_eq!(engine.stats().reseeds, 0, "stable regime reseeded");
        let mut reseed_events = 0;
        for i in 0..300 {
            let x = square_arrival(i % 2, m, &mut rng);
            if let PushOutcome::Assigned(a) = engine.push(&x) {
                if a.reseeded {
                    reseed_events += 1;
                }
            }
        }
        assert_eq!(reseed_events, 1, "one drift event, one reseed");
        assert_eq!(engine.stats().reseeds, 1);
        assert_engine_invariants(&engine, 2);
    }

    /// Checkpointing mid-chaos and resuming must be byte-identical: the
    /// resumed engine replays an identical faulted suffix to identical
    /// outcomes and an identical next checkpoint.
    #[cases(8)]
    fn checkpoint_resume_is_byte_identical_under_faults(g) {
        let k = g.usize_in(2..4);
        let m = g.usize_in(16..40);
        let (mut original, mut rng) = bootstrapped_engine(g, k, m);
        let schedule = StreamFaultSchedule::all(g.f64_in(0.1..0.4));
        for i in 0..100 {
            let mut x = clean_arrival(i % k, m, &mut rng);
            schedule.apply(&mut x, &mut rng);
            original.push(&x);
        }
        let snapshot = original.to_json();
        let mut resumed = StreamKShape::from_json(&snapshot).expect("checkpoint parses");
        assert_eq!(resumed.to_json(), snapshot, "roundtrip not byte-identical");

        // Pre-generate the suffix so both engines see identical bytes.
        let suffix: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let mut x = clean_arrival(i % k, m, &mut rng);
                schedule.apply(&mut x, &mut rng);
                x
            })
            .collect();
        for x in &suffix {
            assert_eq!(original.push(x), resumed.push(x), "outcomes diverged");
        }
        assert_eq!(
            original.to_json(),
            resumed.to_json(),
            "post-suffix checkpoints diverged"
        );
        assert_engine_invariants(&resumed, k);
    }
}
