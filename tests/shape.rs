//! Shape-aware data-model properties: the multichannel SBD kernel and
//! the variable-length [`RaggedStore`].
//!
//! Three contracts pinned here:
//!
//! * Multichannel SBD **is** summed per-channel NCC: the cached-spectra
//!   kernel must match a naive time-domain reference (numerator summed
//!   over channels at a shared lag, denominator the product of summed
//!   channel energies), and the distance must be symmetric bit for bit;
//! * the univariate **reduction** is exact: a 1-channel slice through
//!   [`SbdPlan::sbd_spectra_multi`] returns the same bits as the plain
//!   [`SbdPlan::sbd_spectra`] hot path — the redesign cannot move a
//!   single existing univariate result;
//! * [`RaggedStore`] round-trips bit-exactly, resident and spilled, and
//!   a sealed segment hit by any [`ByteFault`] surfaces as a typed
//!   `CorruptData` — never a panic, never a garbage row.
//!
//! Each failure line prints a `TSCHECK_SEED` for deterministic replay:
//! `TSCHECK_SEED=0x... cargo test --test shape`.

use kshape::sbd::{SbdPlan, SbdScratch};
use kshape::{Sbd, SbdOptions};
use tsdata::corrupt::{corrupt_bytes, ByteFault};
use tsdata::distort::shift_zero_pad;
use tsdata::store::{ElemType, RaggedStore, SeriesView, SpillConfig};
use tserror::TsError;
use tsrand::{Rng, StdRng};

/// A fresh spill directory unique to this test case.
fn spill_dir(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("shape_it_{tag}_{}_{case:016x}", std::process::id()))
}

/// Random finite series of length `n` in `[-1, 1]`.
fn random_series(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Naive summed per-channel NCC maximum: for every shared lag, sum the
/// per-channel dot products of `x` against `y` shifted by that lag, and
/// normalize by the summed channel energies. Returns `1 - max_w NCC_w`.
fn naive_multichannel_sbd(x: &[f64], y: &[f64], channels: usize) -> f64 {
    let m = x.len() / channels;
    let r0 = |s: &[f64]| -> f64 {
        s.chunks_exact(m)
            .map(|ch| ch.iter().map(|v| v * v).sum::<f64>())
            .sum()
    };
    let denom = (r0(x) * r0(y)).sqrt();
    if denom == 0.0 {
        return if r0(x) == 0.0 && r0(y) == 0.0 {
            0.0
        } else {
            1.0
        };
    }
    let mut best = f64::NEG_INFINITY;
    for shift in -(m as isize - 1)..=(m as isize - 1) {
        let mut num = 0.0;
        for (xc, yc) in x.chunks_exact(m).zip(y.chunks_exact(m)) {
            let shifted = shift_zero_pad(yc, shift);
            num += xc.iter().zip(&shifted).map(|(a, b)| a * b).sum::<f64>();
        }
        best = best.max(num);
    }
    1.0 - best / denom
}

tscheck::props! {
    #[cases(24)]
    fn multichannel_sbd_matches_summed_ncc_and_is_symmetric(g) {
        let channels = g.usize_in(1..4);
        let m = g.usize_in(4..24);
        let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
        let x = random_series(channels * m, &mut rng);
        let y = random_series(channels * m, &mut rng);

        let s = Sbd::new();
        let opts = SbdOptions::new().with_channels(channels);
        let fwd = s.distance(&x, &y, &opts).expect("finite input");
        let rev = s.distance(&y, &x, &opts).expect("finite input");

        // Symmetric up to FFT roundoff: the reverse direction correlates
        // conj(Y)·X instead of conj(X)·Y, so the last ulps may differ,
        // but nothing more.
        assert!(
            (fwd.dist - rev.dist).abs() <= 1e-12,
            "multichannel SBD must be symmetric: {} vs {}",
            fwd.dist,
            rev.dist
        );
        assert!((0.0..=2.0 + 1e-12).contains(&fwd.dist), "SBD range: {}", fwd.dist);
        assert_eq!(fwd.aligned.len(), channels * m, "aligned spans all channels");

        // The kernel is the summed per-channel NCC, nothing else.
        let reference = naive_multichannel_sbd(&x, &y, channels);
        assert!(
            (fwd.dist - reference).abs() <= 1e-9,
            "cached-spectra kernel {} vs naive summed-NCC reference {}",
            fwd.dist,
            reference
        );
    }

    #[cases(24)]
    fn one_channel_multichannel_kernel_is_bit_identical_to_univariate(g) {
        let m = g.usize_in(4..48);
        let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
        let x = random_series(m, &mut rng);
        let y = random_series(m, &mut rng);

        let plan = SbdPlan::new(m);
        let px = plan.prepare(&x);
        let py = plan.prepare(&y);
        let mut scratch = SbdScratch::default();
        let (d_uni, s_uni) = plan.sbd_spectra(&px, &py, &mut scratch);
        let (d_multi, s_multi) = plan.sbd_spectra_multi(
            std::slice::from_ref(&px),
            std::slice::from_ref(&py),
            &mut scratch,
        );
        assert_eq!(
            d_uni.to_bits(),
            d_multi.to_bits(),
            "channels=1 reduction must not move a single bit: {d_uni} vs {d_multi}"
        );
        assert_eq!(s_uni, s_multi, "shared shift must match the univariate shift");
    }

    #[cases(16)]
    fn ragged_store_round_trips_resident_and_spilled(g) {
        let n = g.usize_in(4..16);
        let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| random_series(g.usize_in(1..32), &mut rng))
            .collect();
        let max_len = rows.iter().map(Vec::len).max().unwrap();

        let resident = RaggedStore::from_rows(&rows).expect("resident store");
        let dir = spill_dir("roundtrip", g.case_seed());
        let mut spilled = RaggedStore::spilled(
            ElemType::F64,
            SpillConfig::new(&dir).rows_per_segment(3).resident_segments(1),
        )
        .expect("spill tier");
        for row in &rows {
            spilled.push_row(row).expect("clean push");
        }

        for store in [&resident, &spilled] {
            assert!(store.is_ragged());
            assert_eq!(store.channels(), 1);
            assert_eq!(store.n_series(), n);
            assert_eq!(store.series_len(), max_len, "series_len is the max row length");
            let mut scratch = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(store.row_len(i), row.len());
                let shape = store.row_shape(i);
                assert_eq!((shape.channels, shape.len), (1, row.len()));
                let got = store.try_row(i, &mut scratch).expect("clean read");
                assert_eq!(got, row.as_slice(), "row {i} must round-trip bit-exactly");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cases(16)]
    fn corrupted_ragged_segments_surface_typed_errors(g) {
        let per_seg = g.usize_in(2..5);
        let n = g.usize_in(3 * per_seg..6 * per_seg);
        let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| random_series(g.usize_in(1..24), &mut rng))
            .collect();

        let dir = spill_dir("chaos", g.case_seed());
        let mut store = RaggedStore::spilled(
            ElemType::F64,
            SpillConfig::new(&dir)
                .rows_per_segment(per_seg)
                .resident_segments(1),
        )
        .expect("spill tier");
        for row in &rows {
            store.push_row(row).expect("clean push");
        }
        let paths = store.spill_segment_paths();
        assert!(paths.len() >= 2, "need several sealed segments");

        // Warm pass: every row reads back clean before corruption.
        let mut scratch = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let got = store.try_row(i, &mut scratch).expect("clean read");
            assert_eq!(got, row.as_slice());
        }

        // Fault one sealed segment on disk.
        let target = g.usize_in(0..paths.len());
        let kind = ByteFault::ALL[g.usize_in(0..ByteFault::ALL.len())];
        let clean_bytes = std::fs::read(&paths[target]).expect("read segment");
        let mut bytes = clean_bytes.clone();
        corrupt_bytes(&mut bytes, kind, &mut rng);
        let changed = bytes != clean_bytes;
        std::fs::write(&paths[target], &bytes).expect("write fault");

        // Evict the target from the one-segment resident window by
        // touching a row that lives in a different segment.
        let other_seg = (target + 1) % paths.len();
        let _ = store.try_row(other_seg * per_seg, &mut scratch);

        // Contract: every read is Ok-with-clean-bits or a typed
        // CorruptData — never a panic, never a garbage row.
        let mut saw_corrupt = false;
        for (i, row) in rows.iter().enumerate() {
            match store.try_row(i, &mut scratch) {
                Ok(got) => assert_eq!(got, row.as_slice(), "garbage row {i} after {kind:?}"),
                Err(TsError::CorruptData { .. }) => saw_corrupt = true,
                Err(other) => panic!("row {i}: expected CorruptData, got {other:?}"),
            }
        }
        assert_eq!(
            saw_corrupt, changed,
            "{kind:?} changed bytes: {changed}, but corrupt reads: {saw_corrupt}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministic companion: a 3-channel dataset whose channels carry
/// consistent class evidence clusters end-to-end through the public
/// `Sbd::distance` seam — near-zero self-distance, clearly separated
/// cross-class distance.
#[test]
fn multichannel_distance_separates_shape_classes() {
    let m = 64usize;
    let tri: Vec<f64> = (0..m)
        .map(|i| 1.0 - ((i as f64 / (m - 1) as f64) * 2.0 - 1.0).abs())
        .collect();
    let sin: Vec<f64> = (0..m)
        .map(|i| (i as f64 / m as f64 * std::f64::consts::TAU * 2.0).sin())
        .collect();
    let mut a = tri.clone();
    a.extend_from_slice(&sin);
    // Same shapes, circularly shifted: SBD must align them back.
    let rot = |s: &[f64], by: usize| -> Vec<f64> {
        let mut out = s[by..].to_vec();
        out.extend_from_slice(&s[..by]);
        out
    };
    let mut b = rot(&tri, 5);
    b.extend_from_slice(&rot(&sin, 5));
    // A genuinely different shape pair.
    let mut c: Vec<f64> = (0..m).map(|i| if i < m / 2 { 1.0 } else { -1.0 }).collect();
    c.extend_from_slice(&(0..m).map(|i| (i % 7) as f64).collect::<Vec<f64>>());

    let s = Sbd::new();
    let opts = SbdOptions::new().with_channels(2);
    let same = s.distance(&a, &b, &opts).expect("clean input").dist;
    let diff = s.distance(&a, &c, &opts).expect("clean input").dist;
    assert!(same < 0.25, "shifted same-class pair should align: {same}");
    assert!(
        diff > 2.0 * same,
        "cross-class pair should stand apart: {diff} vs {same}"
    );
}
