//! End-to-end pipelines spanning the whole workspace:
//! generate → normalize → cluster → score.

use kshape_repro::prelude::*;
use tsdata::collection::{synthetic_collection, CollectionSpec};
use tsdata::generators::{cbf, ecg, seasonal, sines, GenParams};
use tsdist::EuclideanDistance;
use tseval::rand_index::rand_index;
use tsrand::StdRng;

fn small_params(len: usize) -> GenParams {
    GenParams {
        n_per_class: 12,
        len,
        noise: 0.2,
        max_shift_frac: 0.2,
        amp_jitter: 1.4,
    }
}

#[test]
fn kshape_beats_kavg_ed_on_phase_shifted_ecg() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut data = ecg::generate(&small_params(96), &mut rng);
    data.z_normalize();
    let ks =
        KShape::fit_with(&data.series, &KShapeOptions::new(2).with_seed(3)).expect("clean series");
    let km = kmeans_with(
        &data.series,
        &EuclideanDistance,
        &KMeansOptions::new(2).with_seed(3),
    )
    .expect("clean series");
    let ks_rand = rand_index(&ks.labels, &data.labels);
    let km_rand = rand_index(&km.labels, &data.labels);
    assert!(
        ks_rand > km_rand,
        "k-Shape {ks_rand} must beat k-AVG+ED {km_rand} on out-of-phase data"
    );
    assert!(ks_rand > 0.8, "k-Shape Rand too low: {ks_rand}");
}

#[test]
fn kshape_recovers_cbf_classes_reasonably() {
    let mut rng = StdRng::seed_from_u64(5);
    let params = GenParams {
        n_per_class: 15,
        len: 128,
        ..small_params(128)
    };
    let mut data = cbf::generate(&params, &mut rng);
    data.z_normalize();
    let ks =
        KShape::fit_with(&data.series, &KShapeOptions::new(3).with_seed(1)).expect("clean series");
    let r = rand_index(&ks.labels, &data.labels);
    assert!(r > 0.6, "Rand {r} too low on CBF");
}

#[test]
fn kshape_perfect_on_clean_waveforms() {
    let mut rng = StdRng::seed_from_u64(8);
    let params = GenParams {
        n_per_class: 10,
        len: 96,
        noise: 0.05,
        max_shift_frac: 0.2,
        amp_jitter: 1.2,
    };
    // Harmonic mixtures are near-orthogonal shapes: the clean-data case
    // k-Shape should solve essentially perfectly.
    let mut data = seasonal::generate(3, 2.0, &params, &mut rng);
    data.z_normalize();
    let ks =
        KShape::fit_with(&data.series, &KShapeOptions::new(3).with_seed(2)).expect("clean series");
    let r = rand_index(&ks.labels, &data.labels);
    assert!(r > 0.95, "Rand {r} on nearly clean waveforms");
    // Waveform families (sine vs square vs sawtooth) share their
    // fundamental and are a genuinely harder instance; just require
    // better-than-chance there.
    let mut rng = StdRng::seed_from_u64(8);
    let mut hard = sines::generate(3, 3.0, &params, &mut rng);
    hard.z_normalize();
    let ks =
        KShape::fit_with(&hard.series, &KShapeOptions::new(3).with_seed(2)).expect("clean series");
    let r = rand_index(&ks.labels, &hard.labels);
    assert!(r > 0.5, "Rand {r} on waveform families");
}

#[test]
fn multi_restart_never_hurts_best_objective() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut data = seasonal::generate(3, 2.0, &small_params(80), &mut rng);
    data.z_normalize();
    let cfg = KShapeConfig {
        k: 3,
        seed: 50,
        ..Default::default()
    };
    let single = KShape::fit_with(&data.series, &KShapeOptions::from(cfg)).expect("clean series");
    let best = kshape::multi::fit_best(&cfg, &data.series, 4);
    assert!(best.inertia <= single.inertia + 1e-9);
}

#[test]
fn collection_pipeline_clusters_every_dataset() {
    // Smoke the whole collection through k-Shape at minimum size: no
    // panics, sane outputs, labels within range.
    let collection = synthetic_collection(&CollectionSpec {
        seed: 17,
        size_factor: 0.34,
    });
    assert_eq!(collection.len(), 48);
    for split in collection.iter().step_by(7) {
        let fused = split.fused();
        let k = split.n_classes();
        let ks = KShape::fit_with(
            &fused.series,
            &KShapeOptions::new(k).with_seed(4).with_max_iter(15),
        )
        .expect("clean series");
        assert_eq!(ks.labels.len(), fused.n_series());
        assert!(ks.labels.iter().all(|&l| l < k), "{}", split.name());
        let r = rand_index(&ks.labels, &fused.labels);
        assert!((0.0..=1.0).contains(&r));
    }
}

#[test]
fn ucr_roundtrip_preserves_clustering_input() {
    // Save a generated dataset in UCR format, reload it, and verify the
    // clustering outcome is identical — the I/O layer is lossless enough.
    let mut rng = StdRng::seed_from_u64(3);
    let mut data = ecg::generate(&small_params(64), &mut rng);
    data.z_normalize();
    let dir = std::env::temp_dir().join(format!("kshape-it-{}", std::process::id()));
    let split = tsdata::collection::split_alternating(data);
    tsdata::ucr::save_split(&dir, &split).expect("save");
    let reloaded = tsdata::ucr::load_split(&dir, split.name()).expect("load");
    std::fs::remove_dir_all(&dir).ok();

    let a = KShape::fit_with(&split.fused().series, &KShapeOptions::new(2).with_seed(1))
        .expect("clean series");
    let b = KShape::fit_with(
        &reloaded.fused().series,
        &KShapeOptions::new(2).with_seed(1),
    )
    .expect("clean series");
    assert_eq!(a.labels, b.labels);
}
