//! Fault-injection chaos suite: every fallible (`try_*`) entry point in
//! the workspace is fed deterministically corrupted inputs and must
//! either return `Ok` with fully finite outputs or a typed
//! [`tserror::TsError`] — **never** panic, and **never** leak NaN into
//! labels, centroids, memberships, or distances.
//!
//! Faults come from `tsdata::corrupt` ([`FaultKind`]): NaN runs, missing
//! values, flatlines, amplitude spikes, and truncation. Invalidating
//! faults (non-finite values, ragged lengths) must surface as typed
//! errors; degrading-but-valid faults (flatline, spike) must still
//! produce finite results.
//!
//! Driven by `tscheck`: rerun a failing case with
//! `TSCHECK_SEED=0x... cargo test --test chaos`. CI pins three seeds so
//! the corruption space is explored beyond the default stream.

use tscheck::Gen;
use tsdata::corrupt::{corrupt_collection, FaultKind};
use tsdata::dataset::Dataset;
use tsdata::normalize::{try_z_normalize, z_normalize};
use tserror::{TsError, TsResult};
use tsrand::StdRng;

/// A clean, clusterable dataset: `n` z-normalized sines with random
/// phase/frequency per series.
fn clean_series(g: &mut Gen, n: usize, m: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            let freq = g.f64_in(0.15..0.9);
            let phase = g.f64_in(0.0..std::f64::consts::TAU);
            let amp = g.f64_in(0.5..2.0);
            z_normalize(
                &(0..m)
                    .map(|t| amp * (t as f64 * freq + phase).sin())
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

/// Corrupts a series set in place with faults drawn from `kinds`,
/// returning `(any_non_finite, any_ragged)` so properties can decide what
/// outcome the fallible APIs owe them.
fn inject(g: &mut Gen, series: &mut [Vec<f64>], kinds: &[FaultKind]) -> (bool, bool) {
    let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
    let p = g.f64_in(0.1..0.9);
    corrupt_collection(series, kinds, p, &mut rng);
    let non_finite = series.iter().any(|s| s.iter().any(|v| !v.is_finite()));
    let m0 = series.first().map_or(0, Vec::len);
    let ragged = series.iter().any(|s| s.len() != m0);
    (non_finite, ragged)
}

/// The chaos contract for a clustering result: on `Ok`, labels index a
/// real cluster and centroids are entirely finite; on `Err`, the error is
/// typed (trivially true) and a `NotConverged` still carries one valid
/// label per series. Corrupt (non-finite / ragged) input must never
/// produce `Ok`.
fn assert_clustering_contract(
    outcome: &TsResult<(Vec<usize>, Vec<Vec<f64>>)>,
    n: usize,
    k: usize,
    corrupt: bool,
) {
    match outcome {
        Ok((labels, centroids)) => {
            assert!(!corrupt, "corrupt input must not cluster successfully");
            assert_eq!(labels.len(), n);
            assert!(labels.iter().all(|&l| l < k), "label out of range");
            for c in centroids {
                assert!(c.iter().all(|v| v.is_finite()), "NaN leaked into centroid");
            }
        }
        Err(TsError::NotConverged { labels, .. }) => {
            assert!(!corrupt, "corrupt input must fail validation, not converge");
            assert_eq!(labels.len(), n);
            assert!(labels.iter().all(|&l| l < k));
        }
        Err(_) => {} // typed error: acceptable for any input
    }
}

tscheck::props! {
    #[cases(24)]
    fn kshape_fit_survives_chaos(g) {
        let n = g.usize_in(5..12);
        let m = g.usize_in(8..24);
        let mut series = clean_series(g, n, m);
        let (nf, ragged) = inject(g, &mut series, &FaultKind::ALL);
        let k = g.usize_in(1..5);
        let config = kshape::KShapeConfig { k, max_iter: 15, seed: g.u64_in(0..1 << 32), ..Default::default() };
        let outcome = kshape::KShape::fit_with(&series, &kshape::KShapeOptions::from(config))
            .map(|r| (r.labels, r.centroids));
        assert_clustering_contract(&outcome, n, k, nf || ragged);
    }

    #[cases(12)]
    fn kshape_restarts_and_sweep_survive_chaos(g) {
        let n = g.usize_in(6..10);
        let m = g.usize_in(8..16);
        let mut series = clean_series(g, n, m);
        let (nf, ragged) = inject(g, &mut series, &FaultKind::ALL);
        let corrupt = nf || ragged;
        let config = kshape::KShapeConfig { k: 2, max_iter: 10, ..Default::default() };
        let best = kshape::multi::try_fit_best(&config, &series, 2)
            .map(|r| (r.labels, r.centroids));
        assert_clustering_contract(&best, n, 2, corrupt);
        if let Ok(cands) = kshape::validity::try_sweep_k(&series, 2..=3, 1, 7) {
            assert!(!corrupt);
            for c in &cands {
                assert!(c.silhouette.is_finite(), "NaN silhouette for k={}", c.k);
                assert!(c.inertia.is_finite());
            }
        }
    }

    #[cases(32)]
    fn sbd_kernels_survive_chaos(g) {
        let m = g.usize_in(4..32);
        let mut series = clean_series(g, 2, m);
        let _ = inject(g, &mut series, &FaultKind::ALL);
        let (x, y) = (series[0].clone(), series[1].clone());
        let s = kshape::Sbd::new();
        let outcomes = [
            kshape::sbd::try_sbd(&x, &y),
            s.distance(&x, &y, &kshape::SbdOptions::new()),
            s.distance(&x, &y, &kshape::SbdOptions::new().with_rescale(true)),
        ];
        for res in outcomes.into_iter().flatten() {
            assert!(res.dist.is_finite(), "SBD emitted non-finite distance");
            assert!(res.dist >= -1e-9);
            assert!(res.aligned.iter().all(|v| v.is_finite()));
        }
        if x.iter().any(|v| !v.is_finite()) {
            assert!(kshape::sbd::try_sbd(&x, &y).is_err());
            assert!(s.distance(&x, &y, &kshape::SbdOptions::new()).is_err());
        }
    }

    #[cases(24)]
    fn kmeans_and_fuzzy_survive_chaos(g) {
        let n = g.usize_in(5..12);
        let m = g.usize_in(6..20);
        let mut series = clean_series(g, n, m);
        let (nf, ragged) = inject(g, &mut series, &FaultKind::ALL);
        let corrupt = nf || ragged;
        let k = g.usize_in(1..4);
        let seed = g.u64_in(0..1 << 32);

        let km = tscluster::kmeans::kmeans_with(
            &series,
            &tsdist::EuclideanDistance,
            &tscluster::kmeans::KMeansOptions::from(
                tscluster::KMeansConfig { k, max_iter: 15, seed },
            ),
        )
        .map(|r| (r.labels, r.centroids));
        assert_clustering_contract(&km, n, k, corrupt);

        let fz = tscluster::fuzzy::fuzzy_cmeans_with(
            &series,
            &tsdist::EuclideanDistance,
            &tscluster::fuzzy::FuzzyOptions::from(
                tscluster::fuzzy::FuzzyConfig { k, fuzziness: 2.0, max_iter: 15, tol: 1e-6, seed },
            ),
        );
        if let Ok(r) = fz {
            assert!(!corrupt);
            assert!(r.labels.iter().all(|&l| l < k));
            for row in &r.memberships {
                assert!(row.iter().all(|v| v.is_finite()), "NaN membership");
            }
            for c in &r.centroids {
                assert!(c.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[cases(12)]
    fn ksc_and_kdba_survive_chaos(g) {
        let n = g.usize_in(5..9);
        let m = g.usize_in(6..14);
        let mut series = clean_series(g, n, m);
        let (nf, ragged) = inject(g, &mut series, &FaultKind::ALL);
        let corrupt = nf || ragged;
        let k = g.usize_in(1..4);
        let seed = g.u64_in(0..1 << 32);

        let ksc = tscluster::ksc::ksc_with(
            &series,
            &tscluster::ksc::KscOptions::from(
                tscluster::ksc::KscConfig { k, max_iter: 8, seed },
            ),
        )
        .map(|r| (r.labels, r.centroids));
        assert_clustering_contract(&ksc, n, k, corrupt);

        let kdba = tscluster::dba::kdba_with(
            &series,
            &tscluster::dba::KDbaOptions::from(tscluster::dba::KDbaConfig {
                k,
                max_iter: 5,
                seed,
                refinements_per_iter: 1,
                window: Some(3),
            }),
        )
        .map(|r| (r.labels, r.centroids));
        assert_clustering_contract(&kdba, n, k, corrupt);
    }

    #[cases(16)]
    fn matrix_baselines_survive_chaos(g) {
        // PAM / hierarchical / spectral run on a dissimilarity matrix; a
        // corrupted series poisons the matrix with NaN, which the
        // fallible entry points must reject (validate_finite), not
        // propagate.
        let n = g.usize_in(4..10);
        let m = g.usize_in(6..16);
        let mut series = clean_series(g, n, m);
        // Keep lengths equal so the distance matrix itself is computable.
        let kinds = [FaultKind::NanRun, FaultKind::MissingGap, FaultKind::Flatline, FaultKind::Spike];
        let (nf, _) = inject(g, &mut series, &kinds);
        let matrix = tscluster::matrix::DissimilarityMatrix::compute(
            &series,
            &tsdist::EuclideanDistance,
        );
        let k = g.usize_in(1..4);

        if let Ok(r) = tscluster::pam::pam_with(
            &matrix,
            &tscluster::pam::PamOptions::new(k).with_max_iter(10),
        ) {
            assert!(!nf, "NaN matrix must not PAM-cluster");
            assert!(r.labels.iter().all(|&l| l < k));
            assert_eq!(r.medoids.len(), k);
        }

        if let Ok(labels) = tscluster::hierarchical::hierarchical_cluster_with(
            &matrix,
            &tscluster::hierarchical::HierarchicalOptions::new(k)
                .with_linkage(tscluster::Linkage::Average),
        ) {
            assert!(!nf);
            assert!(labels.iter().all(|&l| l < k));
        }

        let sp = tscluster::spectral::spectral_cluster_with(
            &matrix,
            &tscluster::spectral::SpectralOptions::from(tscluster::spectral::SpectralConfig {
                k,
                max_iter: 10,
                seed: g.u64_in(0..1 << 32),
                sigma: None,
            }),
        );
        if let Ok(r) = sp {
            assert!(!nf);
            assert!(r.labels.iter().all(|&l| l < k));
        }
    }

    #[cases(32)]
    fn distance_kernels_survive_chaos(g) {
        let m = g.usize_in(2..32);
        let mut series = clean_series(g, 2, m);
        let (nf, ragged) = inject(g, &mut series, &FaultKind::ALL);
        let (x, y) = (series[0].clone(), series[1].clone());
        let w = g.usize_in(0..6);

        let d = tsdist::dtw::try_dtw_distance(&x, &y, Some(w));
        let p = tsdist::dtw::try_dtw_path(&x, &y, Some(w));
        if let (Ok(dv), Ok((pv, path))) = (&d, &p) {
            assert!(!nf && !ragged);
            assert!(dv.is_finite() && pv.is_finite());
            assert!(!path.is_empty());
        }
        if nf || ragged {
            assert!(d.is_err(), "corrupt pair must not yield a DTW distance");
        }

        match tsdist::lb_keogh::Envelope::try_new(&y, w) {
            Ok(env) => {
                let lb = tsdist::lb_keogh::try_lb_keogh(&x, &env);
                match lb {
                    Ok(v) => assert!(v.is_finite() && v >= 0.0),
                    Err(_) => assert!(nf || ragged),
                }
            }
            Err(_) => assert!(nf, "envelope rejected a finite candidate"),
        }

        if let Ok((v, _)) = tscluster::ksc::KscDistance::try_dist_shift(&x, &y) {
            assert!(!nf && !ragged);
            assert!(v.is_finite() && v >= -1e-9);
        }
    }

    #[cases(16)]
    fn one_nn_pipeline_survives_chaos(g) {
        let n_train = g.usize_in(3..8);
        let n_test = g.usize_in(2..5);
        let m = g.usize_in(6..20);
        let mut all = clean_series(g, n_train + n_test, m);
        let (nf, ragged) = inject(g, &mut all, &FaultKind::ALL);
        let corrupt = nf || ragged;
        let test_series = all.split_off(n_train);
        // Bypass Dataset::new's panicking invariants via direct struct
        // construction — the chaos suite must reach the try_* validators.
        let train = Dataset {
            name: "chaos-train".into(),
            labels: (0..all.len()).map(|i| i % 2).collect(),
            series: all,
        };
        let test = Dataset {
            name: "chaos-test".into(),
            labels: (0..test_series.len()).map(|i| i % 2).collect(),
            series: test_series,
        };
        match tsdist::nn::try_one_nn_accuracy(&tsdist::EuclideanDistance, &train, &test) {
            Ok(acc) => {
                assert!(!corrupt);
                assert!((0.0..=1.0).contains(&acc));
            }
            Err(_) => assert!(corrupt, "clean split must classify"),
        }
        match tsdist::nn::try_one_nn_accuracy_lb(Some(2), &train, &test) {
            Ok((acc, pruned)) => {
                assert!(!corrupt);
                assert!((0.0..=1.0).contains(&acc) && (0.0..=1.0).contains(&pruned));
            }
            Err(_) => assert!(corrupt),
        }
        // classify_one only validates the training set and its one query,
        // so judge it on exactly that scope (other test series may be
        // corrupt without affecting it).
        let m_train = train.series[0].len();
        let train_bad = train
            .series
            .iter()
            .any(|s| s.len() != m_train || s.iter().any(|v| !v.is_finite()));
        let q = &test.series[0];
        let q_bad = q.len() != m_train || q.iter().any(|v| !v.is_finite());
        match tsdist::nn::try_classify_one(&tsdist::EuclideanDistance, &train, q) {
            Ok(Some(l)) => {
                assert!(!(train_bad || q_bad));
                assert!(l < 2);
            }
            Ok(None) => {}
            Err(_) => assert!(train_bad || q_bad),
        }
    }

    #[cases(32)]
    fn normalization_survives_chaos(g) {
        let n = g.usize_in(2..8);
        let m = g.usize_in(2..24);
        let mut series = clean_series(g, n, m);
        let (nf, _) = inject(g, &mut series, &FaultKind::ALL);
        for s in &series {
            match try_z_normalize(s) {
                Ok(z) => assert!(z.iter().all(|v| v.is_finite()), "NaN after z-norm"),
                Err(TsError::NonFinite { .. }) => {
                    assert!(s.iter().any(|v| !v.is_finite()));
                }
                Err(TsError::ConstantSeries { .. }) => {
                    assert!(s.iter().all(|v| v.is_finite()));
                }
                Err(TsError::EmptyInput) => assert!(s.is_empty()),
                Err(e) => panic!("unexpected error from try_z_normalize: {e}"),
            }
        }
        // Dataset-level accounting: equal-length corrupted set.
        let m0 = series[0].len();
        let equal: Vec<Vec<f64>> = series.iter().filter(|s| s.len() == m0).cloned().collect();
        let n_eq = equal.len();
        let mut d = Dataset {
            name: "chaos-norm".into(),
            labels: vec![0; n_eq],
            series: equal,
        };
        match d.try_z_normalize() {
            Ok(report) => {
                assert!(report.normalized + report.constant == n_eq);
                for s in &d.series {
                    assert!(s.iter().all(|v| v.is_finite()));
                }
            }
            Err(TsError::NonFinite { series: idx, .. }) => {
                assert!(nf);
                assert!(idx < n_eq);
            }
            Err(e) => panic!("unexpected dataset normalization error: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution-control chaos: random budgets and cancellation against every
// `*_with_control` entry point. The contract: any outcome is either
// in-range labels or a typed error whose partial labels are themselves
// in range — never a panic, never an out-of-range label.
// ---------------------------------------------------------------------------

use std::time::Duration;
use tsrun::{retry_with_reseed, Budget, CancelToken, RunControl};

/// Draws the raw ingredients of a hostile execution control: an optional
/// budget mixing a microsecond deadline, a tiny iteration cap, and a
/// small cost quota, plus a (possibly already fired) cancel token.
fn random_parts(g: &mut Gen) -> (Option<Budget>, Option<CancelToken>) {
    let mut budget = Budget::unlimited();
    if g.f64_in(0.0..1.0) < 0.4 {
        budget = budget.with_deadline(Duration::from_micros(g.u64_in(0..800)));
    }
    if g.f64_in(0.0..1.0) < 0.4 {
        budget = budget.with_iteration_cap(g.usize_in(0..6));
    }
    if g.f64_in(0.0..1.0) < 0.4 {
        budget = budget.with_cost_cap(g.u64_in(0..20_000));
    }
    let cancel = if g.f64_in(0.0..1.0) < 0.3 {
        let token = CancelToken::new();
        if g.f64_in(0.0..1.0) < 0.5 {
            token.cancel();
        }
        Some(token)
    } else {
        None
    };
    let budget = if budget.is_unlimited() {
        None
    } else {
        Some(budget)
    };
    (budget, cancel)
}

/// Arms the random parts as a `RunControl` with stride 1 so the deadline
/// clock is consulted on every poll — maximally hostile.
fn random_control(g: &mut Gen) -> RunControl {
    let (budget, cancel) = random_parts(g);
    RunControl::from_parts(budget, cancel).with_clock_stride(1)
}

/// The stop contract shared by every budgeted clusterer.
fn assert_stop_contract(outcome: TsResult<Vec<usize>>, n: usize, k: usize, what: &str) {
    match outcome {
        Ok(labels) => {
            assert_eq!(labels.len(), n, "{what}: wrong label count");
            assert!(labels.iter().all(|&l| l < k), "{what}: label out of range");
        }
        Err(TsError::Stopped { labels, .. }) => {
            assert!(
                labels.is_empty() || labels.len() == n,
                "{what}: partial labeling must be empty or complete"
            );
            assert!(
                labels.iter().all(|&l| l < k),
                "{what}: partial label out of range"
            );
        }
        Err(TsError::NotConverged { labels, .. }) => {
            assert_eq!(labels.len(), n, "{what}: NotConverged label count");
            assert!(
                labels.iter().all(|&l| l < k),
                "{what}: NotConverged label range"
            );
        }
        Err(_) => {} // any other typed error is acceptable
    }
}

tscheck::props! {
    #[cases(16)]
    fn budgets_and_cancellation_never_panic(g) {
        let n = g.usize_in(6..12);
        let m = g.usize_in(8..20);
        let series = clean_series(g, n, m);
        let k = g.usize_in(2..4);
        let seed = g.u64_in(0..1 << 32);

        let (budget, cancel) = random_parts(g);
        assert_stop_contract(
            kshape::KShape::fit_with(&series, &kshape::KShapeOptions {
                config: kshape::KShapeConfig {
                    k, max_iter: 10, seed, ..Default::default()
                },
                budget, cancel, recorder: None,
            })
            .map(|r| r.labels),
            n, k, "k-Shape",
        );
        let (budget, cancel) = random_parts(g);
        assert_stop_contract(
            tscluster::kmeans::kmeans_with(
                &series,
                &tsdist::EuclideanDistance,
                &tscluster::kmeans::KMeansOptions {
                    config: tscluster::KMeansConfig { k, max_iter: 10, seed },
                    budget, cancel, recorder: None,
                },
            )
            .map(|r| r.labels),
            n, k, "k-AVG",
        );
        let (budget, cancel) = random_parts(g);
        assert_stop_contract(
            tscluster::dba::kdba_with(
                &series,
                &tscluster::dba::KDbaOptions {
                    config: tscluster::dba::KDbaConfig {
                        k, max_iter: 5, seed, refinements_per_iter: 1, window: Some(m / 4),
                    },
                    budget, cancel, recorder: None,
                },
            )
            .map(|r| r.labels),
            n, k, "k-DBA",
        );
        let (budget, cancel) = random_parts(g);
        assert_stop_contract(
            tscluster::ksc::ksc_with(
                &series,
                &tscluster::ksc::KscOptions {
                    config: tscluster::ksc::KscConfig { k, max_iter: 5, seed },
                    budget, cancel, recorder: None,
                },
            )
            .map(|r| r.labels),
            n, k, "KSC",
        );
        let (budget, cancel) = random_parts(g);
        assert_stop_contract(
            tscluster::fuzzy::fuzzy_cmeans_with(
                &series,
                &tsdist::EuclideanDistance,
                &tscluster::fuzzy::FuzzyOptions {
                    config: tscluster::fuzzy::FuzzyConfig {
                        k, fuzziness: 2.0, max_iter: 10, tol: 1e-4, seed,
                    },
                    budget, cancel, recorder: None,
                },
            )
            .map(|r| r.labels),
            n, k, "fuzzy c-means",
        );
    }

    #[cases(12)]
    fn budgeted_matrix_methods_never_panic(g) {
        let n = g.usize_in(6..12);
        let m = g.usize_in(8..16);
        let series = clean_series(g, n, m);
        let k = g.usize_in(2..4);
        let seed = g.u64_in(0..1 << 32);

        // The matrix build itself is budgeted…
        let build = tscluster::matrix::DissimilarityMatrix::try_compute_with_control(
            &series,
            &tsdist::EuclideanDistance,
            &random_control(g),
        );
        match build {
            Ok(matrix) => {
                // …and so is everything consuming it.
                let (budget, cancel) = random_parts(g);
                assert_stop_contract(
                    tscluster::pam::pam_with(
                        &matrix,
                        &tscluster::pam::PamOptions {
                            config: tscluster::pam::PamConfig { k, max_iter: 10 },
                            budget, cancel, recorder: None,
                        },
                    )
                    .map(|r| r.labels),
                    n, k, "PAM",
                );
                let (budget, cancel) = random_parts(g);
                assert_stop_contract(
                    tscluster::spectral::spectral_cluster_with(
                        &matrix,
                        &tscluster::spectral::SpectralOptions {
                            config: tscluster::spectral::SpectralConfig {
                                k, max_iter: 10, seed, sigma: None,
                            },
                            budget, cancel, recorder: None,
                        },
                    )
                    .map(|r| r.labels),
                    n, k, "spectral",
                );
                let (budget, cancel) = random_parts(g);
                assert_stop_contract(
                    tscluster::hierarchical::hierarchical_cluster_with(
                        &matrix,
                        &tscluster::hierarchical::HierarchicalOptions {
                            config: tscluster::hierarchical::HierarchicalConfig {
                                k,
                                linkage: tscluster::Linkage::Average,
                            },
                            budget, cancel, recorder: None,
                        },
                    ),
                    n, k, "hierarchical",
                );
            }
            Err(TsError::Stopped { labels, .. }) => {
                assert!(labels.is_empty(), "a matrix build has no labeling");
            }
            Err(e) => panic!("unexpected matrix error on clean input: {e}"),
        }
    }

    #[cases(12)]
    fn ladder_survives_chaos_and_budgets(g) {
        let n = g.usize_in(6..12);
        let m = g.usize_in(8..16);
        let mut series = clean_series(g, n, m);
        let (nf, ragged) = inject(g, &mut series, &FaultKind::ALL);
        let k = 2;
        let config = tscluster::LadderConfig {
            k,
            max_iter: 10,
            seed: g.u64_in(0..1 << 32),
            max_attempts_per_rung: 2,
            descend_on_stop: g.f64_in(0.0..1.0) < 0.5,
            ..Default::default()
        };
        let (budget, cancel) = random_parts(g);
        let opts = tscluster::LadderOptions {
            config,
            budget,
            cancel,
            recorder: None,
        };
        match tscluster::cluster_with_ladder(&series, &opts) {
            Ok(outcome) => {
                assert!(!(nf || ragged), "corrupt input must not cluster");
                assert_eq!(outcome.labels.len(), n);
                assert!(outcome.labels.iter().all(|&l| l < k));
            }
            Err(TsError::Stopped { labels, .. }) => {
                assert!(labels.is_empty() || labels.len() == n);
                assert!(labels.iter().all(|&l| l < k));
            }
            Err(_) => {} // typed error: acceptable for any input
        }
    }

    #[cases(16)]
    fn retry_with_reseed_is_deterministic(g) {
        let base_seed = g.u64_in(0..u64::MAX);
        let max_attempts = g.u64_in(1..5) as u32;
        // Fail the first `fail_below` attempts with a retryable error,
        // then succeed returning the seed that was actually used.
        let fail_below = g.usize_in(0..6);
        let run_once = || {
            let mut calls = 0usize;
            let report = retry_with_reseed(base_seed, max_attempts, tsrun::default_retryable, |seed| {
                calls += 1;
                if calls <= fail_below {
                    Err(TsError::NumericalFailure {
                        context: format!("synthetic failure #{calls}"),
                    })
                } else {
                    Ok(seed)
                }
            });
            (report.outcome, report.attempts, report.seed_used, report.failures.len())
        };
        let (o1, a1, s1, f1) = run_once();
        let (o2, a2, s2, f2) = run_once();
        assert_eq!(a1, a2, "attempt count must be deterministic");
        assert_eq!(s1, s2, "seed schedule must be deterministic");
        assert_eq!(f1, f2, "failure log must be deterministic");
        match (o1, o2) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x, y, "derived seed must be deterministic");
                assert_eq!(f1, fail_below, "every failed attempt must be recorded");
                assert!(fail_below < max_attempts as usize);
            }
            (Err(_), Err(_)) => {
                assert!(
                    fail_below >= max_attempts as usize,
                    "must only exhaust when all attempts fail"
                );
                assert_eq!(a1, max_attempts);
                assert_eq!(f1, max_attempts as usize, "every failed attempt must be recorded");
            }
            _ => panic!("outcomes diverged between identical runs"),
        }
        // Attempt 0 always uses the base seed verbatim.
        if fail_below == 0 {
            assert_eq!(s1, base_seed);
        }
    }

    #[cases(16)]
    fn truncated_checkpoints_are_quarantined_never_trusted(g) {
        use tsexperiments::checkpoint::{CheckpointCell, CheckpointStore, LoadOutcome};
        let cell = CheckpointCell {
            method: "k-Shape".into(),
            dataset: format!("chaos_{}", g.u64_in(0..1 << 20)),
            config_tag: "seed=0;size_factor=0.1;runs=1;max_iter=5".into(),
            rand_index: g.f64_in(0.0..1.0),
        };
        let dir = std::env::temp_dir().join(format!(
            "tsexp_chaos_{}_{}",
            std::process::id(),
            g.case_seed(),
        ));
        let store = CheckpointStore::new(&dir);
        store.store(&cell).expect("store");
        // Byte-truncate the on-disk checkpoint the way a kill -9 would.
        let path = {
            let mut it = std::fs::read_dir(&dir).expect("dir");
            it.next().expect("one file").expect("entry").path()
        };
        let mut bytes = std::fs::read(&path).expect("read");
        let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
        let removed = tsdata::corrupt::truncate_checkpoint(&mut bytes, &mut rng);
        assert!(removed > 0);
        std::fs::write(&path, &bytes).expect("write truncated");
        // Every prefix must be classified corrupt and quarantined.
        let (loaded, outcome) = store.load(&cell.method, &cell.dataset, &cell.config_tag);
        assert!(loaded.is_none(), "truncated checkpoint must never load");
        assert_eq!(outcome, LoadOutcome::Quarantined);
        // The quarantined evidence survives; the original name is free.
        assert!(!path.exists());
        let corrupt: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
            .collect();
        assert_eq!(corrupt.len(), 1, "quarantine file missing");
        // A fresh store of the same cell resumes cleanly.
        store.store(&cell).expect("re-store");
        let (reloaded, outcome) = store.load(&cell.method, &cell.dataset, &cell.config_tag);
        assert_eq!(outcome, LoadOutcome::Hit);
        assert_eq!(reloaded.expect("hit").rand_index.to_bits(), cell.rand_index.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
