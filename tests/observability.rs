//! Observability invariants: arming a recorder must never change a
//! result, and the event stream itself must be deterministic.
//!
//! Three contracts are pinned here:
//!
//! 1. **Zero observer effect** — every fit is bit-identical with a JSONL
//!    recorder armed vs fully disarmed (telemetry derives from the
//!    computation, never feeds back into it).
//! 2. **Deterministic streams** — two identically seeded runs emit
//!    identical event streams once span timings are stripped
//!    ([`tsobs::strip_timing`]); counters, iteration events, and event
//!    order are part of the reproducibility surface.
//! 3. **Golden snapshot holds under telemetry** — the pinned collection
//!    hash of `tests/determinism.rs` still matches while a recorder is
//!    armed, so telemetry cannot perturb the `tsrand` stream.

use kshape_repro::prelude::*;
use kshape_repro::tsobs;
use tsdata::collection::{synthetic_collection, CollectionSpec};
use tsdata::normalize::z_normalize;

/// Same deterministic dataset as `tests/determinism.rs`.
fn sine_dataset() -> Vec<Vec<f64>> {
    (0..10)
        .map(|i| {
            z_normalize(
                &(0..32)
                    .map(|t| ((t + i * 3) as f64 * 0.35).sin() + (i % 2) as f64 * 0.8)
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// FNV-1a over the exact bit patterns of a float slice.
fn hash_f64s(acc: u64, xs: &[f64]) -> u64 {
    let mut h = acc;
    for &x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn result_hash(labels: &[usize], inertia: f64, centroids: &[Vec<f64>]) -> u64 {
    let mut h = hash_f64s(0xCBF2_9CE4_8422_2325, &[inertia]);
    h = hash_f64s(h, &labels.iter().map(|&l| l as f64).collect::<Vec<_>>());
    for c in centroids {
        h = hash_f64s(h, c);
    }
    h
}

#[test]
fn armed_jsonl_recorder_never_changes_results() {
    let series = sine_dataset();

    // k-Shape: disarmed vs armed into a JSONL sink.
    let opts = KShapeOptions::new(3).with_seed(42).with_max_iter(50);
    let plain = KShape::fit_with(&series, &opts).expect("clean series");
    let buf = SharedBuf::new();
    let sink = JsonlSink::to_shared_buf(&buf);
    let armed =
        KShape::fit_with(&series, &opts.clone().with_recorder(&sink)).expect("clean series");
    assert_eq!(
        result_hash(&plain.labels, plain.inertia, &plain.centroids),
        result_hash(&armed.labels, armed.inertia, &armed.centroids),
        "k-Shape result drifted when the recorder was armed"
    );
    sink.flush().expect("in-memory sink");
    let n_events = tsobs::validate_jsonl(&buf.as_string()).expect("stream must be schema-valid");
    assert!(n_events > 0, "armed run must emit events");

    // k-means: same contract.
    let kopts = KMeansOptions::new(3).with_seed(7).with_max_iter(50);
    let plain = kmeans_with(&series, &EuclideanDistance, &kopts).expect("clean series");
    let sink = MemorySink::new();
    let armed = kmeans_with(
        &series,
        &EuclideanDistance,
        &kopts.clone().with_recorder(&sink),
    )
    .expect("clean series");
    assert_eq!(
        result_hash(&plain.labels, plain.inertia, &plain.centroids),
        result_hash(&armed.labels, armed.inertia, &armed.centroids),
        "k-means result drifted when the recorder was armed"
    );
    assert!(!sink.iteration_events().is_empty());
}

#[test]
fn identically_seeded_runs_emit_identical_streams_modulo_timing() {
    let series = sine_dataset();
    let capture = |seed: u64| {
        let buf = SharedBuf::new();
        let sink = JsonlSink::to_shared_buf(&buf);
        let opts = KShapeOptions::new(3)
            .with_seed(seed)
            .with_max_iter(50)
            .with_recorder(&sink);
        let fit = KShape::fit_with(&series, &opts).expect("clean series");
        sink.flush().expect("in-memory sink");
        (fit.inertia, buf.as_string())
    };

    let (inertia_a, stream_a) = capture(42);
    let (inertia_b, stream_b) = capture(42);
    assert_eq!(inertia_a.to_bits(), inertia_b.to_bits());
    assert!(!stream_a.is_empty());
    assert_eq!(
        tsobs::strip_timing(&stream_a),
        tsobs::strip_timing(&stream_b),
        "same seed must produce the same event stream up to span timings"
    );

    // A different seed is allowed to (and here does) change the stream.
    let (_, stream_c) = capture(43);
    assert_ne!(
        tsobs::strip_timing(&stream_a),
        tsobs::strip_timing(&stream_c),
        "different seeds should explore different refinement paths here"
    );
}

/// Mirror of the pinned snapshot in `tests/determinism.rs` — update both
/// together, and only with a documented generator change.
const GOLDEN_N: usize = 12;
const GOLDEN_M: usize = 64;
const GOLDEN_HASH: u64 = 0x4A37_6DE9_30F8_0B25;

#[test]
fn golden_snapshot_holds_while_recorder_is_armed() {
    let buf = SharedBuf::new();
    let sink = JsonlSink::to_shared_buf(&buf);

    let collection = synthetic_collection(&CollectionSpec {
        seed: 0x5ADE,
        size_factor: 0.34,
    });
    let d = &collection[0];
    let fused = d.fused();

    // Cluster the golden dataset with telemetry armed…
    let opts = KShapeOptions::new(d.n_classes().max(1))
        .with_seed(0x5ADE)
        .with_recorder(&sink);
    let _ = KShape::fit_with(&fused.series, &opts).expect("golden dataset is clean");

    // …and verify the pinned content hash is untouched.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for s in d.train.series.iter().chain(d.test.series.iter()) {
        h = hash_f64s(h, s);
    }
    for &l in d.train.labels.iter().chain(d.test.labels.iter()) {
        h = hash_f64s(h, &[l as f64]);
    }
    let n = d.train.series.len() + d.test.series.len();
    let m = d.train.series[0].len();
    assert_eq!((n, m), (GOLDEN_N, GOLDEN_M));
    assert_eq!(h, GOLDEN_HASH, "golden hash drifted with telemetry armed");

    sink.flush().expect("in-memory sink");
    assert!(tsobs::validate_jsonl(&buf.as_string()).expect("valid stream") > 0);
}
