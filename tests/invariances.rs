//! Cross-crate invariance tests: each distortion of paper Section 2.2 is
//! produced by `tsdata::distort` and must be absorbed by the measure that
//! claims the corresponding invariance.

use kshape::sbd::sbd;
use tsdata::distort::{shift_zero_pad, warp_local};
use tsdata::normalize::z_normalize;
use tsdist::dtw::dtw_distance;
use tsdist::ed::euclidean;

fn wavy(m: usize, f: f64, phase: f64) -> Vec<f64> {
    (0..m)
        .map(|i| (f * i as f64 / m as f64 * std::f64::consts::TAU + phase).sin())
        .collect()
}

#[test]
fn sbd_absorbs_scaling_and_translation_after_znorm() {
    let x = wavy(64, 2.0, 0.3);
    let distorted: Vec<f64> = x.iter().map(|v| 5.0 * v + 100.0).collect();
    // z-normalization (the paper's preprocessing) plus SBD's own
    // coefficient normalization make the pair indistinguishable.
    let d = sbd(&z_normalize(&x), &z_normalize(&distorted)).dist;
    assert!(d < 1e-9, "{d}");
}

#[test]
fn sbd_absorbs_global_phase_shift_but_ed_does_not() {
    let x = z_normalize(
        &(0..96)
            .map(|i| (-((i as f64 - 30.0) / 5.0).powi(2)).exp())
            .collect::<Vec<_>>(),
    );
    let shifted = shift_zero_pad(&x, 12);
    let d_sbd = sbd(&x, &shifted).dist;
    let d_ed = euclidean(&x, &shifted);
    assert!(d_sbd < 0.1, "SBD {d_sbd}");
    assert!(d_ed > 5.0, "ED should be large: {d_ed}");
}

#[test]
fn dtw_absorbs_local_warping_better_than_ed_and_sbd() {
    let x = z_normalize(&wavy(128, 3.0, 0.0));
    let warped = z_normalize(&warp_local(&x, 4.0, 1.3));
    let d_dtw = dtw_distance(&x, &warped, None);
    let d_ed = euclidean(&x, &warped);
    assert!(
        d_dtw < 0.5 * d_ed,
        "DTW {d_dtw} should absorb the warp, ED {d_ed}"
    );
    // SBD's single linear drift cannot fully undo a non-linear warp.
    let d_sbd = sbd(&x, &warped).dist;
    assert!(d_sbd > 1e-3, "warping is not a pure shift: SBD {d_sbd}");
}

#[test]
fn cdtw_interpolates_between_ed_and_dtw() {
    let x = z_normalize(&wavy(64, 2.0, 0.0));
    let y = z_normalize(&wavy(64, 2.0, 0.8));
    let full = dtw_distance(&x, &y, None);
    let ed = euclidean(&x, &y);
    let mut last = ed;
    for w in [0usize, 2, 4, 8, 16, 64] {
        let d = dtw_distance(&x, &y, Some(w));
        assert!(d <= last + 1e-12, "window {w}");
        assert!(d >= full - 1e-12, "window {w}");
        last = d;
    }
}

#[test]
fn lcss_provides_occlusion_invariance_that_ed_lacks() {
    // Occlude a chunk of the series: LCSS skips it, ED pays full price.
    let x = z_normalize(&wavy(60, 2.0, 0.0));
    let mut y = x.clone();
    for v in &mut y[20..30] {
        *v = 0.0;
    }
    let d_lcss = tsdist::lcss::lcss_distance(&x, &y, 0.05, None);
    // Exactly the occluded fraction is unmatched.
    assert!(d_lcss <= 10.0 / 60.0 + 1e-9, "LCSS {d_lcss}");
    let d_ed = euclidean(&x, &y);
    assert!(d_ed > 1.0, "ED should be heavily affected: {d_ed}");
}

#[test]
fn cid_separates_complexity_that_ed_conflates() {
    // Two pairs at the same ED, one with matched complexity and one with
    // mismatched complexity: CID must rank the mismatched pair farther.
    let smooth = z_normalize(&wavy(64, 1.0, 0.0));
    let smooth_shifted = z_normalize(&wavy(64, 1.0, 0.3));
    let busy = z_normalize(&wavy(64, 11.0, 0.0));
    let ed_like = euclidean(&smooth, &smooth_shifted);
    let ed_busy = euclidean(&smooth, &busy);
    let cid_like = tsdist::cid::cid(&smooth, &smooth_shifted);
    let cid_busy = tsdist::cid::cid(&smooth, &busy);
    // CID inflates the complexity-mismatched pair much more.
    assert!(
        cid_busy / ed_busy > cid_like / ed_like + 0.5,
        "CID factors: like {} vs busy {}",
        cid_like / ed_like,
        cid_busy / ed_busy
    );
}

#[test]
fn erp_and_msm_are_metrics_where_dtw_is_not() {
    // A classic DTW triangle-inequality violation pattern: constant,
    // impulse, and double-impulse sequences.
    let a = vec![0.0; 8];
    let mut b = vec![0.0; 8];
    b[3] = 4.0;
    let mut c = vec![0.0; 8];
    c[2] = 4.0;
    c[5] = 4.0;
    // Metric measures must satisfy the triangle inequality on this triple.
    let erp = |x: &[f64], y: &[f64]| tsdist::erp::erp_distance(x, y, 0.0);
    assert!(erp(&a, &c) <= erp(&a, &b) + erp(&b, &c) + 1e-9);
    let msm = |x: &[f64], y: &[f64]| tsdist::msm::msm_distance(x, y, 0.5);
    assert!(msm(&a, &c) <= msm(&a, &b) + msm(&b, &c) + 1e-9);
}

#[test]
fn uniform_scaling_handled_by_rescaled_sbd() {
    // Heartbeats "with measurement periods of different duration"
    // (Section 2.2): the same beat sampled at half the rate.
    let long = z_normalize(&wavy(128, 3.0, 0.4));
    let short = tsdata::distort::resample(&long, 64);
    let r = kshape::Sbd::new()
        .distance(&long, &short, &kshape::SbdOptions::new().with_rescale(true))
        .expect("clean input");
    assert!(r.dist < 0.01, "rescaled SBD {}", r.dist);
}

tscheck::props! {
    #[cases(32)]
    fn sbd_range_and_identity(g) {
        let sig = g.vec_f64(4..48, -50.0..50.0);
        let z = z_normalize(&sig);
        // A constant input z-normalizes to all zeros; SBD defines that
        // case as distance 0 to itself.
        let d_self = sbd(&z, &z).dist;
        assert!(d_self.abs() < 1e-9);
        let rev: Vec<f64> = z.iter().rev().copied().collect();
        let d = sbd(&z, &rev).dist;
        assert!((0.0..=2.0 + 1e-9).contains(&d));
    }

    #[cases(32)]
    fn sbd_scale_invariance_property(g) {
        let sig = g.vec_f64(4..48, -50.0..50.0);
        let scale = g.f64_in(0.01..100.0);
        let other: Vec<f64> = sig.iter().enumerate().map(|(i, v)| v + (i as f64).sin()).collect();
        let scaled: Vec<f64> = other.iter().map(|v| scale * v).collect();
        let d1 = sbd(&sig, &other).dist;
        let d2 = sbd(&sig, &scaled).dist;
        assert!((d1 - d2).abs() < 1e-7, "{d1} vs {d2}");
    }

    #[cases(32)]
    fn dtw_upper_bounded_by_ed_property(g) {
        let sig = g.vec_f64(2..40, -50.0..50.0);
        let m = sig.len();
        let other: Vec<f64> = (0..m).map(|i| sig[m - 1 - i] * 0.5 + 1.0).collect();
        assert!(dtw_distance(&sig, &other, None) <= euclidean(&sig, &other) + 1e-9);
    }

    #[cases(32)]
    fn znorm_then_sbd_invariant_to_affine_distortion(g) {
        let sig = g.vec_f64(8..40, -50.0..50.0);
        let a = g.f64_in(0.1..20.0);
        let b = g.f64_in(-100.0..100.0);
        // Skip degenerate constant inputs.
        let z = z_normalize(&sig);
        tscheck::assume!(z.iter().any(|&v| v.abs() > 1e-9));
        let affine: Vec<f64> = sig.iter().map(|v| a * v + b).collect();
        let d = sbd(&z, &z_normalize(&affine)).dist;
        assert!(d < 1e-7, "{d}");
    }
}
