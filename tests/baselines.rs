//! Cross-crate tests of the baseline clustering algorithms on generated
//! shape data — each baseline must behave as the paper characterizes it.

use kshape_repro::prelude::*;
use tsdata::generators::{seasonal, GenParams};
use tsdist::dtw::Dtw;
use tsdist::EuclideanDistance;
use tseval::rand_index::rand_index;
use tsrand::StdRng;

fn waveform_data(noise: f64, shift: f64) -> tsdata::Dataset {
    let params = GenParams {
        n_per_class: 10,
        len: 80,
        noise,
        max_shift_frac: shift,
        amp_jitter: 1.3,
    };
    let mut rng = StdRng::seed_from_u64(31);
    // Harmonic-mixture classes: near-orthogonal shapes, so a shift- and
    // scale-invariant measure separates them cleanly.
    let mut d = seasonal::generate(3, 2.0, &params, &mut rng);
    d.z_normalize();
    d
}

#[test]
fn pam_with_sbd_clusters_shifted_waveforms() {
    let data = waveform_data(0.1, 0.25);
    let matrix = DissimilarityMatrix::compute(&data.series, &Sbd::new());
    let r = pam_with(&matrix, &PamOptions::new(3).with_max_iter(100)).expect("finite matrix");
    let rand = rand_index(&r.labels, &data.labels);
    assert!(rand > 0.9, "PAM+SBD Rand {rand}");
}

#[test]
fn pam_with_ed_struggles_on_the_same_shifted_data() {
    let data = waveform_data(0.1, 0.25);
    let sbd_matrix = DissimilarityMatrix::compute(&data.series, &Sbd::new());
    let ed_matrix = DissimilarityMatrix::compute(&data.series, &EuclideanDistance);
    let opts = PamOptions::new(3).with_max_iter(100);
    let r_sbd = rand_index(
        &pam_with(&sbd_matrix, &opts).expect("finite matrix").labels,
        &data.labels,
    );
    let r_ed = rand_index(
        &pam_with(&ed_matrix, &opts).expect("finite matrix").labels,
        &data.labels,
    );
    assert!(
        r_sbd > r_ed,
        "shift-invariant distance must help PAM: SBD {r_sbd} vs ED {r_ed}"
    );
}

#[test]
fn hierarchical_with_sbd_handles_shifted_waveforms() {
    let data = waveform_data(0.08, 0.2);
    let matrix = DissimilarityMatrix::compute(&data.series, &Sbd::new());
    let labels = hierarchical_cluster_with(
        &matrix,
        &HierarchicalOptions::new(3).with_linkage(Linkage::Complete),
    )
    .expect("finite matrix");
    let rand = rand_index(&labels, &data.labels);
    assert!(rand > 0.8, "H-C+SBD Rand {rand}");
}

#[test]
fn spectral_with_sbd_handles_shifted_waveforms() {
    let data = waveform_data(0.08, 0.2);
    let matrix = DissimilarityMatrix::compute(&data.series, &Sbd::new());
    let r = spectral_cluster_with(&matrix, &SpectralOptions::new(3).with_seed(2))
        .expect("finite matrix");
    let rand = rand_index(&r.labels, &data.labels);
    assert!(rand > 0.8, "S+SBD Rand {rand}");
}

#[test]
fn kdba_handles_small_shifts_within_warping_reach() {
    // DTW-based methods are at their best when phase shifts are small —
    // exactly the regime the paper contrasts with SBD's global alignment.
    let data = waveform_data(0.08, 0.04);
    let r = kdba_with(
        &data.series,
        &KDbaOptions::new(3).with_seed(6).with_max_iter(30),
    )
    .expect("clean series");
    let rand = rand_index(&r.labels, &data.labels);
    assert!(rand > 0.7, "k-DBA Rand {rand}");
}

#[test]
fn dtw_methods_degrade_on_large_shifts_where_sbd_does_not() {
    // The paper's central contrast: global phase shifts defeat banded DTW
    // but not SBD.
    let data = waveform_data(0.08, 0.25);
    let w = (0.05 * 80.0) as usize;
    let cdtw_matrix = DissimilarityMatrix::compute(&data.series, &Dtw::with_window(w));
    let sbd_matrix = DissimilarityMatrix::compute(&data.series, &Sbd::new());
    let opts = PamOptions::new(3).with_max_iter(100);
    let r_cdtw = rand_index(
        &pam_with(&cdtw_matrix, &opts).expect("finite matrix").labels,
        &data.labels,
    );
    let r_sbd = rand_index(
        &pam_with(&sbd_matrix, &opts).expect("finite matrix").labels,
        &data.labels,
    );
    assert!(
        r_sbd > r_cdtw,
        "PAM+SBD {r_sbd} must beat PAM+cDTW {r_cdtw} on strongly shifted data"
    );
}

#[test]
fn ksc_handles_scaled_and_shifted_waveforms() {
    let data = waveform_data(0.08, 0.2);
    let r = ksc_with(
        &data.series,
        &KscOptions::new(3).with_seed(9).with_max_iter(50),
    )
    .expect("clean series");
    let rand = rand_index(&r.labels, &data.labels);
    assert!(rand > 0.7, "KSC Rand {rand}");
}

#[test]
fn pam_cdtw_matches_paper_role_of_strong_competitor() {
    // With shifts inside the warping window, PAM+cDTW is the strong
    // competitor of the paper.
    let data = waveform_data(0.1, 0.04);
    let w = (0.05 * 80.0) as usize;
    let matrix = DissimilarityMatrix::compute(&data.series, &Dtw::with_window(w));
    let r = pam_with(&matrix, &PamOptions::new(3).with_max_iter(100)).expect("finite matrix");
    let rand = rand_index(&r.labels, &data.labels);
    assert!(rand > 0.7, "PAM+cDTW Rand {rand}");
}

#[test]
fn dissimilarity_matrix_parallel_equals_serial_for_sbd() {
    let data = waveform_data(0.1, 0.1);
    let serial = DissimilarityMatrix::compute(&data.series, &Sbd::new());
    let parallel = DissimilarityMatrix::compute_parallel(&data.series, &Sbd::new(), 4);
    for i in 0..serial.len() {
        for j in 0..serial.len() {
            assert!((serial.get(i, j) - parallel.get(i, j)).abs() < 1e-9);
        }
    }
}
