//! Scale-tier integration properties for the contiguous data plane
//! (PR 9): spilled segments under byte-level fault injection, and the
//! `f32` storage tier against the `f64` reference fit.
//!
//! * Spill chaos: a sealed segment hit by a [`ByteFault`] (torn write,
//!   bit rot, garbage prefix) must surface as a typed
//!   [`TsError::CorruptData`] on the next cold read — never a panic,
//!   never a silently wrong row. Rows that still read `Ok` must be
//!   bit-identical to the clean data.
//! * Narrowing tolerance: storing rows as `f32` perturbs each sample by
//!   at most one part in 2²⁴, which shifts SBD distances in the ~1e-7
//!   range. On well-separated CBF classes that can only flip rows that
//!   sit near a cluster boundary, so the property demands ≥ 95% label
//!   agreement (under the best cluster relabeling) with the `f64` fit
//!   rather than bit equality — and a deterministic companion test pins
//!   exact agreement on a cleanly separated workload.
//!
//! Driven by `tscheck`: rerun a failing case with
//! `TSCHECK_SEED=0x... cargo test --test scale`.

use kshape::{fit_store, KShapeOptions};
use tsdata::corrupt::{corrupt_bytes, ByteFault};
use tsdata::generators::cbf;
use tsdata::normalize::z_normalize_in_place;
use tsdata::store::{ElemType, SeriesStore, SeriesView, SpillConfig};
use tserror::TsError;
use tsrand::StdRng;

/// Class-major z-normalized CBF rows: `per` series of each of the 3
/// classes, in class order.
fn cbf_rows(per: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(3 * per);
    for class in 0..3 {
        for _ in 0..per {
            let mut s = cbf::generate_one(class, m, &mut rng);
            z_normalize_in_place(&mut s);
            out.push(s);
        }
    }
    out
}

/// A fresh spill directory unique to this test case.
fn spill_dir(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("scale_it_{tag}_{}_{case:016x}", std::process::id()))
}

/// Fraction of rows on which two labelings agree under the best of the
/// six relabelings of three clusters.
fn best_agreement_k3(a: &[usize], b: &[usize]) -> f64 {
    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let n = a.len();
    let mut best = 0usize;
    for perm in PERMS {
        let hits = a
            .iter()
            .zip(b.iter())
            .filter(|&(&x, &y)| perm[x] == y)
            .count();
        best = best.max(hits);
    }
    best as f64 / n as f64
}

tscheck::props! {
    #[cases(16)]
    fn corrupted_spill_segments_surface_typed_errors(g) {
        let m = g.usize_in(8..24);
        let per_seg = g.usize_in(2..5);
        let n = g.usize_in(3 * per_seg..6 * per_seg);
        let mut rng = StdRng::seed_from_u64(g.u64_in(0..u64::MAX));
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut s = cbf::generate_one(i % 3, m.max(8), &mut rng);
                z_normalize_in_place(&mut s);
                s
            })
            .collect();
        let m = rows[0].len();

        let dir = spill_dir("chaos", g.case_seed());
        let mut store = SeriesStore::spilled(
            m,
            ElemType::F64,
            SpillConfig::new(&dir).rows_per_segment(per_seg).resident_segments(1),
        )
        .expect("spill tier");
        for row in &rows {
            store.push_row(row).expect("clean push");
        }
        let paths = store.spill_segment_paths();
        assert!(paths.len() >= 2, "need several sealed segments");

        // Warm pass: every row reads back clean before corruption.
        let mut scratch = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let got = store.try_row(i, &mut scratch).expect("clean read");
            assert_eq!(got, row.as_slice());
        }

        // Fault one sealed segment on disk.
        let target = g.usize_in(0..paths.len());
        let kind = ByteFault::ALL[g.usize_in(0..ByteFault::ALL.len())];
        let clean_bytes = std::fs::read(&paths[target]).expect("read segment");
        let mut bytes = clean_bytes.clone();
        corrupt_bytes(&mut bytes, kind, &mut rng);
        let changed = bytes != clean_bytes;
        std::fs::write(&paths[target], &bytes).expect("write fault");

        // Evict the target from the one-segment resident window by
        // touching a row that lives in a different segment.
        let other_seg = (target + 1) % paths.len();
        let _ = store.try_row(other_seg * per_seg, &mut scratch);

        // Contract: every read is Ok-with-clean-bits or a typed
        // CorruptData — never a panic, never a garbage row.
        let mut saw_corrupt = false;
        for (i, row) in rows.iter().enumerate() {
            match store.try_row(i, &mut scratch) {
                Ok(got) => assert_eq!(got, row.as_slice(), "garbage row {i} after {kind:?}"),
                Err(TsError::CorruptData { .. }) => saw_corrupt = true,
                Err(other) => panic!("row {i}: expected CorruptData, got {other:?}"),
            }
        }
        assert_eq!(
            saw_corrupt, changed,
            "{kind:?} changed bytes: {changed}, but corrupt reads: {saw_corrupt}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cases(8)]
    fn f32_and_f64_fits_agree_on_separated_cbf(g) {
        let per = g.usize_in(8..14);
        let m = g.usize_in(32..64);
        let rows = cbf_rows(per, m, g.u64_in(0..1 << 32));
        let wide = SeriesStore::from_rows(&rows, ElemType::F64).expect("f64 store");
        let narrow = SeriesStore::from_rows(&rows, ElemType::F32).expect("f32 store");

        let opts = KShapeOptions::new(3)
            .with_seed(g.u64_in(0..1 << 16))
            .with_max_iter(30);
        let a = fit_store(&wide, &opts).expect("f64 fit");
        let b = fit_store(&narrow, &opts).expect("f32 fit");

        let agreement = best_agreement_k3(&a.labels, &b.labels);
        assert!(
            agreement >= 0.95,
            "f32 narrowing moved {:.1}% of labels (tolerance: 5%)",
            (1.0 - agreement) * 100.0
        );
    }
}

/// Deterministic companion to the property above: on a cleanly separated
/// workload (three crisp shape classes, mild phase jitter) the `f32` and
/// `f64` fits must agree exactly, not just within tolerance.
#[test]
fn f32_and_f64_fits_are_identical_on_crisp_classes() {
    let m = 48usize;
    let mut rows = Vec::new();
    for s in 0..8usize {
        let up: Vec<f64> = (0..m).map(|i| ((i + s) % m) as f64).collect();
        let down: Vec<f64> = (0..m).map(|i| (m - 1 - (i + s) % m) as f64).collect();
        let spike: Vec<f64> = (0..m)
            .map(|i| if (i + s) % m == m / 2 { 5.0 } else { 0.0 })
            .collect();
        for raw in [up, down, spike] {
            let mut z = raw;
            z_normalize_in_place(&mut z);
            rows.push(z);
        }
    }
    let wide = SeriesStore::from_rows(&rows, ElemType::F64).expect("f64 store");
    let narrow = SeriesStore::from_rows(&rows, ElemType::F32).expect("f32 store");
    let opts = KShapeOptions::new(3).with_seed(11).with_max_iter(50);
    let a = fit_store(&wide, &opts).expect("f64 fit");
    let b = fit_store(&narrow, &opts).expect("f32 fit");
    assert_eq!(a.labels, b.labels);
    assert!(a.converged && b.converged);
}
