//! End-to-end tests of the `kshape-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kshape-cli"))
}

fn write_toy_file(tag: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("kshape-cli-test-{}-{tag}.txt", std::process::id()));
    // Two obvious classes: rising vs falling ramps, slightly jittered.
    let mut content = String::new();
    for j in 0..4 {
        let eps = j as f64 * 0.01;
        content.push_str(&format!(
            "1,{},{},{},{}\n",
            eps,
            1.0 + eps,
            2.0 + eps,
            3.0 + eps
        ));
        content.push_str(&format!(
            "2,{},{},{},{}\n",
            3.0 - eps,
            2.0 - eps,
            1.0 - eps,
            -eps
        ));
    }
    std::fs::write(&path, content).expect("write toy file");
    path
}

#[test]
fn clusters_a_ucr_file_perfectly() {
    let path = write_toy_file("clusters");
    let out = cli()
        .arg(&path)
        .args(["--k", "2", "--restarts", "3"])
        .output()
        .expect("run cli");
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // One label per input line, exactly two clusters, alternating.
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let labels: Vec<&str> = stdout.lines().collect();
    assert_eq!(labels.len(), 8);
    for pair in labels.chunks(2) {
        assert_eq!(pair[0], labels[0]);
        assert_eq!(pair[1], labels[1]);
    }
    assert_ne!(labels[0], labels[1]);

    // The scoring line reports a perfect Rand index.
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("Rand index vs file labels: 1.0000"),
        "{stderr}"
    );
}

#[test]
fn reports_centroids_and_silhouette_when_asked() {
    let path = write_toy_file("centroids");
    let out = cli()
        .arg(&path)
        .args(["--k", "2", "--centroids", "--silhouette"])
        .output()
        .expect("run cli");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout.matches("# centroid").count(), 2);
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("silhouette (SBD):"), "{stderr}");
}

#[test]
fn missing_k_is_a_usage_error() {
    let path = write_toy_file("missing_k");
    let out = cli().arg(&path).output().expect("run cli");
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unreadable_file_is_an_error() {
    let out = cli()
        .args(["/nonexistent/kshape-input.txt", "--k", "2"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
}

#[test]
fn k_larger_than_file_is_rejected() {
    let path = write_toy_file("k_large");
    let out = cli()
        .arg(&path)
        .args(["--k", "99"])
        .output()
        .expect("run cli");
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--k must be in"), "{stderr}");
}
