//! Integration tests of the experiment harness itself: the machinery that
//! regenerates the paper's tables must behave sensibly on a small slice of
//! the collection.

use tsdata::collection::{synthetic_collection, CollectionSpec};
use tsexperiments::cluster_eval::{evaluate_method, DistKind, Method};
use tsexperiments::dist_eval::{compare_to_baseline, eval_cdtw_opt, eval_measure, table2_sweep};
use tsexperiments::ExperimentConfig;

fn tiny_collection() -> Vec<tsdata::dataset::SplitDataset> {
    synthetic_collection(&CollectionSpec {
        seed: 41,
        size_factor: 0.34,
    })
}

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        size_factor: 0.34,
        runs: 1,
        max_iter: 8,
        seed: 41,
        threads: 2,
    }
}

#[test]
fn table2_sweep_produces_all_rows() {
    // Two datasets only — exercise the full sweep end to end.
    let collection = &tiny_collection()[..2];
    let (rows, ed_index) = table2_sweep(collection);
    assert_eq!(rows.len(), 12, "one row per Table 2 measure");
    assert_eq!(rows[ed_index].name, "ED");
    for row in &rows {
        assert_eq!(row.accuracies.len(), 2, "{}", row.name);
        for &a in &row.accuracies {
            assert!((0.0..=1.0).contains(&a), "{}: {a}", row.name);
        }
        assert!(row.seconds >= 0.0);
    }
    // The three SBD variants compute the same distances, hence identical
    // accuracies.
    let sbd_rows: Vec<_> = rows.iter().filter(|r| r.name.starts_with("SBD")).collect();
    assert_eq!(sbd_rows.len(), 3);
    for r in &sbd_rows[1..] {
        assert_eq!(r.accuracies, sbd_rows[0].accuracies);
    }
}

#[test]
fn cdtw_opt_tunes_reasonable_windows() {
    let collection = &tiny_collection()[..3];
    let (eval, windows, tuning_seconds) = eval_cdtw_opt(collection, false);
    assert_eq!(eval.accuracies.len(), 3);
    assert_eq!(windows.len(), 3);
    assert!(tuning_seconds >= 0.0);
    for (split, &w) in collection.iter().zip(windows.iter()) {
        let m = split.train.series_len();
        assert!(w <= m / 5, "window {w} too wide for m = {m}");
    }
}

#[test]
fn sbd_beats_ed_on_the_shifted_slice() {
    // The high-shift variant (index 2 block) is where SBD must win.
    let collection = tiny_collection();
    let shifted: Vec<_> = collection
        .iter()
        .filter(|d| d.name().ends_with("-05"))
        .cloned()
        .collect();
    assert_eq!(shifted.len(), 8);
    let ed = eval_measure(&shifted, &tsdist::EuclideanDistance);
    let sbd = eval_measure(&shifted, &kshape::sbd::Sbd::new());
    let cmp = compare_to_baseline(&sbd.accuracies, &ed.accuracies);
    assert!(
        cmp.wins > cmp.losses,
        "SBD should win on shifted data: {} vs {}",
        cmp.wins,
        cmp.losses
    );
}

#[test]
fn cluster_eval_runs_every_method_kind() {
    let collection = &tiny_collection()[..1];
    let cfg = tiny_cfg();
    for method in [
        Method::KAvg(DistKind::Ed),
        Method::KShape,
        Method::Ksc,
        Method::Pam(DistKind::Sbd),
        Method::Hierarchical(tscluster::hierarchical::Linkage::Complete, DistKind::Ed),
        Method::Spectral(DistKind::Ed),
    ] {
        let eval = evaluate_method(method, collection, &cfg);
        assert_eq!(eval.rand_indices.len(), 1, "{}", eval.name);
        assert!(
            (0.0..=1.0).contains(&eval.rand_indices[0]),
            "{}: {}",
            eval.name,
            eval.rand_indices[0]
        );
    }
}

#[test]
fn deterministic_across_invocations() {
    let collection = &tiny_collection()[..2];
    let cfg = tiny_cfg();
    let a = evaluate_method(Method::KShape, collection, &cfg);
    let b = evaluate_method(Method::KShape, collection, &cfg);
    assert_eq!(a.rand_indices, b.rand_indices);
}
