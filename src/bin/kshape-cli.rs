//! `kshape-cli` — cluster a UCR-format time-series file from the command
//! line.
//!
//! ```text
//! kshape-cli <FILE> --k <K> [--restarts N] [--seed S] [--max-iter I]
//!            [--silhouette] [--centroids]
//! ```
//!
//! The file must be in UCR text format (one series per line: integer label
//! first — used only for scoring, pass any value if unknown — then the
//! values, comma- or whitespace-separated). Series are z-normalized before
//! clustering, as the paper prescribes. Output: one cluster id per input
//! line, plus a Rand-index score against the file's labels.

use std::path::Path;
use std::process::ExitCode;

use kshape::multi::fit_best;
use kshape::KShapeConfig;
use tsdata::ucr;
use tseval::rand_index::rand_index;

struct Args {
    file: String,
    k: usize,
    restarts: usize,
    seed: u64,
    max_iter: usize,
    silhouette: bool,
    centroids: bool,
}

fn usage() -> &'static str {
    "usage: kshape-cli <FILE> --k <K> [--restarts N] [--seed S] [--max-iter I] \
     [--silhouette] [--centroids]"
}

fn parse_args() -> Result<Args, String> {
    let mut file = None;
    let mut k = None;
    let mut restarts = 5usize;
    let mut seed = 0u64;
    let mut max_iter = 100usize;
    let mut silhouette = false;
    let mut centroids = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--k" => {
                k = Some(
                    it.next()
                        .ok_or("--k needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --k: {e}"))?,
                );
            }
            "--restarts" => {
                restarts = it
                    .next()
                    .ok_or("--restarts needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --restarts: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--max-iter" => {
                max_iter = it
                    .next()
                    .ok_or("--max-iter needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-iter: {e}"))?;
            }
            "--silhouette" => silhouette = true,
            "--centroids" => centroids = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        file: file.ok_or_else(|| format!("missing input file\n{}", usage()))?,
        k: k.ok_or_else(|| format!("missing --k\n{}", usage()))?,
        restarts: restarts.max(1),
        seed,
        max_iter: max_iter.max(1),
        silhouette,
        centroids,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let content = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let name = Path::new(&args.file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    let mut data = ucr::parse(name, &content).map_err(|e| e.to_string())?;
    if data.is_empty() {
        return Err("the file contains no series".into());
    }
    if args.k == 0 || args.k > data.n_series() {
        return Err(format!(
            "--k must be in 1..={} for this file",
            data.n_series()
        ));
    }
    data.z_normalize();

    let cfg = KShapeConfig {
        k: args.k,
        max_iter: args.max_iter,
        seed: args.seed,
        ..Default::default()
    };
    let result = fit_best(&cfg, &data.series, args.restarts);

    eprintln!(
        "# {}: {} series × {} samples, k = {}, best of {} restarts",
        name,
        data.n_series(),
        data.series_len(),
        args.k,
        args.restarts
    );
    eprintln!(
        "# converged: {}, iterations: {}, inertia: {:.4}",
        result.converged, result.iterations, result.inertia
    );
    eprintln!(
        "# Rand index vs file labels: {:.4}",
        rand_index(&result.labels, &data.labels)
    );
    if args.silhouette {
        // Pairwise SBD silhouette — O(n²) but informative.
        let plan = kshape::sbd::SbdPlan::new(data.series_len());
        let prepared: Vec<_> = data.series.iter().map(|s| plan.prepare(s)).collect();
        let n = data.n_series();
        let mut dmat = vec![0.0; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = plan.sbd_prepared(&prepared[i], &data.series[j]).dist;
                dmat[i * n + j] = d;
                dmat[j * n + i] = d;
            }
        }
        let s = tseval::silhouette::silhouette_score(&result.labels, |i, j| dmat[i * n + j]);
        eprintln!("# silhouette (SBD): {s:.4}");
    }

    for &l in &result.labels {
        println!("{l}");
    }
    if args.centroids {
        for (j, c) in result.centroids.iter().enumerate() {
            let values: Vec<String> = c.iter().map(|v| format!("{v:.6}")).collect();
            println!("# centroid {j}: {}", values.join(","));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
