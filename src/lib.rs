//! Facade crate for the k-Shape reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can depend
//! on a single package, and bundles the everyday surface into
//! [`prelude`]: one `use kshape_repro::prelude::*;` brings in the fitting
//! entry points, their options objects, the execution-control types, and
//! the telemetry sinks.

#![warn(missing_docs)]

pub use kshape;
pub use tscluster;
pub use tsdata;
pub use tsdist;
pub use tserror;
pub use tseval;
pub use tsfft;
pub use tslinalg;
pub use tsobs;
pub use tsrand;
pub use tsrun;
pub use tsserve;

/// The everyday surface of the workspace in one import.
///
/// Brings in the options-object entry points (`fit_with`, `kmeans_with`,
/// …), their configuration types, the error/result aliases, execution
/// control ([`tsrun::Budget`], [`tsrun::CancelToken`]), and the
/// observability layer ([`tsobs::Recorder`] and its sinks).
///
/// ```
/// use kshape_repro::prelude::*;
///
/// let series: Vec<Vec<f64>> = vec![vec![0.0, 1.0, 0.0], vec![0.1, 1.1, 0.1]];
/// let sink = MemorySink::new();
/// let opts = KShapeOptions::new(1).with_seed(42).with_recorder(&sink);
/// let fit = KShape::fit_with(&series, &opts).unwrap();
/// assert_eq!(fit.labels.len(), 2);
/// assert!(sink.span_count("kshape.fit") >= 1);
/// ```
pub mod prelude {
    pub use kshape::sbd::{sbd, Sbd, SbdPlan, SbdResult};
    pub use kshape::{KShape, KShapeConfig, KShapeOptions, KShapeResult};
    pub use tscluster::dba::{kdba_with, KDbaConfig, KDbaOptions, KDbaResult};
    pub use tscluster::fuzzy::{fuzzy_cmeans_with, FuzzyConfig, FuzzyOptions, FuzzyResult};
    pub use tscluster::hierarchical::{
        hierarchical_cluster_with, HierarchicalConfig, HierarchicalOptions, Linkage,
    };
    pub use tscluster::kmeans::{kmeans_with, KMeansConfig, KMeansOptions, KMeansResult};
    pub use tscluster::ksc::{ksc_with, KscConfig, KscOptions, KscResult};
    pub use tscluster::ladder::{
        cluster_with_ladder, LadderConfig, LadderOptions, LadderOutcome, LadderRung,
    };
    pub use tscluster::matrix::{DissimilarityMatrix, MatrixConfig, MatrixOptions};
    pub use tscluster::pam::{pam_with, PamConfig, PamOptions, PamResult};
    pub use tscluster::spectral::{
        spectral_cluster_with, SpectralConfig, SpectralOptions, SpectralResult,
    };
    pub use tsdist::nn::{one_nn_accuracy_with, NnOptions};
    pub use tsdist::{Distance, EuclideanDistance};
    pub use tserror::{StopReason, TsError, TsResult};
    pub use tsobs::{
        Event, IterationEvent, JsonlSink, MemorySink, NullRecorder, Obs, Recorder, SharedBuf,
    };
    pub use tsrun::{Budget, CancelToken, RunControl};
}
