//! Facade crate for the k-Shape reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can depend
//! on a single package.

#![warn(missing_docs)]

pub use kshape;
pub use tscluster;
pub use tsdata;
pub use tsdist;
pub use tseval;
pub use tsfft;
pub use tslinalg;
