//! A hand-rolled bounded thread pool with rejecting submission.
//!
//! The queue has a hard capacity: [`BoundedPool::try_submit`] returns
//! the item back instead of blocking or growing without bound, which is
//! what lets the accept loop shed load with a 503 while still owning
//! the connection. Workers wrap every job in `catch_unwind`, so a
//! panicking request takes down neither its worker thread nor the
//! process.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct PoolQueue<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct PoolShared<T> {
    queue: Mutex<PoolQueue<T>>,
    ready: Condvar,
    capacity: usize,
    panics: AtomicU64,
}

/// Fixed worker threads draining a bounded queue of `T`.
pub struct BoundedPool<T: Send + 'static> {
    shared: Arc<PoolShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> BoundedPool<T> {
    /// Spawns `workers` threads, each running `run` on dequeued items.
    /// At most `capacity` items wait in the queue at once.
    pub fn new<F>(workers: usize, capacity: usize, run: F) -> Self
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            panics: AtomicU64::new(0),
        });
        let run = Arc::new(run);
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("tsserve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &*run))
                    .expect("spawn pool worker")
            })
            .collect();
        BoundedPool {
            shared,
            workers: handles,
        }
    }

    /// Enqueues `item`, or hands it back when the queue is full or the
    /// pool is shutting down. `Ok` carries the queue depth after the
    /// push (for pressure accounting).
    pub fn try_submit(&self, item: T) -> Result<usize, T> {
        let mut q = lock_unpoisoned(&self.shared.queue);
        if q.closed || q.items.len() >= self.shared.capacity {
            return Err(item);
        }
        q.items.push_back(item);
        let depth = q.items.len();
        drop(q);
        self.shared.ready.notify_one();
        Ok(depth)
    }

    /// Items currently queued (not counting ones being executed).
    pub fn queue_len(&self) -> usize {
        lock_unpoisoned(&self.shared.queue).items.len()
    }

    /// Jobs that panicked (and were contained) since startup.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Closes the queue, lets workers finish every already-queued item,
    /// and joins them. Returns the number of contained panics.
    pub fn shutdown(self) -> u64 {
        lock_unpoisoned(&self.shared.queue).closed = true;
        self.shared.ready.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
        self.shared.panics.load(Ordering::Relaxed)
    }
}

fn worker_loop<T, F: Fn(T)>(shared: &PoolShared<T>, run: &F) {
    loop {
        let item = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(item) = q.items.pop_front() {
                    break item;
                }
                if q.closed {
                    return;
                }
                q = shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if catch_unwind(AssertUnwindSafe(|| run(item))).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Pool state is plain data; a panicking job must not poison the queue
/// for every later request.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = BoundedPool::new(3, 64, move |x: usize| {
            d.fetch_add(x, Ordering::SeqCst);
        });
        for _ in 0..50 {
            let mut item = 1usize;
            loop {
                match pool.try_submit(item) {
                    Ok(_) => break,
                    Err(back) => {
                        item = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        assert_eq!(pool.shutdown(), 0);
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_saturated() {
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let g = Arc::clone(&gate);
        let pool = BoundedPool::new(1, 2, move |_x: usize| {
            drop(g.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        });
        // One job blocks the worker; two fill the queue; the next is
        // rejected and handed back.
        pool.try_submit(0).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        assert_eq!(pool.try_submit(3), Err(3));
        drop(held);
        pool.shutdown();
    }

    #[test]
    fn contains_panics_and_keeps_serving() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = BoundedPool::new(1, 8, move |x: usize| {
            if x == 0 {
                panic!("probe");
            }
            d.fetch_add(1, Ordering::SeqCst);
        });
        pool.try_submit(0).unwrap();
        pool.try_submit(1).unwrap();
        pool.try_submit(0).unwrap();
        pool.try_submit(1).unwrap();
        assert_eq!(pool.shutdown(), 2);
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }
}
