//! A minimal HTTP load generator and raw-socket client, used by the
//! `serve` bench group, the chaos acceptance suite, and CI.
//!
//! Latencies are recorded per request in nanoseconds so
//! `tsbench::Record::from_latency_samples` can report true per-event
//! p50/p95/p99.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Sends one HTTP/1.1 request and returns `(status, body)`.
///
/// The connection is closed after the exchange (`Connection: close`),
/// matching the server's one-request-per-connection model.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    raw_exchange_on(stream, &request_bytes(method, path, body), timeout).and_then(parse_response)
}

/// Serializes a request with `Content-Length` and `Connection: close`.
pub fn request_bytes(method: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: tsserve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Writes arbitrary bytes and reads until EOF — the raw client used to
/// inject corrupt or truncated streams.
pub fn raw_exchange(addr: SocketAddr, bytes: &[u8], timeout: Duration) -> std::io::Result<Vec<u8>> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    raw_exchange_on(stream, bytes, timeout)
}

fn raw_exchange_on(
    mut stream: TcpStream,
    bytes: &[u8],
    timeout: Duration,
) -> std::io::Result<Vec<u8>> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(bytes)?;
    let deadline = Instant::now() + timeout;
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "response deadline elapsed",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(out),
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Interim 100 Continue responses keep the socket open;
                // only give up at the overall deadline.
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // A reset after a full response is a normal close race.
                if out.is_empty() {
                    return Err(e);
                }
                return Ok(out);
            }
        }
    }
}

/// Parses `(status, body)` out of a raw HTTP response, skipping any
/// interim `100 Continue`.
pub fn parse_response(raw: Vec<u8>) -> std::io::Result<(u16, String)> {
    let text = String::from_utf8_lossy(&raw).into_owned();
    let mut rest = text.as_str();
    loop {
        let head_end = rest.find("\r\n\r\n").ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated response")
        })?;
        let head = &rest[..head_end];
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let body = &rest[head_end + 4..];
        if status == 100 {
            rest = body;
            continue;
        }
        return Ok((status, body.to_string()));
    }
}

/// One load-generation run: `clients` threads, each issuing
/// `requests_per_client` identical requests back to back.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Target server.
    pub addr: SocketAddr,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Request body.
    pub body: String,
    /// Per-request timeout.
    pub timeout: Duration,
}

/// Aggregated outcome of a load run.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Per-request wall latency, nanoseconds (successful exchanges only).
    pub latencies_ns: Vec<f64>,
    /// 2xx responses.
    pub ok: u64,
    /// 503 responses (shed or draining).
    pub shed: u64,
    /// Other 4xx responses.
    pub client_errors: u64,
    /// 5xx responses (including 504 budget trips).
    pub server_errors: u64,
    /// Requests that failed at the transport layer.
    pub transport_errors: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Total requests attempted.
    pub fn total(&self) -> u64 {
        self.ok + self.shed + self.client_errors + self.server_errors + self.transport_errors
    }

    /// Completed requests per second over the run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ok as f64 / secs
    }

    /// Fraction of requests shed (503).
    pub fn shed_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.shed as f64 / total as f64
    }

    /// Fraction of requests failing for reasons other than shedding.
    pub fn error_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.client_errors + self.server_errors + self.transport_errors) as f64 / total as f64
    }
}

/// Drives the target with `spec` and aggregates the outcomes.
pub fn drive(spec: &LoadSpec) -> LoadReport {
    let started = Instant::now();
    let handles: Vec<_> = (0..spec.clients.max(1))
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut report = LoadReport::default();
                for _ in 0..spec.requests_per_client {
                    let t0 = Instant::now();
                    match http_request(
                        spec.addr,
                        &spec.method,
                        &spec.path,
                        &spec.body,
                        spec.timeout,
                    ) {
                        Ok((status, _body)) => {
                            report.latencies_ns.push(t0.elapsed().as_nanos() as f64);
                            match status {
                                200..=299 => report.ok += 1,
                                503 => report.shed += 1,
                                400..=499 => report.client_errors += 1,
                                _ => report.server_errors += 1,
                            }
                        }
                        Err(_) => report.transport_errors += 1,
                    }
                }
                report
            })
        })
        .collect();

    let mut merged = LoadReport::default();
    for handle in handles {
        if let Ok(part) = handle.join() {
            merged.latencies_ns.extend(part.latencies_ns);
            merged.ok += part.ok;
            merged.shed += part.shed;
            merged.client_errors += part.client_errors;
            merged.server_errors += part.server_errors;
            merged.transport_errors += part.transport_errors;
        }
    }
    merged.elapsed = started.elapsed();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_skips_interim_continue() {
        let raw =
            b"HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok".to_vec();
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
    }

    #[test]
    fn report_rates() {
        let report = LoadReport {
            ok: 6,
            shed: 2,
            server_errors: 1,
            client_errors: 1,
            ..LoadReport::default()
        };
        assert_eq!(report.total(), 10);
        assert!((report.shed_rate() - 0.2).abs() < 1e-12);
        assert!((report.error_rate() - 0.2).abs() < 1e-12);
    }
}
