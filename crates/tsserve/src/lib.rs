//! `tsserve` — a zero-dependency HTTP/1.1 clustering server that
//! survives overload, slow clients, corrupt bytes, and kills.
//!
//! Built entirely on `std::net` with a hand-rolled bounded thread pool
//! (the workspace's hermetic-build policy holds: no async runtime, no
//! HTTP crate). The endpoints expose the repository's clustering stack
//! over the wire:
//!
//! * `POST /v1/normalize` — z-normalize series (paper §3.1),
//! * `POST /v1/models/{name}/fit` — fit a k-Shape model through the
//!   degradation ladder under a per-request wall budget,
//! * `POST /v1/models/{name}/assign` — nearest shape centroid via the
//!   cached-spectra SBD hot path,
//! * `GET /v1/models`, `GET /v1/models/{name}`, `GET /healthz`,
//!   `GET /v1/telemetry`, `POST /admin/drain`.
//!
//! Robustness properties (exercised end-to-end by `tests/serve.rs`):
//!
//! * **Admission control** — a bounded accept queue; beyond capacity,
//!   connections are shed with `503 + Retry-After`, never queued
//!   without bound.
//! * **Deadlines** — every fit/assign runs under a [`tsrun::Budget`]
//!   wall deadline tripped at the library's cooperative poll points; a
//!   stuck fit returns a typed partial result (HTTP 504) instead of
//!   hanging.
//! * **Slow-loris eviction** — socket reads are polled against a
//!   per-request deadline; drip-feeding clients get a 408.
//! * **Panic isolation** — every request runs under `catch_unwind`
//!   (twice: handler level and pool backstop); a panicking request
//!   costs one 500, not the process.
//! * **Degradation** — under pressure, fits start lower on the
//!   [`tscluster::ladder`] and budget trips descend k-Shape →
//!   SBD-medoid → k-AVG instead of erroring.
//! * **Kill-safety** — models persist through the atomic
//!   [`tsexperiments::CheckpointStore`] writes; a `kill -9`'d server
//!   warm-starts and serves bit-identical assignments without
//!   refitting.
//! * **Graceful drain** — `POST /admin/drain` stops accepting,
//!   finishes in-flight requests, and flushes telemetry.

#![warn(missing_docs)]

pub mod gate;
pub mod handlers;
pub mod http;
pub mod loadgen;
pub mod pool;
pub mod registry;
pub mod server;
pub mod streams;
pub mod telemetry;
pub mod wire;

pub use gate::{Gate, Pressure};
pub use pool::BoundedPool;
pub use registry::{Model, ModelRegistry, PreparedModel};
pub use server::{AppState, ServeConfig, ServeSummary, Server, ServerHandle};
pub use telemetry::RingTelemetry;
