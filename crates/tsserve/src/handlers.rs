//! Request routing and the TsError → HTTP mapping.
//!
//! Status contract (DESIGN.md §8):
//!
//! | status | meaning |
//! |--------|---------|
//! | 400    | unparsable bytes: bad HTTP, bad JSON, bad field, bad name |
//! | 404    | unknown path or model |
//! | 405    | known path, wrong method |
//! | 408    | slow client evicted (read deadline) |
//! | 413    | head or body over the size limit |
//! | 422    | well-formed but invalid series (NaN, ragged, constant, k > n) |
//! | 500    | numerical failure or contained panic |
//! | 503    | shed (queue full) or draining — with `Retry-After` |
//! | 504    | budget tripped: typed partial result, never a hang |

use std::time::Duration;

use kshape::sbd::SbdScratch;
use tscluster::{cluster_with_ladder, LadderConfig, LadderOptions, LadderRung};
use tserror::{StopReason, TsError};
use tsobs::Recorder;
use tsrun::{Budget, RunControl};

use crate::gate::Pressure;
use crate::http::{Request, Response};
use crate::registry::{valid_model_name, Model};
use crate::server::AppState;
use crate::wire::{
    fmt_f64, json_escape, labels_json, push_series_json, FitRequest, SeriesRequest,
    StreamCreateRequest,
};

/// Routes one parsed request. Infallible by construction: every defect
/// becomes a typed response.
pub fn handle(req: &Request, state: &AppState) -> Response {
    let path = req.path.as_str();
    let method = req.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/v1/models") => list_models(state),
        ("GET", "/v1/telemetry") => telemetry(state),
        ("POST", "/v1/normalize") => normalize(req),
        ("POST", "/admin/drain") => drain(state),
        ("POST", "/admin/panic") if state.config.panic_probe => {
            panic!("panic probe requested")
        }
        ("GET", "/v1/streams") => list_streams(state),
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/models/") {
                return model_route(method, rest, req, state);
            }
            if let Some(rest) = path.strip_prefix("/v1/streams/") {
                return stream_route(method, rest, req, state);
            }
            match path {
                "/healthz" | "/v1/models" | "/v1/telemetry" | "/v1/normalize" | "/admin/drain"
                | "/v1/streams" => Response::error(405, "method_not_allowed", method),
                _ => Response::error(404, "not_found", path),
            }
        }
    }
}

/// Dispatches `/v1/models/{name}` and `/v1/models/{name}/{action}`.
fn model_route(method: &str, rest: &str, req: &Request, state: &AppState) -> Response {
    let (name, action) = match rest.split_once('/') {
        Some((n, a)) => (n, Some(a)),
        None => (rest, None),
    };
    if !valid_model_name(name) {
        return Response::error(400, "bad_model_name", "model names are [A-Za-z0-9_]{1,64}");
    }
    match (method, action) {
        ("GET", None) => get_model(name, state),
        ("POST", Some("fit")) => fit(name, req, state),
        ("POST", Some("assign")) => assign(name, req, state),
        (_, None | Some("fit") | Some("assign")) => {
            Response::error(405, "method_not_allowed", method)
        }
        _ => Response::error(404, "not_found", &req.path),
    }
}

/// Dispatches `/v1/streams/{name}` and `/v1/streams/{name}/push`.
fn stream_route(method: &str, rest: &str, req: &Request, state: &AppState) -> Response {
    let (name, action) = match rest.split_once('/') {
        Some((n, a)) => (n, Some(a)),
        None => (rest, None),
    };
    if !valid_model_name(name) {
        return Response::error(
            400,
            "bad_stream_name",
            "stream names are [A-Za-z0-9_]{1,64}",
        );
    }
    match (method, action) {
        ("GET", None) => stream_stats(name, state),
        ("POST", None) => stream_create(name, req, state),
        ("POST", Some("push")) => stream_push(name, req, state),
        (_, None | Some("push")) => Response::error(405, "method_not_allowed", method),
        _ => Response::error(404, "not_found", &req.path),
    }
}

fn list_streams(state: &AppState) -> Response {
    let mut body = String::from("{\"streams\":[");
    for (i, name) in state.streams.names().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{}\"", json_escape(name)));
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn stream_stats_json(name: &str, entry: &crate::streams::StreamEntry) -> String {
    let s = entry.engine.stats();
    let c = entry.engine.config();
    format!(
        "{{\"stream\":\"{}\",\"k\":{},\"m\":{},\"arrivals\":{},\"accepted\":{},\"quarantined\":{},\"fits\":{},\"reseeds\":{},\"refreshes\":{},\"degenerate_refreshes\":{},\"bootstrapped\":{},\"pending\":{}}}",
        json_escape(name),
        c.k,
        c.m,
        s.arrivals,
        s.accepted,
        s.quarantined,
        s.fits,
        s.reseeds,
        s.refreshes,
        s.degenerate_refreshes,
        s.bootstrapped,
        s.pending,
    )
}

fn stream_stats(name: &str, state: &AppState) -> Response {
    let Some(entry) = state.streams.get(name) else {
        return Response::error(404, "unknown_stream", name);
    };
    let entry = entry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Response::json(200, stream_stats_json(name, &entry))
}

/// `POST /v1/streams/{name}` — create a streaming engine.
fn stream_create(name: &str, req: &Request, state: &AppState) -> Response {
    let parsed = match StreamCreateRequest::parse(&req.body) {
        Ok(p) => p,
        Err(detail) => return Response::error(400, "bad_request", &detail),
    };
    match state.streams.create(name, parsed.config) {
        Ok(()) => {
            state.telemetry.counter("serve.stream.created", 1);
            Response::json(200, format!("{{\"stream\":\"{}\"}}", json_escape(name)))
        }
        Err(crate::streams::CreateError::Exists) => Response::error(409, "stream_exists", name),
        Err(crate::streams::CreateError::Invalid(detail)) => {
            Response::error(422, "invalid_config", &detail)
        }
    }
}

/// `POST /v1/streams/{name}/push` — ingest a batch of arrivals. The
/// body is parsed *lossily* (JSON `null` → NaN), so a producer
/// reporting lost samples gets a per-arrival typed quarantine instead of
/// a whole-batch 400. Byte-level garbage still fails the JSON parse
/// (400), and a mid-stream stall is evicted by the read deadline (408)
/// before this handler runs.
fn stream_push(name: &str, req: &Request, state: &AppState) -> Response {
    let body = match crate::wire::parse_body(&req.body) {
        Ok(b) => b,
        Err(detail) => return Response::error(400, "bad_request", &detail),
    };
    let series = match crate::wire::parse_series_lossy(&body) {
        Ok(s) => s,
        Err(detail) => return Response::error(400, "bad_request", &detail),
    };
    let obs = tsobs::Obs::from_option(Some(&state.telemetry as &dyn Recorder));
    let Some(outcomes) = state.streams.push_batch(name, &series, obs) else {
        return Response::error(404, "unknown_stream", name);
    };
    state
        .telemetry
        .counter("serve.stream.push.series", outcomes.len() as u64);

    let mut out = String::from("{\"outcomes\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match o {
            kshape::stream::PushOutcome::Buffered { pending } => {
                out.push_str(&format!(
                    "{{\"status\":\"buffered\",\"pending\":{pending}}}"
                ));
            }
            kshape::stream::PushOutcome::Bootstrapped { labels } => {
                out.push_str(&format!(
                    "{{\"status\":\"bootstrapped\",\"labels\":{}}}",
                    labels_json(labels)
                ));
            }
            kshape::stream::PushOutcome::Assigned(a) => {
                out.push_str(&format!(
                    "{{\"status\":\"assigned\",\"label\":{},\"dist\":{},\"shift\":{},\"refreshed\":{},\"reseeded\":{}}}",
                    a.label,
                    fmt_f64(a.dist),
                    a.shift,
                    a.refreshed,
                    a.reseeded,
                ));
            }
            kshape::stream::PushOutcome::Quarantined(reason) => {
                out.push_str(&format!(
                    "{{\"status\":\"quarantined\",\"reason\":\"{}\"}}",
                    reason.name()
                ));
            }
        }
    }
    out.push_str("],\"stats\":");
    {
        let entry = state.streams.get(name).expect("stream exists");
        let entry = entry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        out.push_str(&stream_stats_json(name, &entry));
    }
    out.push('}');
    Response::json(200, out)
}

fn healthz(state: &AppState) -> Response {
    let status = if state.is_draining() {
        "draining"
    } else {
        "ok"
    };
    Response::json(
        200,
        format!(
            "{{\"status\":\"{}\",{},\"models\":{}}}",
            status,
            state.gate.snapshot_json(),
            state.registry.len()
        ),
    )
}

fn list_models(state: &AppState) -> Response {
    let mut body = String::from("{\"models\":[");
    for (i, name) in state.registry.names().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        if let Some(m) = state.registry.get(name) {
            body.push_str(&format!(
                "{{\"name\":\"{}\",\"k\":{},\"m\":{},\"rung\":\"{}\",\"converged\":{}}}",
                json_escape(name),
                m.model.k,
                m.model.m,
                json_escape(&m.model.rung),
                m.model.converged
            ));
        }
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn get_model(name: &str, state: &AppState) -> Response {
    match state.registry.get(name) {
        Some(m) => Response::json(200, m.model.to_json()),
        None => Response::error(404, "unknown_model", name),
    }
}

fn telemetry(state: &AppState) -> Response {
    let mut body = String::new();
    for line in state.telemetry.lines() {
        body.push_str(&line);
        body.push('\n');
    }
    Response {
        status: 200,
        content_type: "application/x-ndjson",
        retry_after: None,
        body: body.into_bytes(),
    }
}

fn drain(state: &AppState) -> Response {
    state.begin_drain();
    Response::json(200, "{\"draining\":true}".to_string())
}

fn normalize(req: &Request) -> Response {
    let parsed = match SeriesRequest::parse(&req.body) {
        Ok(p) => p,
        Err(detail) => return Response::error(400, "bad_request", &detail),
    };
    match z_normalize_all(&parsed.series) {
        Ok(normalized) => {
            let mut body = String::from("{\"series\":");
            push_series_json(&mut body, &normalized);
            body.push('}');
            Response::json(200, body)
        }
        Err(e) => ts_error_response(&e),
    }
}

/// `POST /v1/models/{name}/fit` — z-normalize, fit through the
/// degradation ladder under a wall budget, persist, publish.
fn fit(name: &str, req: &Request, state: &AppState) -> Response {
    let parsed = match FitRequest::parse(&req.body) {
        Ok(p) => p,
        Err(detail) => return Response::error(400, "bad_request", &detail),
    };
    let normalized = match z_normalize_all(&parsed.series) {
        Ok(n) => n,
        Err(e) => return ts_error_response(&e),
    };

    let pressure = state.gate.pressure();
    // Under High pressure start at the cheapest rung so the fit's
    // latency stays bounded while the burst lasts; otherwise honor the
    // requested rung (default: full k-Shape). Elevated pressure keeps
    // k-Shape — descend_on_stop turns a budget trip into a descent
    // instead of an error either way.
    let start = match (parsed.start, pressure) {
        (Some(explicit), _) => explicit,
        (None, Pressure::High) => LadderRung::KAvg,
        (None, _) => LadderRung::KShape,
    };
    state
        .telemetry
        .counter(&format!("serve.fit.pressure.{}", pressure.name()), 1);

    let deadline = state.clamp_deadline(parsed.deadline_ms);
    let config = LadderConfig {
        k: parsed.k,
        max_iter: parsed.max_iter,
        seed: parsed.seed,
        start,
        descend_on_stop: true,
        rung_wall_fraction: 0.5,
        ..LadderConfig::default()
    };
    let opts = LadderOptions {
        config,
        budget: Some(Budget::unlimited().with_deadline(deadline)),
        cancel: None,
        recorder: Some(&state.telemetry),
    };

    let outcome = match cluster_with_ladder(&normalized, &opts) {
        Ok(o) => o,
        Err(e) => return ts_error_response(&e),
    };

    let m = outcome.centroids.first().map_or(0, Vec::len);
    let model = Model {
        name: name.to_string(),
        k: parsed.k,
        m,
        channels: 1,
        rung: outcome.rung.name().to_string(),
        converged: outcome.converged,
        iterations: outcome.iterations,
        centroids: outcome.centroids,
    };
    let descents: Vec<String> = outcome
        .descents
        .iter()
        .map(|d| format!("\"{}\"", d.rung.name()))
        .collect();
    match state.registry.insert(model) {
        Ok(prepared) => Response::json(
            200,
            format!(
                "{{\"model\":\"{}\",\"k\":{},\"m\":{},\"rung\":\"{}\",\"converged\":{},\"iterations\":{},\"descents\":[{}],\"labels\":{}}}",
                json_escape(name),
                prepared.model.k,
                prepared.model.m,
                json_escape(&prepared.model.rung),
                prepared.model.converged,
                prepared.model.iterations,
                descents.join(","),
                labels_json(&outcome.labels)
            ),
        ),
        Err(detail) => Response::error(500, "persist_failed", &detail),
    }
}

/// `POST /v1/models/{name}/assign` — nearest shape centroid per series
/// via the cached-spectra kernel, under a wall budget charged per
/// series.
fn assign(name: &str, req: &Request, state: &AppState) -> Response {
    let Some(model) = state.registry.get(name) else {
        return Response::error(404, "unknown_model", name);
    };
    let parsed = match SeriesRequest::parse(&req.body) {
        Ok(p) => p,
        Err(detail) => return Response::error(400, "bad_request", &detail),
    };
    let m = model.model.m;
    // The declared query frame is the model's, channel-major.
    let frame = model.model.channels * m;
    let deadline = state.clamp_deadline(parsed.deadline_ms);
    let ctrl = RunControl::from_parts(Some(Budget::unlimited().with_deadline(deadline)), None);

    let mut labels = Vec::with_capacity(parsed.series.len());
    let mut distances = Vec::with_capacity(parsed.series.len());
    let mut scratch = SbdScratch::default();
    for (i, series) in parsed.series.iter().enumerate() {
        if let Err(reason) = ctrl.charge(frame as u64) {
            return ts_error_response(&RunControl::stop_error(labels, i, reason));
        }
        if series.len() != frame {
            return ts_error_response(&TsError::LengthMismatch {
                expected: frame,
                found: series.len(),
                series: i,
            });
        }
        let z = match z_normalize_frame(series, m, i) {
            Ok(z) => z,
            Err(e) => return ts_error_response(&e),
        };
        let (label, dist) = model.assign_one(&z, &mut scratch);
        labels.push(label);
        distances.push(dist);
    }
    state
        .telemetry
        .counter("serve.assign.series", labels.len() as u64);

    let mut body = format!(
        "{{\"model\":\"{}\",\"labels\":{},\"distances\":[",
        json_escape(name),
        labels_json(&labels)
    );
    for (i, d) in distances.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&fmt_f64(*d));
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// Z-normalizes one channel-major query frame per channel of length
/// `m` (the plain series path when the frame is a single channel).
fn z_normalize_frame(series: &[f64], m: usize, idx: usize) -> Result<Vec<f64>, TsError> {
    if series.len() == m {
        return tsdata::normalize::try_z_normalize_series(series, idx);
    }
    let mut z = Vec::with_capacity(series.len());
    for chunk in series.chunks_exact(m) {
        z.extend_from_slice(&tsdata::normalize::try_z_normalize_series(chunk, idx)?);
    }
    Ok(z)
}

/// Z-normalizes every series, mapping the first defect to its typed
/// error.
fn z_normalize_all(series: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, TsError> {
    series
        .iter()
        .enumerate()
        .map(|(i, x)| tsdata::normalize::try_z_normalize_series(x, i))
        .collect()
}

/// Maps a [`TsError`] to its HTTP response. Budget trips become a 504
/// carrying the typed partial result; invalid inputs are 422;
/// numerical failures are 500.
pub fn ts_error_response(err: &TsError) -> Response {
    match err {
        TsError::Stopped {
            labels,
            iterations,
            reason,
        } => Response::json(
            504,
            format!(
                "{{\"error\":\"stopped\",\"reason\":\"{}\",\"iterations\":{},\"partial_labels\":{}}}",
                stop_reason_name(*reason),
                iterations,
                labels_json(labels)
            ),
        ),
        TsError::NumericalFailure { .. } => {
            Response::error(500, "numerical_failure", &err.to_string())
        }
        _ => Response::error(422, "invalid_input", &err.to_string()),
    }
}

/// Stable lowercase name for a [`StopReason`].
pub fn stop_reason_name(reason: StopReason) -> &'static str {
    match reason {
        StopReason::Deadline => "deadline",
        StopReason::Cancelled => "cancelled",
        StopReason::IterationCap => "iteration_cap",
        StopReason::CostCap => "cost_cap",
    }
}

impl AppState {
    /// Clamps a requested deadline to the configured ceiling, applying
    /// the default when absent.
    fn clamp_deadline(&self, requested_ms: Option<u64>) -> Duration {
        let ms = requested_ms
            .unwrap_or(self.config.default_deadline_ms)
            .clamp(1, self.config.max_deadline_ms);
        Duration::from_millis(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopped_maps_to_typed_504() {
        let err = TsError::stopped(vec![0, 1, 0], 2, StopReason::Deadline);
        let r = ts_error_response(&err);
        assert_eq!(r.status, 504);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"reason\":\"deadline\""));
        assert!(body.contains("\"partial_labels\":[0,1,0]"));
    }

    #[test]
    fn invalid_input_maps_to_422() {
        let err = TsError::NonFinite {
            series: 3,
            index: 7,
        };
        assert_eq!(ts_error_response(&err).status, 422);
        let err = TsError::NumericalFailure {
            context: "x".into(),
        };
        assert_eq!(ts_error_response(&err).status, 500);
    }
}
