//! The server core: configuration, shared state, the accept loop with
//! admission control, per-connection handling, and graceful drain.
//!
//! The accept loop is single-threaded and non-blocking; accepted
//! connections are handed to the bounded pool. When the pool rejects
//! (queue full) the connection is shed immediately with
//! `503 + Retry-After` — the server never queues without bound, so an
//! overload burst degrades into fast, typed refusals instead of
//! collapse.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsexperiments::CheckpointStore;
use tsobs::Recorder;

use crate::gate::Gate;
use crate::http::{self, Limits, Response};
use crate::pool::BoundedPool;
use crate::registry::ModelRegistry;
use crate::streams::StreamRegistry;
use crate::telemetry::RingTelemetry;

/// Accept-loop poll quantum while idle or draining.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server configuration. [`Default`] is sized for tests and small
/// deployments; `main.rs` exposes every knob as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded accept queue depth; beyond it connections are shed.
    pub queue_depth: usize,
    /// Maximum request head size, bytes.
    pub max_head_bytes: usize,
    /// Maximum request body size, bytes.
    pub max_body_bytes: usize,
    /// Wall budget for reading one request (slow-loris eviction).
    pub read_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Deadline applied to fit/assign when the request names none, ms.
    pub default_deadline_ms: u64,
    /// Ceiling on requested deadlines, ms.
    pub max_deadline_ms: u64,
    /// Model persistence directory; `None` keeps models in memory only.
    pub checkpoint_dir: Option<PathBuf>,
    /// Telemetry ring capacity, lines.
    pub telemetry_capacity: usize,
    /// Enables `POST /admin/panic` (worker panic-isolation probe).
    pub panic_probe: bool,
    /// Streaming checkpoint cadence, accepted arrivals per stream
    /// (0 = only on drain).
    pub stream_checkpoint_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 16,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            read_deadline: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            checkpoint_dir: None,
            telemetry_capacity: 4096,
            panic_probe: false,
            stream_checkpoint_every: 64,
        }
    }
}

/// State shared by the accept loop, every worker, and the handlers.
pub struct AppState {
    /// Server configuration.
    pub config: ServeConfig,
    /// Admission accounting and pressure signal.
    pub gate: Gate,
    /// Fitted models (kill-safe via the checkpoint store).
    pub registry: ModelRegistry,
    /// Streaming engines (kill-safe via the checkpoint store).
    pub streams: StreamRegistry,
    /// Bounded telemetry ring (the per-request recorder).
    pub telemetry: RingTelemetry,
    draining: AtomicBool,
}

impl AppState {
    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Requests a graceful drain: stop accepting, finish in-flight,
    /// flush telemetry, exit the accept loop.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }
}

/// Final counters reported when the server exits.
#[derive(Debug)]
pub struct ServeSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests completed (a response was attempted).
    pub completed: u64,
    /// Connections shed with 503.
    pub shed: u64,
    /// Error responses sent (4xx/5xx).
    pub errors: u64,
    /// Panics contained (handler level + pool backstop).
    pub panics: u64,
    /// Models registered at exit.
    pub models: usize,
}

/// A bound, warm-started server ready to run.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the listener, opens the checkpoint store, and warm-starts
    /// the model registry from persisted artifacts.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = match &config.checkpoint_dir {
            Some(dir) => CheckpointStore::new(dir),
            None => CheckpointStore::disabled(),
        };
        let registry = ModelRegistry::new(store.clone());
        let warm = registry.warm_start();
        let streams = StreamRegistry::new(store, config.stream_checkpoint_every);
        let stream_warm = streams.warm_start();
        let telemetry = RingTelemetry::new(config.telemetry_capacity);
        if !warm.loaded.is_empty() {
            telemetry.counter("serve.warm_start.models", warm.loaded.len() as u64);
        }
        if !stream_warm.loaded.is_empty() {
            telemetry.counter("serve.warm_start.streams", stream_warm.loaded.len() as u64);
        }
        if warm.rejected + stream_warm.rejected > 0 {
            telemetry.counter(
                "serve.warm_start.rejected",
                (warm.rejected + stream_warm.rejected) as u64,
            );
        }
        let capacity = config.workers + config.queue_depth;
        let state = Arc::new(AppState {
            gate: Gate::new(capacity),
            registry,
            streams,
            telemetry,
            config,
            draining: AtomicBool::new(false),
        });
        Ok(Server {
            listener,
            state,
            addr,
        })
    }

    /// The bound address (with the OS-chosen port when `addr` had 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle (tests drive drain and read counters here).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop until drain, then shuts the pool down
    /// (finishing every queued request), flushes telemetry next to the
    /// checkpoints, and returns the final counters.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let state = Arc::clone(&self.state);
        let pool_state = Arc::clone(&self.state);
        let pool = BoundedPool::new(
            state.config.workers,
            state.config.queue_depth,
            move |stream: TcpStream| handle_connection(stream, &pool_state),
        );

        loop {
            if state.is_draining() {
                break;
            }
            match self.listener.accept() {
                Ok((mut stream, _peer)) => {
                    state.gate.admit();
                    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
                    if state.is_draining() {
                        state.gate.record_shed();
                        let resp = Response::error(503, "draining", "server is draining")
                            .with_retry_after(1);
                        let _ = resp.write_to(&mut stream);
                        break;
                    }
                    match pool.try_submit(stream) {
                        Ok(_depth) => {}
                        Err(mut stream) => {
                            state.gate.record_shed();
                            state.telemetry.counter("serve.shed", 1);
                            let resp = Response::error(
                                503,
                                "overloaded",
                                "request queue is full; retry later",
                            )
                            .with_retry_after(state.gate.retry_after_secs());
                            let _ = resp.write_to(&mut stream);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }

        // Drain: stop accepting (listener closes with self), finish
        // every in-flight and queued request, checkpoint every stream,
        // then flush telemetry.
        let pool_panics = pool.shutdown();
        state
            .streams
            .persist_all(tsobs::Obs::from_option(Some(&state.telemetry)));
        if let Some(dir) = &state.config.checkpoint_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = state.telemetry.flush_to(&dir.join("telemetry.jsonl"));
        }
        Ok(ServeSummary {
            accepted: state.gate.accepted_total(),
            completed: state.gate.completed_total(),
            shed: state.gate.shed_total(),
            errors: state.gate.errors_total(),
            panics: state.gate.panics_total() + pool_panics,
            models: state.registry.len(),
        })
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let state = Arc::clone(&self.state);
        let join = std::thread::Builder::new()
            .name("tsserve-accept".to_string())
            .spawn(move || self.run())
            .expect("spawn accept loop");
        ServerHandle { addr, state, join }
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    join: std::thread::JoinHandle<std::io::Result<ServeSummary>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (counters, drain flag, registry).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Requests drain and waits for the accept loop to finish.
    pub fn drain_and_join(self) -> std::io::Result<ServeSummary> {
        self.state.begin_drain();
        self.join
            .join()
            .unwrap_or_else(|_| panic!("accept loop panicked"))
    }
}

/// Reads and discards input already in flight, stopping at the first
/// empty poll (the peer is waiting on us, not sending) or after a small
/// bound. Best-effort: purely to make error-path closes graceful.
fn drain_available(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut chunk = [0u8; 4096];
    let give_up = Instant::now() + Duration::from_millis(60);
    while Instant::now() < give_up {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Serves one connection: read, route (panic-isolated), respond.
fn handle_connection(mut stream: TcpStream, state: &AppState) {
    let start = Instant::now();
    let limits = Limits {
        max_head_bytes: state.config.max_head_bytes,
        max_body_bytes: state.config.max_body_bytes,
        read_deadline: state.config.read_deadline,
    };
    let response = match http::read_request(&mut stream, &limits) {
        Ok(req) => match catch_unwind(AssertUnwindSafe(|| crate::handlers::handle(&req, state))) {
            Ok(resp) => resp,
            Err(_) => {
                state.gate.record_panic();
                state.telemetry.counter("serve.panic", 1);
                Response::error(500, "internal_panic", "request handler panicked")
            }
        },
        Err(err) => {
            if matches!(err, http::HttpError::SlowClient) {
                state.telemetry.counter("serve.slow_client", 1);
            }
            match err.into_response() {
                Some(resp) => {
                    // Discard whatever the client already buffered so
                    // closing after the error response sends FIN, not
                    // RST — otherwise the peer may lose the response.
                    drain_available(&mut stream);
                    resp
                }
                None => {
                    // Peer vanished before sending anything.
                    state.gate.depart(start.elapsed().as_nanos() as u64, false);
                    return;
                }
            }
        }
    };
    let errored = response.status >= 400;
    let status_class = response.status / 100;
    let _ = response.write_to(&mut stream);
    let elapsed = start.elapsed().as_nanos() as u64;
    state.gate.depart(elapsed, errored);
    state.telemetry.span("serve.request", elapsed);
    state
        .telemetry
        .counter(&format!("serve.status.{status_class}xx"), 1);
}
