//! Fitted-model registry with kill-safe persistence.
//!
//! Every fitted model is serialized to JSON (floats via shortest
//! round-trip formatting) and written through
//! [`tsexperiments::CheckpointStore::store_named`] — an atomic
//! write-then-rename — under `model__<name>.json`. On startup
//! [`ModelRegistry::warm_start`] reloads every artifact, quarantining
//! corrupt files, so a `kill -9`'d server restarts and serves
//! bit-identical assignments without refitting.
//!
//! In memory each model carries its [`SbdPlan`] and the prepared
//! spectra of its centroids, so assignment reuses the cached-spectra
//! hot path: one forward FFT for the query, one conjugate multiply +
//! half-size inverse per centroid.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use kshape::sbd::{PreparedSeries, SbdPlan, SbdScratch};
use tsexperiments::checkpoint::LoadOutcome;
use tsexperiments::CheckpointStore;
use tsobs::JsonValue;

use crate::wire::{json_escape, push_series_json};

/// Checkpoint-name prefix for persisted models.
const MODEL_PREFIX: &str = "model__";

/// Is `name` a legal model name? Restricted to `[A-Za-z0-9_]{1,64}` so
/// names survive the checkpoint store's filename sanitization without
/// collisions.
pub fn valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// A fitted clustering model: the shape centroids plus fit provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Registry name.
    pub name: String,
    /// Number of clusters.
    pub k: usize,
    /// Per-channel series length the model was fitted on.
    pub m: usize,
    /// Channels per series (default 1). Centroids and queries are
    /// `channels * m` samples in channel-major order.
    pub channels: usize,
    /// Ladder rung that produced the centroids (its
    /// [`tscluster::LadderRung::name`]).
    pub rung: String,
    /// Whether the producing rung converged before its iteration cap.
    pub converged: bool,
    /// Refinement iterations executed.
    pub iterations: usize,
    /// One centroid per cluster, each of length `m`.
    pub centroids: Vec<Vec<f64>>,
}

impl Model {
    /// Serializes the model as its persistence payload.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.k * self.channels * self.m * 20);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"k\":{},\"m\":{}",
            json_escape(&self.name),
            self.k,
            self.m,
        ));
        // Only multichannel models mention channels, so univariate
        // artifacts keep the pre-redesign byte format (and old artifacts
        // parse: a missing key defaults to 1).
        if self.channels != 1 {
            out.push_str(&format!(",\"channels\":{}", self.channels));
        }
        out.push_str(&format!(
            ",\"rung\":\"{}\",\"converged\":{},\"iterations\":{},\"centroids\":",
            json_escape(&self.rung),
            self.converged,
            self.iterations,
        ));
        push_series_json(&mut out, &self.centroids);
        out.push('}');
        out
    }

    /// Parses and validates a persistence payload. `None` on any
    /// structural or numerical defect — the caller quarantines the file.
    pub fn from_json(text: &str) -> Option<Model> {
        let obj = tsobs::parse_json(text).ok()?;
        let name = obj.get("name")?.as_str()?.to_string();
        if !valid_model_name(&name) {
            return None;
        }
        let k = obj.get("k")?.as_uint()? as usize;
        let m = obj.get("m")?.as_uint()? as usize;
        let channels = match obj.get("channels") {
            Some(v) => v.as_uint()? as usize,
            None => 1,
        };
        if channels == 0 {
            return None;
        }
        let rung = obj.get("rung")?.as_str()?.to_string();
        tscluster::LadderRung::from_name(&rung)?;
        let converged = match obj.get("converged")? {
            JsonValue::Bool(b) => *b,
            _ => return None,
        };
        let iterations = obj.get("iterations")?.as_uint()? as usize;
        let JsonValue::Arr(rows) = obj.get("centroids")? else {
            return None;
        };
        if k == 0 || m == 0 || rows.len() != k {
            return None;
        }
        let mut centroids = Vec::with_capacity(k);
        for row in rows {
            let JsonValue::Arr(vals) = row else {
                return None;
            };
            if vals.len() != channels * m {
                return None;
            }
            let mut c = Vec::with_capacity(channels * m);
            for v in vals {
                let x = v.as_num()?;
                if !x.is_finite() {
                    return None;
                }
                c.push(x);
            }
            centroids.push(c);
        }
        Some(Model {
            name,
            k,
            m,
            channels,
            rung,
            converged,
            iterations,
            centroids,
        })
    }
}

/// A model plus its cached FFT plan and prepared centroid spectra.
#[derive(Debug)]
pub struct PreparedModel {
    /// The underlying model.
    pub model: Model,
    plan: SbdPlan,
    prepared: Vec<PreparedSeries>,
}

impl PreparedModel {
    /// Prepares `model` for assignment (one forward FFT per centroid
    /// channel, done once here).
    pub fn new(model: Model) -> tserror::TsResult<PreparedModel> {
        let plan = SbdPlan::try_new(model.m)?;
        let prepared = model
            .centroids
            .iter()
            .flat_map(|c| c.chunks_exact(model.m))
            .map(|chunk| plan.prepare(chunk))
            .collect();
        Ok(PreparedModel {
            model,
            plan,
            prepared,
        })
    }

    /// Nearest centroid for an already z-normalized channel-major query
    /// of length `channels * m`: `(label, sbd_distance)`.
    pub fn assign_one(&self, query: &[f64], scratch: &mut SbdScratch) -> (usize, f64) {
        debug_assert_eq!(query.len(), self.model.channels * self.model.m);
        let c = self.model.channels;
        let q: Vec<PreparedSeries> = query
            .chunks_exact(self.model.m)
            .map(|chunk| self.plan.prepare(chunk))
            .collect();
        let mut best = (0usize, f64::INFINITY);
        for idx in 0..self.model.k {
            let (dist, _shift) =
                self.plan
                    .sbd_spectra_multi(&q, &self.prepared[idx * c..(idx + 1) * c], scratch);
            if dist < best.1 {
                best = (idx, dist);
            }
        }
        best
    }
}

/// Outcome of [`ModelRegistry::warm_start`].
#[derive(Debug, Default)]
pub struct WarmStart {
    /// Names of the models loaded, sorted.
    pub loaded: Vec<String>,
    /// Artifacts quarantined (corrupt bytes) or rejected (bad payload).
    pub rejected: usize,
}

/// Thread-safe registry of prepared models backed by a
/// [`CheckpointStore`].
pub struct ModelRegistry {
    store: CheckpointStore,
    models: RwLock<HashMap<String, Arc<PreparedModel>>>,
}

impl ModelRegistry {
    /// A registry persisting through `store` (which may be disabled —
    /// then models live only in memory).
    pub fn new(store: CheckpointStore) -> ModelRegistry {
        ModelRegistry {
            store,
            models: RwLock::new(HashMap::new()),
        }
    }

    /// Reloads every persisted model. Corrupt files are quarantined by
    /// the store (`*.json.corrupt`) and counted, never served.
    pub fn warm_start(&self) -> WarmStart {
        let mut out = WarmStart::default();
        for artifact in self.store.list_named(MODEL_PREFIX) {
            let (model, outcome) = self.store.load_named(&artifact, Model::from_json);
            match (model, outcome) {
                (Some(model), LoadOutcome::Hit) => match PreparedModel::new(model) {
                    Ok(prepared) => {
                        out.loaded.push(prepared.model.name.clone());
                        self.put(prepared);
                    }
                    Err(_) => out.rejected += 1,
                },
                (_, LoadOutcome::Quarantined) => out.rejected += 1,
                _ => out.rejected += 1,
            }
        }
        out.loaded.sort();
        out
    }

    /// Validates, prepares, persists, and publishes a fitted model.
    /// The write is atomic (`store_named`), so a kill mid-store leaves
    /// either the old artifact or the new one — never a torn file.
    pub fn insert(&self, model: Model) -> Result<Arc<PreparedModel>, String> {
        let payload = model.to_json();
        let name = model.name.clone();
        let prepared = PreparedModel::new(model).map_err(|e| format!("model rejected: {e}"))?;
        self.store
            .store_named(&format!("{MODEL_PREFIX}{name}"), &payload)
            .map_err(|e| format!("persist failed: {e}"))?;
        let arc = Arc::new(prepared);
        self.models
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    fn put(&self, prepared: PreparedModel) {
        self.models
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(prepared.model.name.clone(), Arc::new(prepared));
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedModel>> {
        self.models
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Sorted model names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> Model {
        Model {
            name: "demo".into(),
            k: 2,
            m: 4,
            channels: 1,
            rung: "k-Shape".into(),
            converged: true,
            iterations: 3,
            centroids: vec![vec![0.1, 0.2, -0.3, 0.0], vec![1.0, -1.0, 0.5, -0.5]],
        }
    }

    fn sample_mc_model() -> Model {
        Model {
            name: "demo_mc".into(),
            k: 2,
            m: 4,
            channels: 2,
            rung: "k-Shape".into(),
            converged: true,
            iterations: 3,
            centroids: vec![
                vec![0.1, 0.2, -0.3, 0.0, 0.4, -0.4, 0.2, -0.2],
                vec![1.0, -1.0, 0.5, -0.5, -1.0, 1.0, -0.5, 0.5],
            ],
        }
    }

    #[test]
    fn univariate_model_json_never_mentions_channels() {
        // Old artifacts must keep loading and new univariate artifacts
        // must keep the old byte format.
        let json = sample_model().to_json();
        assert!(!json.contains("\"channels\""));
        assert_eq!(Model::from_json(&json).unwrap().channels, 1);
    }

    #[test]
    fn multichannel_model_round_trips_and_assigns() {
        let model = sample_mc_model();
        let json = model.to_json();
        assert!(json.contains("\"channels\":2"));
        let back = Model::from_json(&json).unwrap();
        assert_eq!(back, model);
        assert_eq!(back.to_json(), json);
        // Wrong per-row width is a structural defect.
        assert!(Model::from_json(&json.replace("\"channels\":2", "\"channels\":3")).is_none());

        let prepared = PreparedModel::new(model.clone()).unwrap();
        let mut scratch = SbdScratch::default();
        // Each centroid is its own nearest neighbour.
        for (j, cent) in model.centroids.iter().enumerate() {
            let (label, dist) = prepared.assign_one(cent, &mut scratch);
            assert_eq!(label, j);
            assert!(dist < 1e-9, "self-distance {dist} for centroid {j}");
        }
    }

    #[test]
    fn model_json_round_trips_exactly() {
        let model = sample_model();
        let json = model.to_json();
        let back = Model::from_json(&json).unwrap();
        assert_eq!(back, model);
        // Bit-identical floats and a byte-identical re-serialization:
        // the warm-start contract.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_defects() {
        let model = sample_model();
        let good = model.to_json();
        assert!(Model::from_json(&good.replace("\"k\":2", "\"k\":3")).is_none());
        assert!(Model::from_json(&good.replace("0.2", "\"x\"")).is_none());
        assert!(Model::from_json("{\"name\":\"demo\"}").is_none());
        assert!(Model::from_json("not json").is_none());
        assert!(Model::from_json(&good.replace("k-Shape", "mystery")).is_none());
    }

    #[test]
    fn model_names_are_restricted() {
        assert!(valid_model_name("prices_2024"));
        assert!(!valid_model_name(""));
        assert!(!valid_model_name("a/b"));
        assert!(!valid_model_name("dash-ed"));
        assert!(!valid_model_name(&"x".repeat(65)));
    }

    #[test]
    fn registry_round_trip_and_warm_start() {
        let dir = std::env::temp_dir().join(format!(
            "tsserve-registry-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::new(CheckpointStore::new(&dir));
        registry.insert(sample_model()).unwrap();
        assert_eq!(registry.names(), vec!["demo".to_string()]);

        // Fresh registry over the same dir: warm start finds the model.
        let reborn = ModelRegistry::new(CheckpointStore::new(&dir));
        let warm = reborn.warm_start();
        assert_eq!(warm.loaded, vec!["demo".to_string()]);
        assert_eq!(warm.rejected, 0);
        let m = reborn.get("demo").unwrap();
        assert_eq!(m.model, sample_model());

        // Assignment agrees between original and warm-started copies.
        let query = vec![0.9, -0.9, 0.4, -0.4];
        let mut scratch = SbdScratch::default();
        let a = registry
            .get("demo")
            .unwrap()
            .assign_one(&query, &mut scratch);
        let b = m.assign_one(&query, &mut scratch);
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_quarantines_corrupt_artifacts() {
        let dir = std::env::temp_dir().join(format!("tsserve-quarantine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir);
        store
            .store_named("model__good", &sample_model().to_json())
            .unwrap();
        store
            .store_named("model__bad", "{\"name\":\"bad\",")
            .unwrap();
        let registry = ModelRegistry::new(CheckpointStore::new(&dir));
        let warm = registry.warm_start();
        assert_eq!(warm.loaded, vec!["demo".to_string()]);
        assert_eq!(warm.rejected, 1);
        assert!(dir.join("model__bad.json.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
