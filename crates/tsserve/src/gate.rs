//! Admission accounting: in-flight load, shed/error counters, service
//! EWMA, and the pressure signal that picks the ladder's starting rung.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Coarse load level derived from in-flight requests vs capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pressure {
    /// Below half capacity: serve the full k-Shape rung.
    Normal,
    /// Above half capacity: still k-Shape, but budget trips will walk
    /// the ladder down instead of erroring.
    Elevated,
    /// Near saturation: start fits at the cheapest rung (k-AVG) so
    /// latency stays bounded while the burst lasts.
    High,
}

impl Pressure {
    /// Stable lowercase name for telemetry and response payloads.
    pub fn name(self) -> &'static str {
        match self {
            Pressure::Normal => "normal",
            Pressure::Elevated => "elevated",
            Pressure::High => "high",
        }
    }
}

/// Shared request accounting. All counters are relaxed — they feed
/// telemetry and heuristics, not synchronization.
#[derive(Debug)]
pub struct Gate {
    capacity: usize,
    inflight: AtomicUsize,
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    ewma_service_ns: AtomicU64,
}

impl Gate {
    /// A gate sized to `capacity` concurrent requests (workers + queue).
    pub fn new(capacity: usize) -> Gate {
        Gate {
            capacity: capacity.max(1),
            inflight: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            ewma_service_ns: AtomicU64::new(0),
        }
    }

    /// Records an accepted connection entering the system.
    pub fn admit(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request leaving the system (after its response).
    pub fn depart(&self, service_ns: u64, errored: bool) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if errored {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        // EWMA with alpha = 1/8; seeded by the first observation.
        let prev = self.ewma_service_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            service_ns
        } else {
            prev - prev / 8 + service_ns / 8
        };
        self.ewma_service_ns.store(next, Ordering::Relaxed);
    }

    /// Records a shed connection (503, never entered the pool).
    pub fn record_shed(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a contained worker panic.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Current load level.
    pub fn pressure(&self) -> Pressure {
        let inflight = self.inflight.load(Ordering::Relaxed);
        if inflight * 2 < self.capacity {
            Pressure::Normal
        } else if inflight * 8 < self.capacity * 7 {
            Pressure::Elevated
        } else {
            Pressure::High
        }
    }

    /// `Retry-After` hint for shed responses: the EWMA service time
    /// multiplied by the queue ahead of the client, clamped to 1..=30 s.
    pub fn retry_after_secs(&self) -> u32 {
        let ewma = self.ewma_service_ns.load(Ordering::Relaxed);
        let inflight = self.inflight.load(Ordering::Relaxed) as u64;
        let estimate_ns = ewma.saturating_mul(inflight.max(1));
        estimate_ns.div_ceil(1_000_000_000).clamp(1, 30) as u32
    }

    /// Counter snapshot as a JSON object body fragment.
    pub fn snapshot_json(&self) -> String {
        format!(
            "\"accepted\":{},\"completed\":{},\"inflight\":{},\"shed\":{},\"errors\":{},\"panics\":{},\"pressure\":\"{}\"",
            self.accepted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.inflight.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.panics.load(Ordering::Relaxed),
            self.pressure().name(),
        )
    }

    /// Total shed connections.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total accepted connections.
    pub fn accepted_total(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Total completed requests.
    pub fn completed_total(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Total error responses (4xx/5xx).
    pub fn errors_total(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Total contained panics.
    pub fn panics_total(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_tracks_inflight() {
        let gate = Gate::new(8);
        assert_eq!(gate.pressure(), Pressure::Normal);
        for _ in 0..4 {
            gate.admit();
        }
        assert_eq!(gate.pressure(), Pressure::Elevated);
        for _ in 0..4 {
            gate.admit();
        }
        assert_eq!(gate.pressure(), Pressure::High);
        for _ in 0..8 {
            gate.depart(1_000, false);
        }
        assert_eq!(gate.pressure(), Pressure::Normal);
        assert_eq!(gate.completed_total(), 8);
    }

    #[test]
    fn retry_after_is_clamped() {
        let gate = Gate::new(4);
        assert_eq!(gate.retry_after_secs(), 1);
        gate.admit();
        gate.depart(120_000_000_000, false); // 2-minute EWMA seed
        gate.admit();
        assert_eq!(gate.retry_after_secs(), 30);
        gate.depart(1, false);
    }
}
