//! Hand-rolled HTTP/1.1 request reading and response writing over
//! blocking `TcpStream`s.
//!
//! The parser is deliberately minimal — method, path, `Content-Length`
//! body — but strict about the failure modes a server must survive:
//! oversized heads and bodies are rejected with typed errors before
//! buffering them, chunked transfer encoding is refused, and every read
//! is polled against a per-request wall deadline so a slow-loris client
//! (drip-feeding bytes to pin a worker) is evicted with a 408 instead of
//! holding the connection forever.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::wire::json_escape;

/// Poll quantum for blocking reads: short enough that the wall deadline
/// is enforced with millisecond slack, long enough not to spin.
const READ_POLL: Duration = Duration::from_millis(25);

/// Byte and time limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the head (request line + headers), bytes.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted, bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving the complete request.
    pub read_deadline: Duration,
}

/// A parsed request: method, path (query string stripped), raw body.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without the query string.
    pub path: String,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Every variant except
/// [`HttpError::Disconnected`] maps to a typed HTTP error response.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed bytes: bad request line, bad header, truncated stream,
    /// or an unsupported transfer encoding.
    BadRequest(String),
    /// Head or declared body exceeds the configured limit.
    TooLarge(&'static str),
    /// The read deadline elapsed before the request completed
    /// (slow-loris eviction).
    SlowClient,
    /// The peer vanished before sending anything; no response possible.
    Disconnected,
}

impl HttpError {
    /// The error as an HTTP response, or `None` when the peer is gone.
    pub fn into_response(self) -> Option<Response> {
        match self {
            HttpError::BadRequest(detail) => Some(Response::error(400, "bad_request", &detail)),
            HttpError::TooLarge(what) => Some(Response::error(413, "too_large", what)),
            HttpError::SlowClient => Some(Response::error(
                408,
                "slow_client",
                "read deadline exceeded; connection evicted",
            )),
            HttpError::Disconnected => None,
        }
    }
}

/// Reads one complete request, enforcing `limits`.
///
/// Sends `100 Continue` when the client asked for it (curl does for
/// bodies over 1 KiB) so well-behaved clients do not stall.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, HttpError> {
    let deadline = Instant::now() + limits.read_deadline;
    let _ = stream.set_read_timeout(Some(READ_POLL));

    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::TooLarge("request head exceeds limit"));
        }
        read_some(stream, &mut buf, deadline)?;
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut content_length: usize = 0;
    let mut expects_continue = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::BadRequest(
                "chunked transfer encoding is not supported".into(),
            ));
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge("request body exceeds limit"));
    }
    if expects_continue && content_length > 0 {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        read_some(stream, &mut body, deadline)?;
    }
    body.truncate(content_length);

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        body,
    })
}

/// One polled read into `buf`, honouring `deadline`.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
) -> Result<(), HttpError> {
    let mut chunk = [0u8; 4096];
    loop {
        if Instant::now() >= deadline {
            return Err(HttpError::SlowClient);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    HttpError::Disconnected
                } else {
                    HttpError::BadRequest("connection closed mid-request".into())
                });
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(());
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Disconnected),
        }
    }
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response about to be written. Always `Connection: close` —
/// one request per connection keeps worker accounting and eviction
/// trivially correct under chaos.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Optional `Retry-After` header (seconds), set on shed 503s.
    pub retry_after: Option<u32>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            retry_after: None,
            body: body.into_bytes(),
        }
    }

    /// A typed JSON error: `{"error":code,"detail":detail}`.
    pub fn error(status: u16, code: &str, detail: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(code),
                json_escape(detail)
            ),
        )
    }

    /// Adds a `Retry-After` header.
    #[must_use]
    pub fn with_retry_after(mut self, secs: u32) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Writes status line, headers, and body to `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn error_responses_are_typed() {
        let r = HttpError::TooLarge("body").into_response().unwrap();
        assert_eq!(r.status, 413);
        assert!(String::from_utf8(r.body).unwrap().contains("too_large"));
        assert!(HttpError::Disconnected.into_response().is_none());
    }

    #[test]
    fn status_texts_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 408, 413, 422, 500, 503, 504] {
            assert_ne!(status_text(code), "Response");
        }
    }
}
