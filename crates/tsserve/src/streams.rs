//! Streaming ingest: named [`StreamKShape`] engines with kill-safe
//! checkpointing.
//!
//! Each stream is an online k-Shape engine behind a mutex; arrivals are
//! pushed through `POST /v1/streams/{name}/push` and each one returns a
//! typed outcome (assigned / buffered / bootstrapped / quarantined).
//! Every `checkpoint_every` accepted arrivals the engine's full state is
//! serialized through [`CheckpointStore::store_named`] (atomic
//! write-then-rename) under `stream__<name>.json`, so a `kill -9`
//! restarts the server at the last checkpoint with byte-identical
//! sufficient statistics — replaying the arrivals after the checkpoint
//! reproduces the exact labels the dead process would have emitted.
//!
//! Backpressure is inherited from the server: ingest requests pass the
//! same bounded pool and admission gate as fit/assign, so a flood of
//! arrivals sheds with `503 + Retry-After` instead of buffering without
//! bound, and the engine's own window capacity bounds per-stream memory.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use kshape::stream::{PushOutcome, StreamConfig, StreamKShape};
use tsexperiments::checkpoint::LoadOutcome;
use tsexperiments::CheckpointStore;
use tsobs::Obs;

use crate::registry::valid_model_name;

/// Checkpoint-name prefix for persisted streams.
const STREAM_PREFIX: &str = "stream__";

/// One registered stream: the engine plus its checkpoint debt.
pub struct StreamEntry {
    /// The online engine.
    pub engine: StreamKShape,
    /// Accepted arrivals since the last persisted checkpoint.
    pub dirty: u64,
}

/// Outcome of [`StreamRegistry::warm_start`].
#[derive(Debug, Default)]
pub struct StreamWarmStart {
    /// Names of the streams loaded, sorted.
    pub loaded: Vec<String>,
    /// Artifacts quarantined (corrupt bytes) or rejected (bad payload).
    pub rejected: usize,
}

/// Why a stream could not be created.
#[derive(Debug, PartialEq, Eq)]
pub enum CreateError {
    /// A stream with this name already exists.
    Exists,
    /// The configuration failed validation.
    Invalid(String),
}

/// Thread-safe registry of streaming engines backed by a
/// [`CheckpointStore`].
pub struct StreamRegistry {
    store: CheckpointStore,
    checkpoint_every: u64,
    streams: RwLock<HashMap<String, Arc<Mutex<StreamEntry>>>>,
}

impl StreamRegistry {
    /// A registry persisting through `store`, checkpointing each stream
    /// every `checkpoint_every` accepted arrivals (0 disables periodic
    /// checkpoints; streams then persist only on drain).
    pub fn new(store: CheckpointStore, checkpoint_every: u64) -> StreamRegistry {
        StreamRegistry {
            store,
            checkpoint_every,
            streams: RwLock::new(HashMap::new()),
        }
    }

    /// Reloads every persisted stream. Corrupt artifacts are quarantined
    /// by the store (`*.json.corrupt`) and counted, never resumed.
    pub fn warm_start(&self) -> StreamWarmStart {
        let mut out = StreamWarmStart::default();
        for artifact in self.store.list_named(STREAM_PREFIX) {
            let Some(name) = artifact.strip_prefix(STREAM_PREFIX).map(str::to_string) else {
                out.rejected += 1;
                continue;
            };
            let (engine, outcome) = self.store.load_named(&artifact, StreamKShape::from_json);
            match (engine, outcome) {
                (Some(engine), LoadOutcome::Hit) if valid_model_name(&name) => {
                    out.loaded.push(name.clone());
                    self.put(name, engine);
                }
                _ => out.rejected += 1,
            }
        }
        out.loaded.sort();
        out
    }

    fn put(&self, name: String, engine: StreamKShape) {
        self.streams
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(name, Arc::new(Mutex::new(StreamEntry { engine, dirty: 0 })));
    }

    /// Creates and persists a new stream.
    ///
    /// # Errors
    ///
    /// [`CreateError::Exists`] on a name collision,
    /// [`CreateError::Invalid`] for a config that fails validation or a
    /// checkpoint that cannot be written.
    pub fn create(&self, name: &str, config: StreamConfig) -> Result<(), CreateError> {
        let engine = StreamKShape::new(config).map_err(|e| CreateError::Invalid(e.to_string()))?;
        let mut streams = self
            .streams
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if streams.contains_key(name) {
            return Err(CreateError::Exists);
        }
        self.store
            .store_named(&format!("{STREAM_PREFIX}{name}"), &engine.to_json())
            .map_err(|e| CreateError::Invalid(format!("persist failed: {e}")))?;
        streams.insert(
            name.to_string(),
            Arc::new(Mutex::new(StreamEntry { engine, dirty: 0 })),
        );
        Ok(())
    }

    /// Looks up a stream by name.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<StreamEntry>>> {
        self.streams
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Sorted stream names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .streams
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.streams
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a batch of arrivals into `name`, checkpointing when the
    /// accepted-arrival debt reaches the cadence. Returns `None` for an
    /// unknown stream.
    pub fn push_batch(
        &self,
        name: &str,
        series: &[Vec<f64>],
        obs: Obs<'_>,
    ) -> Option<Vec<PushOutcome>> {
        let entry = self.get(name)?;
        let mut entry = entry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut outcomes = Vec::with_capacity(series.len());
        for x in series {
            let outcome = entry.engine.push_with(x, obs);
            if !matches!(outcome, PushOutcome::Quarantined(_)) {
                entry.dirty += 1;
            }
            outcomes.push(outcome);
        }
        if self.checkpoint_every > 0 && entry.dirty >= self.checkpoint_every {
            self.persist_locked(name, &mut entry, obs);
        }
        Some(outcomes)
    }

    /// Persists one stream immediately (used at drain).
    pub fn persist(&self, name: &str, obs: Obs<'_>) -> bool {
        let Some(entry) = self.get(name) else {
            return false;
        };
        let mut entry = entry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.persist_locked(name, &mut entry, obs)
    }

    /// Persists every stream (drain path).
    pub fn persist_all(&self, obs: Obs<'_>) {
        for name in self.names() {
            self.persist(&name, obs);
        }
    }

    fn persist_locked(&self, name: &str, entry: &mut StreamEntry, obs: Obs<'_>) -> bool {
        match self
            .store
            .store_named(&format!("{STREAM_PREFIX}{name}"), &entry.engine.to_json())
        {
            Ok(()) => {
                entry.dirty = 0;
                obs.counter("serve.stream.checkpoint", 1);
                true
            }
            Err(_) => {
                obs.counter("serve.stream.checkpoint_failed", 1);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshape::stream::Decay;

    fn test_config() -> StreamConfig {
        StreamConfig::new(2, 16)
            .with_warmup(8)
            .with_window_capacity(32)
            .with_refresh_every(4)
    }

    fn wave(i: usize) -> Vec<f64> {
        (0..16)
            .map(|t| {
                let x = t as f64 / 16.0 * std::f64::consts::TAU;
                if i.is_multiple_of(2) {
                    (2.0 * x).sin() + 0.01 * (i as f64)
                } else {
                    (3.0 * x).cos() - 0.01 * (i as f64)
                }
            })
            .collect()
    }

    fn temp_store(tag: &str) -> (CheckpointStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("tsserve-streams-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (CheckpointStore::new(&dir), dir)
    }

    #[test]
    fn create_push_and_duplicate_rejection() {
        let (store, dir) = temp_store("basic");
        let reg = StreamRegistry::new(store, 4);
        assert!(reg.create("s1", test_config()).is_ok());
        assert_eq!(reg.create("s1", test_config()), Err(CreateError::Exists));
        assert!(matches!(
            reg.create("bad", StreamConfig::new(0, 16)),
            Err(CreateError::Invalid(_))
        ));
        let batch: Vec<Vec<f64>> = (0..20).map(wave).collect();
        let outcomes = reg.push_batch("s1", &batch, Obs::none()).unwrap();
        assert_eq!(outcomes.len(), 20);
        assert!(reg.push_batch("missing", &batch, Obs::none()).is_none());
        assert!(dir.join("stream__s1.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_resumes_byte_identically_and_quarantines_corruption() {
        let (store, dir) = temp_store("resume");
        let reg = StreamRegistry::new(store.clone(), 1);
        reg.create(
            "s1",
            test_config().with_decay(Decay::Windowed { window: 8 }),
        )
        .unwrap();
        let batch: Vec<Vec<f64>> = (0..30).map(wave).collect();
        reg.push_batch("s1", &batch, Obs::none()).unwrap();
        let snapshot = {
            let entry = reg.get("s1").unwrap();
            let entry = entry.lock().unwrap();
            entry.engine.to_json()
        };

        // "kill -9": a fresh registry over the same dir resumes the
        // checkpoint byte-identically (cadence 1 ⇒ checkpoint is current).
        let reborn = StreamRegistry::new(store.clone(), 1);
        let warm = reborn.warm_start();
        assert_eq!(warm.loaded, vec!["s1".to_string()]);
        assert_eq!(warm.rejected, 0);
        {
            let entry = reborn.get("s1").unwrap();
            let entry = entry.lock().unwrap();
            assert_eq!(entry.engine.to_json(), snapshot);
        }
        // Both continue identically.
        let more: Vec<Vec<f64>> = (30..40).map(wave).collect();
        let a = reg.push_batch("s1", &more, Obs::none()).unwrap();
        let b = reborn.push_batch("s1", &more, Obs::none()).unwrap();
        assert_eq!(a, b);

        // A corrupt artifact quarantines instead of resuming.
        store.store_named("stream__broken", "{\"v\":1,").unwrap();
        let third = StreamRegistry::new(store, 1);
        let warm = third.warm_start();
        assert_eq!(warm.loaded, vec!["s1".to_string()]);
        assert_eq!(warm.rejected, 1);
        assert!(dir.join("stream__broken.json.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_arrivals_do_not_advance_checkpoint_debt() {
        let (store, dir) = temp_store("debt");
        let reg = StreamRegistry::new(store, 1_000_000);
        reg.create("s1", test_config()).unwrap();
        let junk = vec![vec![f64::NAN; 16]; 5];
        let outcomes = reg.push_batch("s1", &junk, Obs::none()).unwrap();
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, PushOutcome::Quarantined(_))));
        let entry = reg.get("s1").unwrap();
        assert_eq!(entry.lock().unwrap().dirty, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
