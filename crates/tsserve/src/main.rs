//! `tsserve` binary: flag parsing and the run loop.
//!
//! ```text
//! tsserve [--addr 127.0.0.1:7878] [--workers N] [--queue N]
//!         [--checkpoint-dir DIR] [--deadline-ms N] [--max-deadline-ms N]
//!         [--read-deadline-ms N] [--stream-checkpoint-every N]
//!         [--panic-probe]
//! ```

use std::time::Duration;

use tsserve::{ServeConfig, Server};

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = take("--addr"),
            "--workers" => config.workers = parse(&take("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse(&take("--queue"), "--queue"),
            "--checkpoint-dir" => {
                config.checkpoint_dir = Some(std::path::PathBuf::from(take("--checkpoint-dir")))
            }
            "--deadline-ms" => {
                config.default_deadline_ms = parse(&take("--deadline-ms"), "--deadline-ms")
            }
            "--max-deadline-ms" => {
                config.max_deadline_ms = parse(&take("--max-deadline-ms"), "--max-deadline-ms")
            }
            "--read-deadline-ms" => {
                config.read_deadline =
                    Duration::from_millis(parse(&take("--read-deadline-ms"), "--read-deadline-ms"))
            }
            "--panic-probe" => config.panic_probe = true,
            "--stream-checkpoint-every" => {
                config.stream_checkpoint_every = parse(
                    &take("--stream-checkpoint-every"),
                    "--stream-checkpoint-every",
                )
            }
            "--help" | "-h" => {
                println!(
                    "tsserve: k-Shape clustering server\n\
                     flags: --addr A --workers N --queue N --checkpoint-dir DIR\n\
                     \x20      --deadline-ms N --max-deadline-ms N --read-deadline-ms N\n\
                     \x20      --stream-checkpoint-every N --panic-probe"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }

    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    // Machine-readable so scripts can scrape the bound address.
    println!("tsserve listening on {}", server.addr());
    match server.run() {
        Ok(summary) => {
            println!(
                "{{\"accepted\":{},\"completed\":{},\"shed\":{},\"errors\":{},\"panics\":{},\"models\":{}}}",
                summary.accepted,
                summary.completed,
                summary.shed,
                summary.errors,
                summary.panics,
                summary.models
            );
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("bad value {value:?} for {flag}");
        std::process::exit(2);
    })
}
