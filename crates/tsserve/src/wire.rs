//! JSON wire format: request body parsing (via [`tsobs::parse_json`])
//! and response serialization.
//!
//! Floats are serialized with Rust's `{:?}` formatting — the shortest
//! decimal that round-trips to the identical bits — and parsed back with
//! `str::parse::<f64>`, so a model persisted as JSON and reloaded after
//! a kill produces bit-identical assignments (the warm-start
//! contract in DESIGN.md §8).

use tscluster::LadderRung;
use tsobs::JsonValue;

/// Escapes `s` as the body of a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number that parses back bit-identically
/// (`{:?}` is shortest-round-trip). Non-finite values — which the
/// validated payloads never contain — degrade to `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Appends `[[..],[..]]` for a series set.
pub fn push_series_json(out: &mut String, series: &[Vec<f64>]) {
    out.push('[');
    for (i, row) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&fmt_f64(*v));
        }
        out.push(']');
    }
    out.push(']');
}

/// `[0,1,2]` for a label vector.
pub fn labels_json(labels: &[usize]) -> String {
    let mut out = String::with_capacity(2 + labels.len() * 2);
    out.push('[');
    for (i, l) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&l.to_string());
    }
    out.push(']');
    out
}

/// Parses the request body as a JSON object.
pub fn parse_body(body: &[u8]) -> Result<JsonValue, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let v = tsobs::parse_json(text)?;
    match v {
        JsonValue::Obj(_) => Ok(v),
        _ => Err("body must be a JSON object".to_string()),
    }
}

/// Extracts the `"series"` field: a non-empty array of arrays of
/// numbers. NaN and infinity are unrepresentable in JSON, so every
/// parsed value is finite by construction — corrupt numeric bytes
/// surface as a parse error (HTTP 400), not a poisoned fit.
pub fn parse_series(obj: &JsonValue) -> Result<Vec<Vec<f64>>, String> {
    let JsonValue::Arr(rows) = obj
        .get("series")
        .ok_or_else(|| "missing field \"series\"".to_string())?
    else {
        return Err("\"series\" must be an array of arrays".to_string());
    };
    if rows.is_empty() {
        return Err("\"series\" must not be empty".to_string());
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let JsonValue::Arr(vals) = row else {
            return Err(format!("series[{i}] must be an array of numbers"));
        };
        let mut parsed = Vec::with_capacity(vals.len());
        for v in vals {
            let Some(x) = v.as_num() else {
                return Err(format!("series[{i}] contains a non-numeric value"));
            };
            parsed.push(x);
        }
        out.push(parsed);
    }
    Ok(out)
}

/// Like [`parse_series`], but *lossy*: a JSON `null` sample decodes to
/// NaN instead of rejecting the request. This is the ingest-side escape
/// hatch — a streaming producer that lost samples mid-series reports the
/// holes as `null`, and the engine answers with a typed per-arrival
/// quarantine rather than a whole-batch 400.
pub fn parse_series_lossy(obj: &JsonValue) -> Result<Vec<Vec<f64>>, String> {
    let JsonValue::Arr(rows) = obj
        .get("series")
        .ok_or_else(|| "missing field \"series\"".to_string())?
    else {
        return Err("\"series\" must be an array of arrays".to_string());
    };
    if rows.is_empty() {
        return Err("\"series\" must not be empty".to_string());
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let JsonValue::Arr(vals) = row else {
            return Err(format!("series[{i}] must be an array of numbers or nulls"));
        };
        let mut parsed = Vec::with_capacity(vals.len());
        for v in vals {
            match v {
                JsonValue::Null => parsed.push(f64::NAN),
                _ => match v.as_num() {
                    Some(x) => parsed.push(x),
                    None => return Err(format!("series[{i}] contains a non-numeric value")),
                },
            }
        }
        out.push(parsed);
    }
    Ok(out)
}

/// Optional `u64` field with a default.
fn uint_or(obj: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(v) => v
            .as_uint()
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
    }
}

/// Body of `POST /v1/models/{name}/fit`.
#[derive(Debug)]
pub struct FitRequest {
    /// Raw input series (z-normalized server-side).
    pub series: Vec<Vec<f64>>,
    /// Number of clusters.
    pub k: usize,
    /// RNG seed (default 42).
    pub seed: u64,
    /// Per-rung iteration cap (default 100).
    pub max_iter: usize,
    /// Requested wall deadline in ms, clamped by the server config.
    pub deadline_ms: Option<u64>,
    /// Explicit starting rung, overriding the pressure-based choice.
    pub start: Option<LadderRung>,
}

impl FitRequest {
    /// Parses and validates a fit body.
    pub fn parse(body: &[u8]) -> Result<FitRequest, String> {
        let obj = parse_body(body)?;
        let series = parse_series(&obj)?;
        let k = obj
            .get("k")
            .ok_or_else(|| "missing field \"k\"".to_string())?
            .as_uint()
            .ok_or_else(|| "\"k\" must be a positive integer".to_string())?;
        if k == 0 {
            return Err("\"k\" must be at least 1".to_string());
        }
        let start = match obj.get("start") {
            None | Some(JsonValue::Null) => None,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| "\"start\" must be a rung name".to_string())?;
                Some(LadderRung::from_name(name).ok_or_else(|| format!("unknown rung {name:?}"))?)
            }
        };
        let deadline_ms = match obj.get("deadline_ms") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_uint()
                    .ok_or_else(|| "\"deadline_ms\" must be a non-negative integer".to_string())?,
            ),
        };
        Ok(FitRequest {
            series,
            k: k as usize,
            seed: uint_or(&obj, "seed", 42)?,
            max_iter: uint_or(&obj, "max_iter", 100)? as usize,
            deadline_ms,
            start,
        })
    }
}

/// Body of `POST /v1/models/{name}/assign` and `POST /v1/normalize`.
#[derive(Debug)]
pub struct SeriesRequest {
    /// Raw input series.
    pub series: Vec<Vec<f64>>,
    /// Requested wall deadline in ms, clamped by the server config.
    pub deadline_ms: Option<u64>,
}

impl SeriesRequest {
    /// Parses an assign/normalize body.
    pub fn parse(body: &[u8]) -> Result<SeriesRequest, String> {
        let obj = parse_body(body)?;
        let series = parse_series(&obj)?;
        let deadline_ms = match obj.get("deadline_ms") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_uint()
                    .ok_or_else(|| "\"deadline_ms\" must be a non-negative integer".to_string())?,
            ),
        };
        Ok(SeriesRequest {
            series,
            deadline_ms,
        })
    }
}

/// Body of `POST /v1/streams/{name}` (stream creation).
#[derive(Debug)]
pub struct StreamCreateRequest {
    /// The validated-later stream configuration.
    pub config: kshape::stream::StreamConfig,
}

impl StreamCreateRequest {
    /// Parses a stream-creation body. `k` and `m` are required; every
    /// other knob is optional and defaults through
    /// [`kshape::stream::StreamConfig::new`]. The engine's own
    /// `validate()` runs at creation, so this parser only rejects
    /// malformed JSON and types.
    pub fn parse(body: &[u8]) -> Result<StreamCreateRequest, String> {
        use kshape::stream::{Decay, StreamConfig};
        let obj = parse_body(body)?;
        let k = obj
            .get("k")
            .ok_or_else(|| "missing field \"k\"".to_string())?
            .as_uint()
            .ok_or_else(|| "\"k\" must be a positive integer".to_string())?
            as usize;
        let m = obj
            .get("m")
            .ok_or_else(|| "missing field \"m\"".to_string())?
            .as_uint()
            .ok_or_else(|| "\"m\" must be a positive integer".to_string())?
            as usize;
        if k == 0 || m == 0 {
            return Err("\"k\" and \"m\" must be at least 1".to_string());
        }
        let mut config = StreamConfig::new(k, m);
        config.channels = uint_or(&obj, "channels", config.channels as u64)? as usize;
        config.seed = uint_or(&obj, "seed", config.seed)?;
        config.max_iter = uint_or(&obj, "max_iter", config.max_iter as u64)? as usize;
        config.refresh_every =
            uint_or(&obj, "refresh_every", config.refresh_every as u64)? as usize;
        let warmup = uint_or(&obj, "warmup", config.warmup as u64)? as usize;
        config.warmup = warmup;
        config.window_capacity = uint_or(
            &obj,
            "window_capacity",
            config.window_capacity.max(warmup) as u64,
        )? as usize;
        config.decay = match obj.get("decay") {
            None | Some(JsonValue::Null) => config.decay,
            Some(v) => {
                let kind = v
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "\"decay.kind\" must be a string".to_string())?;
                match kind {
                    "append_only" => Decay::AppendOnly,
                    "exponential" => Decay::Exponential {
                        lambda: v
                            .get("lambda")
                            .and_then(JsonValue::as_num)
                            .ok_or_else(|| "\"decay.lambda\" must be a number".to_string())?,
                    },
                    "windowed" => Decay::Windowed {
                        window: v
                            .get("window")
                            .and_then(JsonValue::as_uint)
                            .ok_or_else(|| "\"decay.window\" must be an integer".to_string())?
                            as usize,
                    },
                    other => return Err(format!("unknown decay kind {other:?}")),
                }
            }
        };
        Ok(StreamCreateRequest { config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_identically() {
        for v in [
            0.1 + 0.2,
            -1.5e-300,
            std::f64::consts::PI,
            1.0,
            f64::MIN_POSITIVE,
        ] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn fit_request_parses_and_validates() {
        let ok = FitRequest::parse(
            br#"{"series":[[1.0,2.0],[3.0,4.5]],"k":2,"seed":7,"start":"SBD-medoid"}"#,
        )
        .unwrap();
        assert_eq!(ok.k, 2);
        assert_eq!(ok.seed, 7);
        assert_eq!(ok.start, Some(LadderRung::SbdMedoid));
        assert_eq!(ok.series[1], vec![3.0, 4.5]);

        assert!(FitRequest::parse(br#"{"series":[[1.0]],"k":0}"#).is_err());
        assert!(FitRequest::parse(br#"{"series":[],"k":1}"#).is_err());
        assert!(FitRequest::parse(br#"{"series":[[NaN]],"k":1}"#).is_err());
        assert!(FitRequest::parse(b"\xff\xfe").is_err());
    }

    #[test]
    fn lossy_series_decodes_null_as_nan() {
        let obj = parse_body(br#"{"series":[[1.0,null,3.0],[null]]}"#).unwrap();
        let strict = parse_series(&obj);
        assert!(strict.is_err(), "strict parser rejects null samples");
        let lossy = parse_series_lossy(&obj).unwrap();
        assert_eq!(lossy[0][0], 1.0);
        assert!(lossy[0][1].is_nan());
        assert_eq!(lossy[0][2], 3.0);
        assert!(lossy[1][0].is_nan());
        assert!(parse_series_lossy(&parse_body(br#"{"series":[["x"]]}"#).unwrap()).is_err());
    }

    #[test]
    fn stream_create_request_parses() {
        let req = StreamCreateRequest::parse(
            br#"{"k":3,"m":64,"seed":9,"warmup":20,"decay":{"kind":"exponential","lambda":0.95}}"#,
        )
        .unwrap();
        assert_eq!(req.config.k, 3);
        assert_eq!(req.config.m, 64);
        assert_eq!(req.config.seed, 9);
        assert_eq!(req.config.warmup, 20);
        assert!(matches!(
            req.config.decay,
            kshape::stream::Decay::Exponential { lambda } if (lambda - 0.95).abs() < 1e-12
        ));
        assert!(StreamCreateRequest::parse(br#"{"k":2}"#).is_err());
        assert!(StreamCreateRequest::parse(br#"{"k":0,"m":8}"#).is_err());
        assert!(
            StreamCreateRequest::parse(br#"{"k":2,"m":8,"decay":{"kind":"mystery"}}"#).is_err()
        );
    }

    #[test]
    fn series_json_serializes() {
        let mut out = String::new();
        push_series_json(&mut out, &[vec![1.0, 0.5], vec![-2.0]]);
        assert_eq!(out, "[[1.0,0.5],[-2.0]]");
        assert_eq!(labels_json(&[0, 2, 1]), "[0,2,1]");
    }
}
