//! A bounded in-memory telemetry ring implementing [`tsobs::Recorder`].
//!
//! Every event is serialized to its JSONL line immediately (the same
//! schema as [`tsobs::JsonlSink`]) and pushed into a capped ring;
//! the oldest lines fall off under sustained load so telemetry can
//! never exhaust memory. `GET /v1/telemetry` snapshots the ring, and
//! drain flushes it to disk next to the model checkpoints.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tsobs::{Event, IterationEvent, Recorder};

/// Bounded ring of serialized JSONL telemetry lines.
#[derive(Debug)]
pub struct RingTelemetry {
    lines: Mutex<VecDeque<String>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingTelemetry {
    /// A ring holding at most `capacity` lines.
    pub fn new(capacity: usize) -> RingTelemetry {
        RingTelemetry {
            lines: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, line: String) {
        let mut lines = self
            .lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if lines.len() == self.capacity {
            lines.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        lines.push_back(line);
    }

    /// Snapshot of the buffered lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Lines evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Writes the buffered lines to `path` as JSONL (used by drain).
    pub fn flush_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut out = String::new();
        for line in self.lines() {
            out.push_str(&line);
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

impl Recorder for RingTelemetry {
    fn counter(&self, name: &str, delta: u64) {
        self.push(
            Event::Counter {
                name: name.to_string(),
                delta,
            }
            .to_json_line(),
        );
    }

    fn histogram(&self, name: &str, value: u64) {
        self.push(
            Event::Histogram {
                name: name.to_string(),
                value,
                bucket: tsobs::log2_bucket(value),
            }
            .to_json_line(),
        );
    }

    fn span(&self, name: &str, nanos: u64) {
        self.push(
            Event::Span {
                name: name.to_string(),
                ns: nanos,
            }
            .to_json_line(),
        );
    }

    fn iteration(&self, event: &IterationEvent) {
        self.push(Event::Iteration(*event).to_json_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_caps_and_counts_drops() {
        let ring = RingTelemetry::new(3);
        for i in 0..5 {
            ring.counter("serve.test", i);
        }
        let lines = ring.lines();
        assert_eq!(lines.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert!(lines[0].contains("\"delta\":2"));
        for line in &lines {
            tsobs::validate_event_line(line).unwrap();
        }
    }
}
