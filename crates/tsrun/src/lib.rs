//! Execution control for the workspace's long-running paths.
//!
//! k-Shape's outer refinement loop and the O(n²) DTW/SBD baseline
//! matrices are the dominant costs of the paper's evaluation (§4.2.2,
//! Fig. 7); a service cannot let either run unbounded. This crate
//! provides the shared control plane every iterative and quadratic path
//! polls at cheap checkpoints:
//!
//! * [`Budget`] — a declarative limit: wall-clock deadline, iteration
//!   cap, and/or cost-step quota;
//! * [`CancelToken`] — a shareable, clone-cheap cooperative cancellation
//!   flag (one relaxed atomic load per poll);
//! * [`RunControl`] — an armed budget + optional token that loops poll
//!   via [`RunControl::check_iteration`] (outer loops) and
//!   [`RunControl::charge`] (inner work, cost-proportional with a strided
//!   clock so `Instant::now()` stays off the hot path);
//! * [`retry_with_reseed`] — re-runs a fallible seeded fit with derived
//!   seeds on retryable failures (numerical blow-ups, empty-cluster
//!   collapse), recording every attempt's error.
//!
//! Tripping a budget or a cancel never panics and never silently
//! truncates: the caller receives [`tserror::TsError::Stopped`] carrying
//! the best labels so far, the iterations done, and the
//! [`StopReason`]. The degradation ladder built on top of this lives in
//! `tscluster::ladder` (it needs the clusterers); checkpoint/resume for
//! the experiment harness lives in `tsexperiments::checkpoint`.
//!
//! # Overhead contract
//!
//! An *unlimited* control ([`RunControl::unlimited`]) with no token short
//! circuits to a single branch per poll, and an armed control's
//! [`RunControl::charge`] fast path is one relaxed `fetch_add` plus one
//! relaxed load: the cancellation/cost/deadline checks (and the
//! `Instant::now()` syscall) all run once per [`RunControl::clock_stride`]
//! cost units behind a single strided boundary — the `BENCH_tsrun.json`
//! bench group holds the k-Shape hot loop to < 2% poll overhead.
//! [`RunControl::poll`] and [`RunControl::check_iteration`] still check
//! the token and the clock on every call, so outer loops detect
//! cancellation immediately.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use tsrun::{Budget, CancelToken, RunControl};
//!
//! let token = CancelToken::new();
//! let ctrl = RunControl::new(
//!     Budget::unlimited().with_iteration_cap(100),
//!     Some(token.clone()),
//! );
//! assert!(ctrl.check_iteration(0).is_ok());
//! token.cancel();
//! assert!(ctrl.check_iteration(1).is_err());
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use tserror::StopReason;
use tserror::{TsError, TsResult};

/// A shareable cooperative cancellation flag.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// flag, so a caller can hand a token into a long-running fit on a worker
/// thread and trip it from a request handler. Polling is a single relaxed
/// atomic load. Cancellation is sticky: once cancelled, always cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the flag. Every clone observes the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled.
    #[inline]
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A declarative execution budget: any combination of a wall-clock
/// deadline, an iteration cap, and a cost-step quota. `None` fields are
/// unlimited.
///
/// Budgets are inert descriptions; arm one with [`RunControl::new`],
/// which starts the clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum wall-clock time from the moment the control is armed.
    pub wall: Option<Duration>,
    /// Maximum outer-loop iterations (checked by
    /// [`RunControl::check_iteration`]).
    pub max_iterations: Option<usize>,
    /// Maximum cost units (checked by [`RunControl::charge`]; loops
    /// charge units roughly proportional to floating-point work).
    pub max_cost: Option<u64>,
}

impl Budget {
    /// A budget with no limits at all.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Adds a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, wall: Duration) -> Self {
        self.wall = Some(wall);
        self
    }

    /// Adds an outer-iteration cap.
    #[must_use]
    pub fn with_iteration_cap(mut self, iterations: usize) -> Self {
        self.max_iterations = Some(iterations);
        self
    }

    /// Adds a cost-step quota.
    #[must_use]
    pub fn with_cost_cap(mut self, cost: u64) -> Self {
        self.max_cost = Some(cost);
        self
    }

    /// True when no limit is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.max_iterations.is_none() && self.max_cost.is_none()
    }
}

/// Default cost units between slow-path checks (cancellation, cost
/// quota, deadline clock read) in [`RunControl::charge`].
///
/// One unit ≈ one sample of floating-point work, so 1024 units keep the
/// `Instant::now()` syscall below ~0.1% of even the cheapest kernels
/// while bounding stop-detection latency to about a microsecond of
/// work on the serial paths (quadratic kernels like DTW charge `m²` per
/// pair and therefore hit the checks every pair).
pub const DEFAULT_CLOCK_STRIDE: u64 = 1024;

/// Telemetry counter name under which [`RunControl::report_cost`] emits
/// charged cost units.
pub const COST_COUNTER: &str = "tsrun.cost";

/// An armed [`Budget`] plus optional [`CancelToken`], shared by reference
/// into the loops it governs.
///
/// Thread-safe: counters are atomics, so the parallel dissimilarity-matrix
/// workers poll the same control. All orderings are relaxed — an extra
/// pair of work after a stop is benign and determinism of *successful*
/// results is never affected (controls only decide when to stop).
///
/// Poll points return `Result<(), StopReason>`; convert into the shared
/// error taxonomy with [`TsError::stopped`] (or [`RunControl::stop_error`])
/// so callers always receive a typed partial result.
#[derive(Debug)]
pub struct RunControl {
    started: Instant,
    deadline: Option<Instant>,
    max_iterations: Option<usize>,
    max_cost: Option<u64>,
    cancel: Option<CancelToken>,
    /// Total cost units charged so far.
    cost: AtomicU64,
    /// Cost level at which the next slow-path check (cancellation, cost
    /// quota, deadline clock read) happens. Starts at 0 so the very first
    /// charge always takes the slow path — a pre-cancelled token or an
    /// already-expired deadline is detected on the first poll, not after
    /// a full stride of work.
    next_check: AtomicU64,
    clock_stride: u64,
    /// Fast path: true when charge() can return immediately.
    passive: bool,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl::unlimited()
    }
}

impl RunControl {
    /// Arms a budget, starting its wall clock now.
    #[must_use]
    pub fn new(budget: Budget, cancel: Option<CancelToken>) -> Self {
        let started = Instant::now();
        let passive = budget.wall.is_none() && budget.max_cost.is_none() && cancel.is_none();
        RunControl {
            started,
            deadline: budget.wall.map(|w| started + w),
            max_iterations: budget.max_iterations,
            max_cost: budget.max_cost,
            cancel,
            cost: AtomicU64::new(0),
            next_check: AtomicU64::new(0),
            clock_stride: DEFAULT_CLOCK_STRIDE,
            passive,
        }
    }

    /// A control that never stops anything — the default threaded through
    /// every legacy entry point. Polls are a single branch.
    #[must_use]
    pub fn unlimited() -> Self {
        RunControl::new(Budget::unlimited(), None)
    }

    /// Arms a control from the optional budget/cancel fields of an
    /// options object (`None`/`None` yields [`RunControl::unlimited`]).
    ///
    /// This is the constructor behind every `*Options` entry point
    /// (`KShapeOptions`, `KMeansOptions`, ...): options carry
    /// `Option<Budget>` and `Option<CancelToken>` so the common
    /// "no limits" case costs nothing to spell.
    #[must_use]
    pub fn from_parts(budget: Option<Budget>, cancel: Option<CancelToken>) -> Self {
        RunControl::new(budget.unwrap_or_else(Budget::unlimited), cancel)
    }

    /// Reports the cost charged so far as one increment of the
    /// [`COST_COUNTER`] telemetry counter.
    ///
    /// Cost accounting stays in the relaxed atomic that [`RunControl::charge`]
    /// already maintains — the hot path is untouched — and algorithm
    /// cores call this once when a fit completes (or stops), so a JSONL
    /// run artifact shows where every cost unit went.
    pub fn report_cost(&self, obs: tsobs::Obs<'_>) {
        obs.counter(COST_COUNTER, self.cost_spent());
    }

    /// Overrides the cost stride between slow-path checks — cancellation,
    /// cost quota, and the deadline clock read (default
    /// [`DEFAULT_CLOCK_STRIDE`]). Smaller strides trade overhead for
    /// stop-detection latency; a stride of 1 checks on every charge.
    #[must_use]
    pub fn with_clock_stride(mut self, stride: u64) -> Self {
        self.clock_stride = stride.max(1);
        self
    }

    /// Total cost units charged so far.
    #[must_use]
    pub fn cost_spent(&self) -> u64 {
        self.cost.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the control was armed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Checks cancellation and the deadline without charging cost. Used
    /// before expensive indivisible steps (an eigendecomposition, a
    /// checkpoint write).
    ///
    /// # Errors
    ///
    /// The tripped [`StopReason`].
    #[inline]
    pub fn poll(&self) -> Result<(), StopReason> {
        if self.passive {
            return Ok(());
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(StopReason::Deadline);
            }
        }
        Ok(())
    }

    /// Outer-loop poll point: checks cancellation, the deadline, and the
    /// budget's iteration cap against `completed` finished iterations.
    ///
    /// # Errors
    ///
    /// The tripped [`StopReason`] (cancellation wins over deadline wins
    /// over the cap, so a cancelled run is always reported as cancelled).
    #[inline]
    pub fn check_iteration(&self, completed: usize) -> Result<(), StopReason> {
        self.poll()?;
        match self.max_iterations {
            Some(cap) if completed >= cap => Err(StopReason::IterationCap),
            _ => Ok(()),
        }
    }

    /// Inner-loop poll point: charges `units` of work, and once per
    /// [`RunControl::clock_stride`] cost units checks cancellation, the
    /// cost quota, and the deadline clock. Loops charge units roughly
    /// proportional to floating-point work (e.g. `m` per Euclidean pair,
    /// `m²` per unconstrained DTW pair) so the detection latency of every
    /// stop reason is bounded by work, not by call counts.
    ///
    /// The fast path is one relaxed `fetch_add` plus one relaxed load:
    /// cancellation/cost/deadline checks all live behind a single strided
    /// boundary. The boundary is clamped to the cost cap so a quota still
    /// trips on exactly the first charge that exceeds it; cancellation
    /// detection through `charge` is stride-bounded (use
    /// [`RunControl::poll`] or [`RunControl::check_iteration`] where
    /// immediate detection matters — both check the token on every call).
    ///
    /// # Errors
    ///
    /// The tripped [`StopReason`].
    #[inline]
    pub fn charge(&self, units: u64) -> Result<(), StopReason> {
        if self.passive && self.max_iterations.is_none() {
            return Ok(());
        }
        let total = self.cost.fetch_add(units, Ordering::Relaxed) + units;
        if total < self.next_check.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.charge_slow(total)
    }

    /// Slow path of [`RunControl::charge`]: runs at most once per stride
    /// window (plus races). Kept out of line so the fast path inlines to
    /// two atomic ops and a branch.
    #[cold]
    fn charge_slow(&self, total: u64) -> Result<(), StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
        }
        if let Some(cap) = self.max_cost {
            if total > cap {
                return Err(StopReason::CostCap);
            }
        }
        // Advance the boundary with a CAS: only one thread wins per
        // stride window, so the clock syscall stays rare even under
        // contention. The boundary never skips past `max_cost + 1` —
        // the quota check above must see the first over-cap charge.
        let next = self.next_check.load(Ordering::Relaxed);
        if total >= next {
            let mut boundary = total.saturating_add(self.clock_stride);
            if let Some(cap) = self.max_cost {
                boundary = boundary.min(cap.saturating_add(1));
            }
            if self
                .next_check
                .compare_exchange(next, boundary, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Err(StopReason::Deadline);
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the typed partial-result error for a tripped control.
    #[must_use]
    pub fn stop_error(labels: Vec<usize>, iterations: usize, reason: StopReason) -> TsError {
        TsError::stopped(labels, iterations, reason)
    }
}

/// Derives the seed for retry `attempt` from `base`: attempt 0 is the
/// base seed itself (so a retry-wrapped call is bit-identical to the
/// unwrapped call when the first attempt succeeds), later attempts are
/// drawn from a SplitMix64 stream over the base.
#[must_use]
pub fn derive_seed(base: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return base;
    }
    let mut sm = tsrand::SplitMix64::new(base ^ 0x9E37_79B9_7F4A_7C15);
    let mut seed = 0;
    for _ in 0..attempt {
        seed = sm.next_u64();
    }
    seed
}

/// One failed attempt inside [`retry_with_reseed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryFailure {
    /// Zero-based attempt index.
    pub attempt: u32,
    /// Seed the attempt ran with.
    pub seed: u64,
    /// The typed error it produced.
    pub error: TsError,
}

/// The full record of a [`retry_with_reseed`] run: final outcome plus
/// every attempt's error (kept even when the final outcome is `Ok`, so
/// flaky seeds are observable).
#[derive(Debug, Clone)]
pub struct RetryReport<T> {
    /// `Ok(value)` from the first successful attempt, or the error of the
    /// last attempt (which may be non-retryable).
    pub outcome: TsResult<T>,
    /// Attempts actually executed (1..=`max_attempts`).
    pub attempts: u32,
    /// Seed of the final attempt.
    pub seed_used: u64,
    /// Every failed attempt, in order.
    pub failures: Vec<RetryFailure>,
}

impl<T> RetryReport<T> {
    /// True when an attempt succeeded.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// The default retry predicate: numerical failures (degenerate
/// eigenproblems, zero denominators, empty-cluster collapse surfaced as
/// `NumericalFailure`) are worth a reseed; everything else — malformed
/// input, budget stops, plain non-convergence — is not.
#[must_use]
pub fn default_retryable(error: &TsError) -> bool {
    matches!(error, TsError::NumericalFailure { .. })
}

/// Re-runs a fallible seeded computation with derived seeds until it
/// succeeds, a non-retryable error appears, or `max_attempts` is
/// exhausted. Deterministic: the attempt-seed sequence is a pure function
/// of `base_seed` (see [`derive_seed`]).
///
/// `retryable` decides which errors earn another attempt
/// ([`default_retryable`] covers the common case); every failed attempt
/// is recorded in the returned [`RetryReport`].
pub fn retry_with_reseed<T, R, F>(
    base_seed: u64,
    max_attempts: u32,
    retryable: R,
    mut run: F,
) -> RetryReport<T>
where
    R: Fn(&TsError) -> bool,
    F: FnMut(u64) -> TsResult<T>,
{
    let max_attempts = max_attempts.max(1);
    let mut failures = Vec::new();
    let mut attempt = 0;
    loop {
        let seed = derive_seed(base_seed, attempt);
        match run(seed) {
            Ok(value) => {
                return RetryReport {
                    outcome: Ok(value),
                    attempts: attempt + 1,
                    seed_used: seed,
                    failures,
                };
            }
            Err(error) => {
                let stop = attempt + 1 >= max_attempts || !retryable(&error);
                failures.push(RetryFailure {
                    attempt,
                    seed,
                    error: error.clone(),
                });
                if stop {
                    return RetryReport {
                        outcome: Err(error),
                        attempts: attempt + 1,
                        seed_used: seed,
                        failures,
                    };
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{
        default_retryable, derive_seed, retry_with_reseed, Budget, CancelToken, RunControl,
        StopReason,
    };
    use std::time::Duration;
    use tserror::TsError;

    #[test]
    fn unlimited_control_never_stops() {
        let ctrl = RunControl::unlimited();
        for i in 0..10_000 {
            assert!(ctrl.check_iteration(i).is_ok());
            assert!(ctrl.charge(1 << 20).is_ok());
            assert!(ctrl.poll().is_ok());
        }
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        let ctrl = RunControl::new(Budget::unlimited(), Some(a));
        assert_eq!(ctrl.poll(), Err(StopReason::Cancelled));
        assert_eq!(ctrl.charge(1), Err(StopReason::Cancelled));
        assert_eq!(ctrl.check_iteration(0), Err(StopReason::Cancelled));
    }

    #[test]
    fn iteration_cap_trips_exactly_at_cap() {
        let ctrl = RunControl::new(Budget::unlimited().with_iteration_cap(3), None);
        assert!(ctrl.check_iteration(0).is_ok());
        assert!(ctrl.check_iteration(2).is_ok());
        assert_eq!(ctrl.check_iteration(3), Err(StopReason::IterationCap));
        // charge() is unaffected by the iteration cap.
        assert!(ctrl.charge(1_000_000).is_ok());
    }

    #[test]
    fn cost_cap_trips_after_quota() {
        let ctrl = RunControl::new(Budget::unlimited().with_cost_cap(100), None);
        assert!(ctrl.charge(60).is_ok());
        assert!(ctrl.charge(40).is_ok()); // exactly at the cap: still fine
        assert_eq!(ctrl.charge(1), Err(StopReason::CostCap));
        assert_eq!(ctrl.cost_spent(), 101);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let ctrl = RunControl::new(Budget::unlimited().with_deadline(Duration::ZERO), None)
            .with_clock_stride(1);
        assert_eq!(ctrl.poll(), Err(StopReason::Deadline));
        assert_eq!(ctrl.charge(1), Err(StopReason::Deadline));
    }

    #[test]
    fn deadline_detected_within_stride_under_spin() {
        let ctrl = RunControl::new(
            Budget::unlimited().with_deadline(Duration::from_millis(5)),
            None,
        );
        let start = std::time::Instant::now();
        let reason = loop {
            if let Err(r) = ctrl.charge(64) {
                break r;
            }
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never detected"
            );
        };
        assert_eq!(reason, StopReason::Deadline);
    }

    #[test]
    fn cancellation_beats_other_reasons() {
        let token = CancelToken::new();
        token.cancel();
        let ctrl = RunControl::new(
            Budget::unlimited()
                .with_deadline(Duration::ZERO)
                .with_iteration_cap(0)
                .with_cost_cap(0),
            Some(token),
        );
        assert_eq!(ctrl.check_iteration(99), Err(StopReason::Cancelled));
        assert_eq!(ctrl.charge(99), Err(StopReason::Cancelled));
    }

    #[test]
    fn control_is_shareable_across_threads() {
        let token = CancelToken::new();
        let ctrl = RunControl::new(Budget::unlimited(), Some(token.clone()));
        std::thread::scope(|scope| {
            let c = &ctrl;
            let worker = scope.spawn(move || {
                let mut stopped = false;
                for _ in 0..1_000_000 {
                    if c.charge(8).is_err() {
                        stopped = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                stopped
            });
            token.cancel();
            assert!(
                worker.join().expect("worker"),
                "worker never observed cancel"
            );
        });
    }

    #[test]
    fn midstream_cancel_is_detected_within_one_stride_of_charges() {
        let token = CancelToken::new();
        let ctrl = RunControl::new(Budget::unlimited(), Some(token.clone()));
        // First charge takes the slow path and arms the stride window.
        assert!(ctrl.charge(1).is_ok());
        token.cancel();
        // poll() sees the cancel immediately; charge() within one stride.
        assert_eq!(ctrl.poll(), Err(StopReason::Cancelled));
        let mut charges = 0u64;
        let detected = loop {
            charges += 1;
            if ctrl.charge(1).is_err() {
                break true;
            }
            if charges > super::DEFAULT_CLOCK_STRIDE + 1 {
                break false;
            }
        };
        assert!(detected, "cancel not seen within a stride of unit charges");
    }

    #[test]
    fn budget_builders_compose() {
        let b = Budget::unlimited()
            .with_deadline(Duration::from_secs(1))
            .with_iteration_cap(5)
            .with_cost_cap(10);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_iterations, Some(5));
        assert_eq!(b.max_cost, Some(10));
        assert!(Budget::unlimited().is_unlimited());
    }

    #[test]
    fn derive_seed_is_deterministic_and_attempt_zero_is_identity() {
        assert_eq!(derive_seed(42, 0), 42);
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        let seeds: Vec<u64> = (0..5).map(|a| derive_seed(7, a)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds collide: {seeds:?}");
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
    }

    #[test]
    fn retry_succeeds_on_later_attempt_and_records_failures() {
        let report = retry_with_reseed(11, 5, default_retryable, |seed| {
            if seed == derive_seed(11, 2) {
                Ok(seed)
            } else {
                Err(TsError::NumericalFailure {
                    context: format!("seed {seed} refused"),
                })
            }
        });
        assert!(report.succeeded());
        assert_eq!(report.attempts, 3);
        assert_eq!(report.seed_used, derive_seed(11, 2));
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].seed, 11);
        assert_eq!(report.failures[1].seed, derive_seed(11, 1));
    }

    #[test]
    fn retry_stops_on_non_retryable_error() {
        let mut calls = 0;
        let report: super::RetryReport<()> = retry_with_reseed(3, 10, default_retryable, |_seed| {
            calls += 1;
            Err(TsError::EmptyInput)
        });
        assert_eq!(calls, 1, "non-retryable error must not be retried");
        assert!(!report.succeeded());
        assert!(matches!(report.outcome, Err(TsError::EmptyInput)));
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn retry_exhausts_attempts_and_keeps_every_error() {
        let report: super::RetryReport<()> = retry_with_reseed(9, 4, default_retryable, |seed| {
            Err(TsError::NumericalFailure {
                context: format!("always fails (seed {seed})"),
            })
        });
        assert!(!report.succeeded());
        assert_eq!(report.attempts, 4);
        assert_eq!(report.failures.len(), 4);
        let seeds: Vec<u64> = report.failures.iter().map(|f| f.seed).collect();
        assert_eq!(seeds, (0..4).map(|a| derive_seed(9, a)).collect::<Vec<_>>());
    }

    #[test]
    fn retry_default_predicate_classification() {
        assert!(default_retryable(&TsError::NumericalFailure {
            context: "x".into()
        }));
        assert!(!default_retryable(&TsError::EmptyInput));
        assert!(!default_retryable(&TsError::NotConverged {
            labels: vec![],
            iterations: 1,
            shifted: 1
        }));
        assert!(!default_retryable(&TsError::stopped(
            vec![],
            0,
            StopReason::Deadline
        )));
    }

    #[test]
    fn max_attempts_zero_is_clamped_to_one() {
        let report = retry_with_reseed(1, 0, default_retryable, Ok::<u64, TsError>);
        assert!(report.succeeded());
        assert_eq!(report.attempts, 1);
    }
}
