//! Property-based tests for normalizations, distortions, reductions, and
//! features (tscheck harness).

use tscheck::Gen;
use tsdata::distort::{resample, shift_circular, shift_zero_pad, warp_local};
use tsdata::normalize::{
    mean, optimal_scaling_coefficient, std_dev, values_between_0_1, z_normalize,
};

fn signal(g: &mut Gen) -> Vec<f64> {
    g.vec_f64(2..64, -1000.0..1000.0)
}

tscheck::props! {
    #[cases(64)]
    fn z_normalize_zero_mean_unit_std_or_zero(g) {
        let sig = signal(g);
        let z = z_normalize(&sig);
        assert!(mean(&z).abs() < 1e-8);
        let s = std_dev(&z);
        // Either unit std or the degenerate all-zero output.
        assert!((s - 1.0).abs() < 1e-8 || z.iter().all(|&v| v == 0.0));
    }

    #[cases(64)]
    fn z_normalize_idempotent(g) {
        let sig = signal(g);
        let z1 = z_normalize(&sig);
        let z2 = z_normalize(&z1);
        for (a, b) in z1.iter().zip(z2.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[cases(64)]
    fn z_normalize_kills_affine(g) {
        let sig = signal(g);
        let a = g.f64_in(0.001..1000.0);
        let b = g.f64_in(-1e4..1e4);
        let t: Vec<f64> = sig.iter().map(|v| a * v + b).collect();
        let z1 = z_normalize(&sig);
        let z2 = z_normalize(&t);
        for (x, y) in z1.iter().zip(z2.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[cases(64)]
    fn unit_interval_bounds(g) {
        let sig = signal(g);
        for v in values_between_0_1(&sig) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[cases(64)]
    fn optimal_scaling_residual_is_minimal(g) {
        let sig = signal(g);
        let y: Vec<f64> = sig.iter().enumerate().map(|(i, v)| v * 0.5 + (i as f64).cos()).collect();
        tscheck::assume!(y.iter().any(|&v| v != 0.0));
        let c = optimal_scaling_coefficient(&sig, &y);
        let resid = |cc: f64| -> f64 {
            sig.iter().zip(y.iter()).map(|(a, b)| (a - cc * b).powi(2)).sum()
        };
        let base = resid(c);
        for eps in [-0.01, 0.01] {
            assert!(resid(c + eps) >= base - 1e-6);
        }
    }

    #[cases(64)]
    fn circular_shift_is_a_permutation(g) {
        let sig = signal(g);
        let s = g.isize_in(-100..100);
        let shifted = shift_circular(&sig, s);
        let mut a = sig.clone();
        let mut b = shifted.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[cases(64)]
    fn circular_shift_roundtrip(g) {
        let sig = signal(g);
        let s = g.isize_in(-100..100);
        let back = shift_circular(&shift_circular(&sig, s), -s);
        assert_eq!(back, sig);
    }

    #[cases(64)]
    fn zero_pad_shift_preserves_length_and_zeroes_pad(g) {
        let sig = signal(g);
        let s = g.isize_in(-100..100);
        let shifted = shift_zero_pad(&sig, s);
        assert_eq!(shifted.len(), sig.len());
        let m = sig.len() as isize;
        if s >= 0 {
            for v in &shifted[..(s.min(m)) as usize] {
                assert_eq!(*v, 0.0);
            }
        } else {
            let keep = (m + s.max(-m)) as usize;
            for v in &shifted[keep..] {
                assert_eq!(*v, 0.0);
            }
        }
    }

    #[cases(64)]
    fn resample_bounds_within_input_range(g) {
        let sig = signal(g);
        let new_len = g.usize_in(1..128);
        let out = resample(&sig, new_len);
        assert_eq!(out.len(), new_len);
        let lo = sig.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sig.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[cases(64)]
    fn warp_bounds_within_input_range(g) {
        let sig = signal(g);
        let amp = g.f64_in(0.0..5.0);
        let freq = g.f64_in(0.1..3.0);
        let out = warp_local(&sig, amp, freq);
        assert_eq!(out.len(), sig.len());
        let lo = sig.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sig.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[cases(48)]
    fn paa_preserves_mean_on_divisible_lengths(g) {
        // Build a series whose length is an exact multiple of `segments`.
        let base = g.vec_f64(1..16, -100.0..100.0);
        let reps = g.usize_in(1..8);
        let segments = base.len();
        let x: Vec<f64> = base
            .iter()
            .flat_map(|&v| std::iter::repeat_n(v, reps))
            .collect();
        let r = tsdata::reduce::paa(&x, segments);
        let mx: f64 = x.iter().sum::<f64>() / x.len() as f64;
        let mr: f64 = r.iter().sum::<f64>() / segments as f64;
        assert!((mx - mr).abs() < 1e-9 * (1.0 + mx.abs()));
    }

    #[cases(48)]
    fn haar_roundtrip_and_energy(g) {
        let sig = g.vec_f64(1..64, -100.0..100.0);
        let n = sig.len().next_power_of_two();
        let mut x = sig.clone();
        x.resize(n, 0.0);
        let c = tsdata::reduce::haar_transform(&x);
        // Orthonormal: energy preserved.
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-6 * (1.0 + ex));
        // Exact inverse.
        let back = tsdata::reduce::haar_inverse(&c);
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[cases(48)]
    fn feature_vector_is_finite_and_fixed_size(g) {
        let sig = g.vec_f64(3..128, -1000.0..1000.0);
        let f = tsdata::features::feature_vector(&sig);
        assert_eq!(f.len(), tsdata::features::FEATURE_NAMES.len());
        for v in &f {
            assert!(v.is_finite());
        }
    }

    #[cases(48)]
    fn autocorrelation_bounded(g) {
        let sig = g.vec_f64(2..64, -100.0..100.0);
        let lag = g.usize_in(0..16);
        let r = tsdata::features::autocorrelation(&sig, lag);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{r}");
    }

    #[cases(48)]
    fn ar_coefficients_are_finite(g) {
        let sig = g.vec_f64(4..64, -100.0..100.0);
        let order = g.usize_in(1..6);
        let phi = tsdata::features::ar_coefficients(&sig, order);
        assert_eq!(phi.len(), order);
        for v in &phi {
            assert!(v.is_finite());
        }
    }
}

#[test]
fn ucr_roundtrip_property() {
    // A deterministic fuzz of the UCR serializer/parser pair.
    use tsrand::{Rng, StdRng};
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..20 {
        let n = 1 + trial % 7;
        let m = 1 + trial % 11;
        let series: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let d = tsdata::Dataset::new(format!("t{trial}"), series, labels);
        let back = tsdata::ucr::parse(&d.name, &tsdata::ucr::serialize(&d)).unwrap();
        assert_eq!(back.labels, d.labels);
        for (a, b) in back.series.iter().zip(d.series.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
