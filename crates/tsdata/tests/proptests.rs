//! Property-based tests for normalizations and distortions.

use proptest::prelude::*;
use tsdata::distort::{resample, shift_circular, shift_zero_pad, warp_local};
use tsdata::normalize::{
    mean, optimal_scaling_coefficient, std_dev, values_between_0_1, z_normalize,
};

fn signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 2..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn z_normalize_zero_mean_unit_std_or_zero(sig in signal()) {
        let z = z_normalize(&sig);
        prop_assert!(mean(&z).abs() < 1e-8);
        let s = std_dev(&z);
        // Either unit std or the degenerate all-zero output.
        prop_assert!((s - 1.0).abs() < 1e-8 || z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn z_normalize_idempotent(sig in signal()) {
        let z1 = z_normalize(&sig);
        let z2 = z_normalize(&z1);
        for (a, b) in z1.iter().zip(z2.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn z_normalize_kills_affine(sig in signal(), a in 0.001f64..1000.0, b in -1e4f64..1e4) {
        let t: Vec<f64> = sig.iter().map(|v| a * v + b).collect();
        let z1 = z_normalize(&sig);
        let z2 = z_normalize(&t);
        for (x, y) in z1.iter().zip(z2.iter()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn unit_interval_bounds(sig in signal()) {
        for v in values_between_0_1(&sig) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn optimal_scaling_residual_is_minimal(sig in signal()) {
        let y: Vec<f64> = sig.iter().enumerate().map(|(i, v)| v * 0.5 + (i as f64).cos()).collect();
        prop_assume!(y.iter().any(|&v| v != 0.0));
        let c = optimal_scaling_coefficient(&sig, &y);
        let resid = |cc: f64| -> f64 {
            sig.iter().zip(y.iter()).map(|(a, b)| (a - cc * b).powi(2)).sum()
        };
        let base = resid(c);
        for eps in [-0.01, 0.01] {
            prop_assert!(resid(c + eps) >= base - 1e-6);
        }
    }

    #[test]
    fn circular_shift_is_a_permutation(sig in signal(), s in -100isize..100) {
        let shifted = shift_circular(&sig, s);
        let mut a = sig.clone();
        let mut b = shifted.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn circular_shift_roundtrip(sig in signal(), s in -100isize..100) {
        let back = shift_circular(&shift_circular(&sig, s), -s);
        prop_assert_eq!(back, sig);
    }

    #[test]
    fn zero_pad_shift_preserves_length_and_zeroes_pad(sig in signal(), s in -100isize..100) {
        let shifted = shift_zero_pad(&sig, s);
        prop_assert_eq!(shifted.len(), sig.len());
        let m = sig.len() as isize;
        if s >= 0 {
            for v in &shifted[..(s.min(m)) as usize] {
                prop_assert_eq!(*v, 0.0);
            }
        } else {
            let keep = (m + s.max(-m)) as usize;
            for v in &shifted[keep..] {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn resample_bounds_within_input_range(sig in signal(), new_len in 1usize..128) {
        let out = resample(&sig, new_len);
        prop_assert_eq!(out.len(), new_len);
        let lo = sig.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sig.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn warp_bounds_within_input_range(sig in signal(), amp in 0.0f64..5.0, freq in 0.1f64..3.0) {
        let out = warp_local(&sig, amp, freq);
        prop_assert_eq!(out.len(), sig.len());
        let lo = sig.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sig.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paa_preserves_mean_on_divisible_lengths(
        base in prop::collection::vec(-100.0f64..100.0, 1..16),
        reps in 1usize..8,
    ) {
        // Build a series whose length is an exact multiple of `segments`.
        let segments = base.len();
        let x: Vec<f64> = base
            .iter()
            .flat_map(|&v| std::iter::repeat_n(v, reps))
            .collect();
        let r = tsdata::reduce::paa(&x, segments);
        let mx: f64 = x.iter().sum::<f64>() / x.len() as f64;
        let mr: f64 = r.iter().sum::<f64>() / segments as f64;
        prop_assert!((mx - mr).abs() < 1e-9 * (1.0 + mx.abs()));
    }

    #[test]
    fn haar_roundtrip_and_energy(
        sig in prop::collection::vec(-100.0f64..100.0, 1..64),
    ) {
        let n = sig.len().next_power_of_two();
        let mut x = sig.clone();
        x.resize(n, 0.0);
        let c = tsdata::reduce::haar_transform(&x);
        // Orthonormal: energy preserved.
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        prop_assert!((ex - ec).abs() < 1e-6 * (1.0 + ex));
        // Exact inverse.
        let back = tsdata::reduce::haar_inverse(&c);
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn feature_vector_is_finite_and_fixed_size(
        sig in prop::collection::vec(-1000.0f64..1000.0, 3..128),
    ) {
        let f = tsdata::features::feature_vector(&sig);
        prop_assert_eq!(f.len(), tsdata::features::FEATURE_NAMES.len());
        for v in &f {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn autocorrelation_bounded(
        sig in prop::collection::vec(-100.0f64..100.0, 2..64),
        lag in 0usize..16,
    ) {
        let r = tsdata::features::autocorrelation(&sig, lag);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{r}");
    }

    #[test]
    fn ar_coefficients_are_finite(
        sig in prop::collection::vec(-100.0f64..100.0, 4..64),
        order in 1usize..6,
    ) {
        let phi = tsdata::features::ar_coefficients(&sig, order);
        prop_assert_eq!(phi.len(), order);
        for v in &phi {
            prop_assert!(v.is_finite());
        }
    }
}

#[test]
fn ucr_roundtrip_property() {
    // A deterministic fuzz of the UCR serializer/parser pair.
    let mut state = 1u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    for trial in 0..20 {
        let n = 1 + trial % 7;
        let m = 1 + trial % 11;
        let series: Vec<Vec<f64>> = (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let d = tsdata::Dataset::new(format!("t{trial}"), series, labels);
        let back = tsdata::ucr::parse(&d.name, &tsdata::ucr::serialize(&d)).unwrap();
        assert_eq!(back.labels, d.labels);
        for (a, b) in back.series.iter().zip(d.series.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
