//! Dataset containers.
//!
//! A [`Dataset`] is a set of equal-length, class-labeled time series — the
//! unit of evaluation in the paper. A [`SplitDataset`] carries the
//! train/test split used for 1-NN distance-measure evaluation (Table 2);
//! clustering experiments fuse the two halves, as the paper does.

use crate::normalize::{try_z_normalize_series, z_normalize_in_place};
use crate::store::{ElemType, SeriesStore};
use tserror::{TsError, TsResult};

/// Tally of per-series outcomes from [`Dataset::try_z_normalize`], so
/// loaders can surface how many series in a dataset were degenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NormalizeReport {
    /// Series that z-normalized cleanly.
    pub normalized: usize,
    /// Constant (zero-variance) series, zero-filled instead of normalized.
    pub constant: usize,
}

impl NormalizeReport {
    /// Merges another report into this one (used to combine train/test
    /// halves).
    pub fn absorb(&mut self, other: NormalizeReport) {
        self.normalized += other.normalized;
        self.constant += other.constant;
    }
}

/// A set of equal-length, labeled time series.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"cbf-03"`).
    pub name: String,
    /// The series, each of length `self.len()`.
    pub series: Vec<Vec<f64>>,
    /// Class label per series, in `0..self.n_classes()`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset, validating shape invariants.
    ///
    /// # Panics
    ///
    /// Panics if `series` and `labels` disagree in length or the series are
    /// not all the same length.
    #[must_use]
    pub fn new(name: impl Into<String>, series: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(series.len(), labels.len(), "one label per series required");
        if let Some(first) = series.first() {
            let m = first.len();
            assert!(
                series.iter().all(|s| s.len() == m),
                "all series must have equal length"
            );
        }
        Dataset {
            name: name.into(),
            series,
            labels,
        }
    }

    /// Number of series.
    #[inline]
    #[must_use]
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    /// Length of each series (0 for an empty dataset).
    #[inline]
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series.first().map_or(0, Vec::len)
    }

    /// Number of distinct classes (`max label + 1`).
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Returns true if the dataset has no series.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// z-normalizes every series in place (zero mean, unit variance).
    ///
    /// The paper z-normalizes all datasets before any experiment.
    pub fn z_normalize(&mut self) {
        for s in &mut self.series {
            z_normalize_in_place(s);
        }
    }

    /// z-normalizes every series while *accounting for* degenerate ones.
    ///
    /// Constant (zero-variance) series have no well-defined z-score; they
    /// are zero-filled — exactly what [`Dataset::z_normalize`] does — but
    /// the count is surfaced in the returned [`NormalizeReport`] so data
    /// loaders can warn about corrupt or flatlined series instead of
    /// silently absorbing them.
    ///
    /// # Errors
    ///
    /// [`TsError::NonFinite`] naming the first series containing a
    /// NaN/infinite sample. The dataset may be partially normalized when
    /// an error is returned.
    pub fn try_z_normalize(&mut self) -> TsResult<NormalizeReport> {
        let mut report = NormalizeReport::default();
        if self.series_len() == 0 {
            return Ok(report);
        }
        for (i, s) in self.series.iter_mut().enumerate() {
            match try_z_normalize_series(s, i) {
                Ok(z) => {
                    *s = z;
                    report.normalized += 1;
                }
                Err(TsError::ConstantSeries { .. }) => {
                    for v in s.iter_mut() {
                        *v = 0.0;
                    }
                    report.constant += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Returns the indices of the series in class `label`.
    #[must_use]
    pub fn class_indices(&self, label: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == label).then_some(i))
            .collect()
    }

    /// Appends all series of `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the series lengths differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(
                self.series_len(),
                other.series_len(),
                "cannot fuse datasets with different series lengths"
            );
        }
        self.series.extend(other.series.iter().cloned());
        self.labels.extend_from_slice(&other.labels);
    }

    /// Converts the series into a contiguous [`SeriesStore`]
    /// (labels stay on the dataset; stores are label-free).
    ///
    /// Lossless for [`ElemType::F64`] — [`Dataset::from_store`] round-trips
    /// bit-identically. [`ElemType::F32`] narrows samples to single
    /// precision (see `ElemType` docs for when that is safe).
    ///
    /// # Errors
    ///
    /// [`TsError::EmptyInput`] for an empty dataset, plus everything
    /// [`SeriesStore::push_row`] reports (ragged or non-finite rows).
    pub fn to_store(&self, elem: ElemType) -> TsResult<SeriesStore> {
        SeriesStore::from_rows(&self.series, elem)
    }

    /// Rebuilds a dataset from a [`SeriesStore`] and its labels — the
    /// inverse of [`Dataset::to_store`] (bit-identical for `f64` stores).
    ///
    /// # Errors
    ///
    /// [`TsError::LengthMismatch`] if `labels.len() != store.n_series()`
    /// (reported with `series = labels.len()`), or
    /// [`TsError::CorruptData`] from a spilled store whose segments fail
    /// validation.
    pub fn from_store(
        name: impl Into<String>,
        store: &SeriesStore,
        labels: Vec<usize>,
    ) -> TsResult<Dataset> {
        if labels.len() != store.n_series() {
            return Err(TsError::LengthMismatch {
                expected: store.n_series(),
                found: labels.len(),
                series: labels.len(),
            });
        }
        Ok(Dataset::new(name, store.to_rows()?, labels))
    }
}

/// A dataset with a train/test split, mirroring the UCR archive layout.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training half (used for 1-NN references and cDTW window tuning).
    pub train: Dataset,
    /// Test half (used for 1-NN accuracy).
    pub test: Dataset,
}

impl SplitDataset {
    /// Shared dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.train.name
    }

    /// Fuses train and test into one dataset, as the paper does for
    /// clustering experiments ("over the fused training and test sets").
    #[must_use]
    pub fn fused(&self) -> Dataset {
        let mut d = self.train.clone();
        d.extend_from(&self.test);
        d
    }

    /// Number of classes across both halves.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.train.n_classes().max(self.test.n_classes())
    }

    /// z-normalizes both halves in place.
    pub fn z_normalize(&mut self) {
        self.train.z_normalize();
        self.test.z_normalize();
    }

    /// Checked z-normalization of both halves, combining their
    /// [`NormalizeReport`]s.
    ///
    /// # Errors
    ///
    /// [`TsError::NonFinite`] from whichever half first contains a
    /// NaN/infinite sample (train is processed first).
    pub fn try_z_normalize(&mut self) -> TsResult<NormalizeReport> {
        let mut report = self.train.try_z_normalize()?;
        report.absorb(self.test.try_z_normalize()?);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::{Dataset, NormalizeReport, SplitDataset};
    use tserror::TsError;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                vec![1.0, 2.0, 3.0],
                vec![2.0, 4.0, 6.0],
                vec![0.0, 0.0, 1.0],
            ],
            vec![0, 0, 1],
        )
    }

    #[test]
    fn basic_shape_accessors() {
        let d = toy();
        assert_eq!(d.n_series(), 3);
        assert_eq!(d.series_len(), 3);
        assert_eq!(d.n_classes(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new("empty", vec![], vec![]);
        assert!(d.is_empty());
        assert_eq!(d.series_len(), 0);
        assert_eq!(d.n_classes(), 0);
    }

    #[test]
    #[should_panic(expected = "one label per series")]
    fn rejects_label_mismatch() {
        let _ = Dataset::new("bad", vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_series() {
        let _ = Dataset::new("bad", vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn class_indices() {
        let d = toy();
        assert_eq!(d.class_indices(0), vec![0, 1]);
        assert_eq!(d.class_indices(1), vec![2]);
        assert!(d.class_indices(2).is_empty());
    }

    #[test]
    fn z_normalize_gives_zero_mean_unit_std() {
        let mut d = toy();
        d.z_normalize();
        for s in &d.series {
            let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn checked_normalization_counts_constant_series() {
        let mut d = Dataset::new(
            "mixed",
            vec![
                vec![1.0, 2.0, 3.0],
                vec![5.0, 5.0, 5.0], // flatlined sensor
                vec![0.0, 1.0, 0.0],
            ],
            vec![0, 0, 1],
        );
        let mut plain = d.clone();
        plain.z_normalize();
        let report = d.try_z_normalize().unwrap();
        assert_eq!(
            report,
            NormalizeReport {
                normalized: 2,
                constant: 1
            }
        );
        // Checked and unchecked normalization agree series-for-series.
        for (a, b) in d.series.iter().zip(plain.series.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn checked_normalization_rejects_nan_with_series_index() {
        let mut d = Dataset::new("bad", vec![vec![1.0, 2.0], vec![f64::NAN, 0.0]], vec![0, 1]);
        assert_eq!(
            d.try_z_normalize(),
            Err(TsError::NonFinite {
                series: 1,
                index: 0
            })
        );
    }

    #[test]
    fn checked_normalization_on_split_merges_reports() {
        let mut split = SplitDataset {
            train: Dataset::new("s", vec![vec![1.0, 2.0], vec![3.0, 3.0]], vec![0, 1]),
            test: Dataset::new("s", vec![vec![4.0, 4.0]], vec![0]),
        };
        let report = split.try_z_normalize().unwrap();
        assert_eq!(
            report,
            NormalizeReport {
                normalized: 1,
                constant: 2
            }
        );
    }

    #[test]
    fn fused_split_concatenates() {
        let split = SplitDataset {
            train: toy(),
            test: Dataset::new("toy", vec![vec![5.0, 5.0, 5.0]], vec![1]),
        };
        let fused = split.fused();
        assert_eq!(fused.n_series(), 4);
        assert_eq!(fused.labels, vec![0, 0, 1, 1]);
        assert_eq!(split.n_classes(), 2);
        assert_eq!(split.name(), "toy");
    }

    #[test]
    #[should_panic(expected = "different series lengths")]
    fn extend_rejects_length_mismatch() {
        let mut d = toy();
        let other = Dataset::new("other", vec![vec![1.0, 2.0]], vec![0]);
        d.extend_from(&other);
    }
}
