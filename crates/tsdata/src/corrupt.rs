//! Fault injection for robustness testing (the chaos suite).
//!
//! Real deployments feed clustering pipelines data that the UCR archive
//! never shows: sensors drop out (NaN runs), loggers skip samples
//! (missing-value gaps), transducers stick (flatline segments), amplifiers
//! glitch (amplitude spikes), and transfers truncate (short series). This
//! module injects those faults *deterministically* — every operator draws
//! from a caller-supplied [`tsrand::Rng`] — so the chaos suite
//! (`tests/chaos.rs`) can replay any failing corruption by seed.
//!
//! Faults split into two families the fallible APIs must treat
//! differently:
//!
//! * **Invalidating** faults ([`FaultKind::NanRun`],
//!   [`FaultKind::MissingGap`], [`FaultKind::Truncate`]) make the input
//!   violate an API contract (finite values, equal lengths). Every `try_*`
//!   entry point must return a *typed error* — never panic, never emit
//!   NaN.
//! * **Degrading** faults ([`FaultKind::Flatline`], [`FaultKind::Spike`])
//!   keep the input contract-valid but degenerate. Every `try_*` entry
//!   point must return `Ok` with *finite* outputs.

use tsrand::Rng;

/// The fault taxonomy injected by [`corrupt_series`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A contiguous run of NaN samples (sensor dropout).
    NanRun,
    /// Scattered individual NaN samples (missing values).
    MissingGap,
    /// A segment held at a constant value (stuck transducer).
    Flatline,
    /// A single sample multiplied into an extreme — but finite — spike.
    Spike,
    /// The series is cut short (partial transfer / length mismatch).
    Truncate,
}

impl FaultKind {
    /// All fault kinds, for exhaustive sweeps.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::NanRun,
        FaultKind::MissingGap,
        FaultKind::Flatline,
        FaultKind::Spike,
        FaultKind::Truncate,
    ];

    /// Whether the fault breaks an input contract (non-finite values or
    /// shortened length), so fallible APIs must answer with a typed error.
    /// The complement — a *degrading* fault — leaves the input finite and
    /// full-length, so fallible APIs must succeed with finite outputs.
    #[must_use]
    pub fn invalidates(self) -> bool {
        matches!(
            self,
            FaultKind::NanRun | FaultKind::MissingGap | FaultKind::Truncate
        )
    }
}

/// Injects a contiguous NaN run of 1..=`max_len` samples at a random
/// offset. No-op on an empty series.
pub fn nan_run<R: Rng>(x: &mut [f64], max_len: usize, rng: &mut R) {
    let m = x.len();
    if m == 0 {
        return;
    }
    let len = rng.gen_range(1..=max_len.clamp(1, m));
    let start = rng.gen_range(0..=m - len);
    for v in &mut x[start..start + len] {
        *v = f64::NAN;
    }
}

/// Replaces `count` samples at random positions with NaN (missing
/// values). Positions may repeat; at least one sample is hit when the
/// series is non-empty.
pub fn missing_gap<R: Rng>(x: &mut [f64], count: usize, rng: &mut R) {
    let m = x.len();
    if m == 0 {
        return;
    }
    for _ in 0..count.max(1) {
        let i = rng.gen_range(0..m);
        x[i] = f64::NAN;
    }
}

/// Holds a random segment of 2..=`max_len` samples at the segment's first
/// value (stuck sensor). No-op on series shorter than 2.
pub fn flatline<R: Rng>(x: &mut [f64], max_len: usize, rng: &mut R) {
    let m = x.len();
    if m < 2 {
        return;
    }
    let len = rng.gen_range(2..=max_len.clamp(2, m));
    let start = rng.gen_range(0..=m - len);
    let held = x[start];
    for v in &mut x[start..start + len] {
        *v = held;
    }
}

/// Multiplies one random sample by a large finite factor in
/// `[magnitude, 2·magnitude)`, with random sign — an amplitude glitch.
/// Injects an additive spike when the chosen sample is (near) zero so the
/// fault is never a silent no-op.
pub fn spike<R: Rng>(x: &mut [f64], magnitude: f64, rng: &mut R) {
    let m = x.len();
    if m == 0 {
        return;
    }
    let i = rng.gen_range(0..m);
    let factor = rng.gen_range(magnitude..magnitude * 2.0);
    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    if x[i].abs() > 1e-9 {
        x[i] *= sign * factor;
    } else {
        x[i] = sign * factor;
    }
}

/// Truncates the series to a random strictly shorter length (at least 1
/// sample survives). No-op on series shorter than 2.
pub fn truncate<R: Rng>(x: &mut Vec<f64>, rng: &mut R) {
    let m = x.len();
    if m < 2 {
        return;
    }
    let new_len = rng.gen_range(1..m);
    x.truncate(new_len);
}

/// Applies one fault of the given kind to `x` with default severities.
pub fn corrupt_series<R: Rng>(x: &mut Vec<f64>, kind: FaultKind, rng: &mut R) {
    let m = x.len();
    match kind {
        FaultKind::NanRun => nan_run(x, (m / 4).max(1), rng),
        FaultKind::MissingGap => missing_gap(x, (m / 8).max(1), rng),
        FaultKind::Flatline => flatline(x, (m / 2).max(2), rng),
        FaultKind::Spike => spike(x, 1e6, rng),
        FaultKind::Truncate => truncate(x, rng),
    }
}

/// The byte-stream fault taxonomy injected by [`corrupt_bytes`].
///
/// Where [`FaultKind`] corrupts *decoded samples*, these corrupt the
/// *bytes in flight or at rest* — the faults a serialized checkpoint or
/// an HTTP request body actually suffers. Shared by the checkpoint chaos
/// tests (kill mid-write) and the socket chaos tests (`tsserve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteFault {
    /// Keep a strictly shorter prefix — a `kill -9` mid-`write(2)` on a
    /// non-atomic writer, or a connection dropped mid-body.
    Truncate,
    /// Flip a handful of random bits in place — disk rot, a faulty NIC,
    /// a bad cable. Length is preserved; content is subtly wrong.
    BitFlip,
    /// Prepend random garbage bytes — protocol desync, a stale buffer
    /// replayed, a client speaking the wrong protocol.
    GarbagePrefix,
    /// The bytes themselves are untouched; instead a split point is
    /// reported where a slow-loris writer stalls mid-stream. Drivers
    /// send `bytes[..stall_at]`, hold the connection open, and (maybe)
    /// never send the rest.
    MidStreamStall,
}

impl ByteFault {
    /// All byte faults, for exhaustive sweeps.
    pub const ALL: [ByteFault; 4] = [
        ByteFault::Truncate,
        ByteFault::BitFlip,
        ByteFault::GarbagePrefix,
        ByteFault::MidStreamStall,
    ];
}

/// What [`corrupt_bytes`] actually did, so tests can assert the fault
/// landed and drivers know where to stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteFaultReport {
    /// The fault applied.
    pub kind: ByteFault,
    /// Bytes removed ([`ByteFault::Truncate`]), bits flipped
    /// ([`ByteFault::BitFlip`]), or bytes prepended
    /// ([`ByteFault::GarbagePrefix`]). 0 for stalls and no-ops.
    pub affected: usize,
    /// For [`ByteFault::MidStreamStall`]: the split point (strictly
    /// inside the stream) after which the writer stalls.
    pub stall_at: Option<usize>,
}

/// Injects one byte-stream fault into `bytes` (see [`ByteFault`]).
/// Deterministic via the caller's RNG, like every operator in this
/// module. Inputs shorter than 2 bytes are left alone (an empty report
/// with `affected == 0`).
pub fn corrupt_bytes<R: Rng>(bytes: &mut Vec<u8>, kind: ByteFault, rng: &mut R) -> ByteFaultReport {
    let n = bytes.len();
    let mut report = ByteFaultReport {
        kind,
        affected: 0,
        stall_at: None,
    };
    if n < 2 {
        return report;
    }
    match kind {
        ByteFault::Truncate => {
            let keep = rng.gen_range(1..n);
            bytes.truncate(keep);
            report.affected = n - keep;
        }
        ByteFault::BitFlip => {
            let flips = rng.gen_range(1..=8usize.min(n));
            for _ in 0..flips {
                let i = rng.gen_range(0..n);
                let bit = rng.gen_range(0..8u32);
                bytes[i] ^= 1 << bit;
            }
            report.affected = flips;
        }
        ByteFault::GarbagePrefix => {
            let len = rng.gen_range(1..=16usize);
            let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            bytes.splice(0..0, garbage);
            report.affected = len;
        }
        ByteFault::MidStreamStall => {
            report.stall_at = Some(rng.gen_range(1..n));
        }
    }
    report
}

/// Byte-level truncation of a serialized checkpoint (or any on-disk
/// artifact): keeps a strictly shorter *prefix* of the bytes, exactly what
/// a `kill -9` mid-`write(2)` leaves behind when the writer is not atomic.
///
/// The cut point is drawn uniformly from `1..len`, so the survivor is a
/// valid UTF-8-prefix of valid JSON often enough to stress the parser's
/// truncation detection (a cut can land mid-number, mid-string, or right
/// before the closing brace). Returns the number of bytes removed; inputs
/// shorter than 2 bytes are left alone (0 removed).
///
/// Used by the resume tests: a quarantining loader must classify every
/// possible prefix as corrupt — never as a shorter-but-valid cell. This is
/// [`corrupt_bytes`] with [`ByteFault::Truncate`], kept as a named entry
/// point because "what a kill leaves behind" is the fault the checkpoint
/// tests care about.
pub fn truncate_checkpoint<R: Rng>(bytes: &mut Vec<u8>, rng: &mut R) -> usize {
    corrupt_bytes(bytes, ByteFault::Truncate, rng).affected
}

/// Corrupts a random subset of a series collection in place: each series
/// is hit with probability `p`, drawing its fault uniformly from `kinds`.
///
/// Returns the indices of the corrupted series (possibly empty), so tests
/// can assert errors point at actually-corrupted inputs.
pub fn corrupt_collection<R: Rng>(
    series: &mut [Vec<f64>],
    kinds: &[FaultKind],
    p: f64,
    rng: &mut R,
) -> Vec<usize> {
    let mut hit = Vec::new();
    if kinds.is_empty() {
        return hit;
    }
    for (i, s) in series.iter_mut().enumerate() {
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            corrupt_series(s, kind, rng);
            hit.push(i);
        }
    }
    hit
}

/// A fault that can hit one arrival of a *stream* of series: either a
/// sample-level corruption ([`FaultKind`]) of the decoded values, or a
/// byte-level corruption ([`ByteFault`]) of the series' wire
/// representation (little-endian `f64`s), decoded back into samples.
///
/// This is the composition the streaming chaos suite sweeps: every way a
/// live feed can poison an arrival, expressed as one enum so a single
/// property can assert the engine's quarantine contract over all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFault {
    /// Corrupt the decoded samples (see [`FaultKind`]).
    Series(FaultKind),
    /// Corrupt the little-endian `f64` byte stream carrying the series,
    /// then re-decode. A [`ByteFault::MidStreamStall`] delivers only the
    /// prefix before the stall point (the rest never arrives); a trailing
    /// partial `f64` is dropped, as a framed reader would drop it.
    Bytes(ByteFault),
}

impl StreamFault {
    /// All stream faults, for exhaustive sweeps.
    pub const ALL: [StreamFault; 9] = [
        StreamFault::Series(FaultKind::NanRun),
        StreamFault::Series(FaultKind::MissingGap),
        StreamFault::Series(FaultKind::Flatline),
        StreamFault::Series(FaultKind::Spike),
        StreamFault::Series(FaultKind::Truncate),
        StreamFault::Bytes(ByteFault::Truncate),
        StreamFault::Bytes(ByteFault::BitFlip),
        StreamFault::Bytes(ByteFault::GarbagePrefix),
        StreamFault::Bytes(ByteFault::MidStreamStall),
    ];

    /// Whether this fault *can only* produce a contract-violating arrival
    /// (shortened / lengthened series or non-finite samples), so a
    /// streaming consumer must answer with a typed quarantine.
    ///
    /// [`ByteFault::BitFlip`] is deliberately *not* in this set: a bit
    /// flip may land in a mantissa and yield a finite, full-length —
    /// merely wrong — series that a robust consumer must still accept.
    /// Neither is [`ByteFault::GarbagePrefix`]: a prepend that is not a
    /// multiple of 8 re-frames the stream at the same decoded length
    /// with garbled but possibly finite samples. Byte truncation and a
    /// mid-stream stall always shorten the decoded series.
    #[must_use]
    pub fn invalidates(self) -> bool {
        match self {
            StreamFault::Series(kind) => kind.invalidates(),
            StreamFault::Bytes(ByteFault::Truncate | ByteFault::MidStreamStall) => true,
            StreamFault::Bytes(_) => false,
        }
    }
}

/// Applies one [`StreamFault`] to a single arrival in place.
///
/// Byte faults round-trip the samples through their little-endian `f64`
/// encoding: corrupt the bytes, drop any trailing partial chunk (and, for
/// [`ByteFault::MidStreamStall`], everything after the stall point —
/// that is what a framed reader ever sees of a stalled sender), decode
/// back. Deterministic via the caller's RNG.
pub fn corrupt_stream_series<R: Rng>(x: &mut Vec<f64>, fault: StreamFault, rng: &mut R) {
    match fault {
        StreamFault::Series(kind) => corrupt_series(x, kind, rng),
        StreamFault::Bytes(kind) => {
            let mut bytes: Vec<u8> = x.iter().flat_map(|v| v.to_le_bytes()).collect();
            let report = corrupt_bytes(&mut bytes, kind, rng);
            if let Some(at) = report.stall_at {
                bytes.truncate(at);
            }
            x.clear();
            x.extend(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
            );
        }
    }
}

/// A corruption schedule over a stream: each arrival is hit with
/// probability `p`, drawing its fault uniformly from `faults`.
#[derive(Debug, Clone)]
pub struct StreamFaultSchedule {
    /// Faults to draw from (uniformly). Empty disables corruption.
    pub faults: Vec<StreamFault>,
    /// Per-arrival corruption probability, clamped to `[0, 1]`.
    pub p: f64,
}

impl StreamFaultSchedule {
    /// A schedule over the given faults.
    #[must_use]
    pub fn new(faults: Vec<StreamFault>, p: f64) -> Self {
        StreamFaultSchedule { faults, p }
    }

    /// A schedule over every fault kind ([`StreamFault::ALL`]).
    #[must_use]
    pub fn all(p: f64) -> Self {
        StreamFaultSchedule::new(StreamFault::ALL.to_vec(), p)
    }

    /// Maybe corrupts one arrival in place, returning the fault applied
    /// (`None` when this arrival was left clean).
    pub fn apply<R: Rng>(&self, x: &mut Vec<f64>, rng: &mut R) -> Option<StreamFault> {
        if self.faults.is_empty() || !rng.gen_bool(self.p.clamp(0.0, 1.0)) {
            return None;
        }
        let fault = self.faults[rng.gen_range(0..self.faults.len())];
        corrupt_stream_series(x, fault, rng);
        Some(fault)
    }
}

/// Iterator adapter applying a [`StreamFaultSchedule`] to a feed of
/// series — the composition helper behind the streaming chaos props.
///
/// Yields `(series, Option<StreamFault>)` so the harness knows exactly
/// which arrivals were hit and with what, and can hold the consumer to
/// the right contract per arrival (typed quarantine for invalid input,
/// finite acceptance for degraded-but-valid input).
#[derive(Debug)]
pub struct CorruptFeed<I, R> {
    inner: I,
    schedule: StreamFaultSchedule,
    rng: R,
}

impl<I, R> Iterator for CorruptFeed<I, R>
where
    I: Iterator<Item = Vec<f64>>,
    R: Rng,
{
    type Item = (Vec<f64>, Option<StreamFault>);

    fn next(&mut self) -> Option<Self::Item> {
        let mut series = self.inner.next()?;
        let fault = self.schedule.apply(&mut series, &mut self.rng);
        Some((series, fault))
    }
}

/// Wraps a feed of series with a deterministic corruption schedule (see
/// [`CorruptFeed`]).
pub fn corrupt_feed<I, R>(inner: I, schedule: StreamFaultSchedule, rng: R) -> CorruptFeed<I, R>
where
    I: Iterator<Item = Vec<f64>>,
    R: Rng,
{
    CorruptFeed {
        inner,
        schedule,
        rng,
    }
}

#[cfg(test)]
mod tests {
    use super::{
        corrupt_bytes, corrupt_collection, corrupt_feed, corrupt_series, corrupt_stream_series,
        flatline, missing_gap, nan_run, spike, truncate, truncate_checkpoint, ByteFault, FaultKind,
        StreamFault, StreamFaultSchedule,
    };
    use tsrand::StdRng;

    fn ramp(m: usize) -> Vec<f64> {
        (0..m).map(|i| i as f64 * 0.5 - 3.0).collect()
    }

    #[test]
    fn nan_run_is_contiguous() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut x = ramp(32);
            nan_run(&mut x, 8, &mut rng);
            let nan_idx: Vec<usize> = (0..x.len()).filter(|&i| x[i].is_nan()).collect();
            assert!(!nan_idx.is_empty() && nan_idx.len() <= 8);
            for w in nan_idx.windows(2) {
                assert_eq!(w[1], w[0] + 1, "run must be contiguous");
            }
        }
    }

    #[test]
    fn missing_gap_hits_at_least_one_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut x = ramp(16);
        missing_gap(&mut x, 3, &mut rng);
        assert!(x.iter().any(|v| v.is_nan()));
        assert_eq!(x.len(), 16);
    }

    #[test]
    fn flatline_keeps_values_finite_and_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut x = ramp(24);
            flatline(&mut x, 12, &mut rng);
            assert_eq!(x.len(), 24);
            assert!(x.iter().all(|v| v.is_finite()));
            // Some adjacent pair must now be equal (the held segment).
            assert!(x.windows(2).any(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn spike_is_finite_and_extreme() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let mut x = ramp(16);
            spike(&mut x, 1e6, &mut rng);
            assert!(x.iter().all(|v| v.is_finite()));
            assert!(x.iter().any(|v| v.abs() >= 1e5), "no spike landed: {x:?}");
        }
        // Spiking an all-zero series still injects a fault.
        let mut zeros = vec![0.0; 8];
        spike(&mut zeros, 1e6, &mut rng);
        assert!(zeros.iter().any(|v| v.abs() >= 1e5));
    }

    #[test]
    fn truncate_shortens_but_never_empties() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut x = ramp(10);
            truncate(&mut x, &mut rng);
            assert!(!x.is_empty() && x.len() < 10);
        }
    }

    #[test]
    fn operators_are_noops_on_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut empty: Vec<f64> = vec![];
        nan_run(&mut empty, 4, &mut rng);
        missing_gap(&mut empty, 4, &mut rng);
        flatline(&mut empty, 4, &mut rng);
        spike(&mut empty, 1e6, &mut rng);
        truncate(&mut empty, &mut rng);
        assert!(empty.is_empty());
        let mut one = vec![2.0];
        flatline(&mut one, 4, &mut rng);
        truncate(&mut one, &mut rng);
        assert_eq!(one, vec![2.0]);
    }

    #[test]
    fn fault_kinds_classify_contract_violations() {
        assert!(FaultKind::NanRun.invalidates());
        assert!(FaultKind::MissingGap.invalidates());
        assert!(FaultKind::Truncate.invalidates());
        assert!(!FaultKind::Flatline.invalidates());
        assert!(!FaultKind::Spike.invalidates());
        assert_eq!(FaultKind::ALL.len(), 5);
    }

    #[test]
    fn corruption_is_deterministic_by_seed() {
        let run = |seed: u64| -> (Vec<Vec<f64>>, Vec<usize>) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut series: Vec<Vec<f64>> = (0..12).map(|_| ramp(20)).collect();
            let hit = corrupt_collection(&mut series, &FaultKind::ALL, 0.5, &mut rng);
            (series, hit)
        };
        let (s1, h1) = run(99);
        let (s2, h2) = run(99);
        assert_eq!(h1, h2);
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(x.to_bits() == y.to_bits(), "streams diverged");
            }
        }
        let (_, h3) = run(100);
        assert!(h1 != h3 || run(100).0 != run(99).0, "seed must matter");
    }

    #[test]
    fn corrupt_collection_reports_hit_indices() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut series: Vec<Vec<f64>> = (0..20).map(|_| ramp(16)).collect();
        let clean = series.clone();
        let hit = corrupt_collection(&mut series, &[FaultKind::Spike], 0.5, &mut rng);
        assert!(!hit.is_empty(), "p=0.5 over 20 series should hit some");
        for i in 0..series.len() {
            if hit.contains(&i) {
                assert_ne!(series[i], clean[i], "series {i} reported hit but unchanged");
            } else {
                assert_eq!(series[i], clean[i], "series {i} changed but not reported");
            }
        }
        // p = 0 never corrupts.
        let none = corrupt_collection(&mut series, &FaultKind::ALL, 0.0, &mut rng);
        assert!(none.is_empty());
    }

    #[test]
    fn truncate_checkpoint_keeps_a_strict_prefix() {
        let mut rng = StdRng::seed_from_u64(11);
        let original = b"{\"method\":\"m\",\"dataset\":\"d\",\"rand_index\":0.5}\n".to_vec();
        for _ in 0..100 {
            let mut bytes = original.clone();
            let removed = truncate_checkpoint(&mut bytes, &mut rng);
            assert!(removed >= 1, "must remove at least one byte");
            assert!(!bytes.is_empty(), "must keep at least one byte");
            assert_eq!(bytes.len() + removed, original.len());
            assert_eq!(&original[..bytes.len()], &bytes[..], "must be a prefix");
        }
        // Tiny inputs are left alone.
        let mut one = vec![b'{'];
        assert_eq!(truncate_checkpoint(&mut one, &mut rng), 0);
        assert_eq!(one, vec![b'{']);
        let mut empty: Vec<u8> = vec![];
        assert_eq!(truncate_checkpoint(&mut empty, &mut rng), 0);
    }

    #[test]
    fn corrupt_bytes_covers_every_fault() {
        let mut rng = StdRng::seed_from_u64(12);
        let original =
            b"POST /v1/models/a/fit HTTP/1.1\r\nContent-Length: 20\r\n\r\n{\"series\":[[1,2,3]]}"
                .to_vec();
        for _ in 0..100 {
            for kind in ByteFault::ALL {
                let mut bytes = original.clone();
                let report = corrupt_bytes(&mut bytes, kind, &mut rng);
                assert_eq!(report.kind, kind);
                match kind {
                    ByteFault::Truncate => {
                        assert!(report.affected >= 1);
                        assert_eq!(bytes.len() + report.affected, original.len());
                        assert_eq!(&original[..bytes.len()], &bytes[..]);
                    }
                    ByteFault::BitFlip => {
                        assert_eq!(bytes.len(), original.len());
                        assert!((1..=8).contains(&report.affected));
                        // Flips can cancel pairwise, but an odd count
                        // always leaves at least one byte changed.
                        if report.affected % 2 == 1 {
                            assert_ne!(bytes, original);
                        }
                    }
                    ByteFault::GarbagePrefix => {
                        assert!((1..=16).contains(&report.affected));
                        assert_eq!(bytes.len(), original.len() + report.affected);
                        assert_eq!(&bytes[report.affected..], &original[..]);
                    }
                    ByteFault::MidStreamStall => {
                        assert_eq!(bytes, original, "stall must not mutate bytes");
                        let at = report.stall_at.expect("stall point");
                        assert!(at >= 1 && at < original.len());
                    }
                }
            }
        }
        // Tiny inputs are no-ops for every fault.
        for kind in ByteFault::ALL {
            let mut one = vec![b'x'];
            let report = corrupt_bytes(&mut one, kind, &mut rng);
            assert_eq!(one, vec![b'x']);
            assert_eq!(report.affected, 0);
            assert_eq!(report.stall_at, None);
        }
    }

    #[test]
    fn corrupt_bytes_is_deterministic_by_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut bytes = (0u8..=255).collect::<Vec<u8>>();
            let mut reports = Vec::new();
            for kind in ByteFault::ALL {
                reports.push(corrupt_bytes(&mut bytes, kind, &mut rng));
            }
            (bytes, reports)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn corrupt_series_dispatches_every_kind() {
        let mut rng = StdRng::seed_from_u64(8);
        for kind in FaultKind::ALL {
            let mut x = ramp(16);
            corrupt_series(&mut x, kind, &mut rng);
            match kind {
                FaultKind::NanRun | FaultKind::MissingGap => {
                    assert!(x.iter().any(|v| v.is_nan()), "{kind:?}");
                }
                FaultKind::Flatline | FaultKind::Spike => {
                    assert!(x.iter().all(|v| v.is_finite()), "{kind:?}");
                    assert_eq!(x.len(), 16);
                }
                FaultKind::Truncate => assert!(x.len() < 16, "{kind:?}"),
            }
        }
    }

    #[test]
    fn stream_fault_covers_both_families() {
        assert_eq!(
            StreamFault::ALL.len(),
            FaultKind::ALL.len() + ByteFault::ALL.len()
        );
        // Invalidation classification: series faults inherit FaultKind's;
        // only the byte faults that always change the decoded length
        // (Truncate, MidStreamStall) are guaranteed-invalid. BitFlip keeps
        // the length and may stay finite; GarbagePrefix with a non-multiple
        // of 8 prepended keeps the length too (chunks_exact drops the tail).
        for fault in StreamFault::ALL {
            let expected = match fault {
                StreamFault::Series(kind) => kind.invalidates(),
                StreamFault::Bytes(ByteFault::Truncate | ByteFault::MidStreamStall) => true,
                StreamFault::Bytes(_) => false,
            };
            assert_eq!(fault.invalidates(), expected, "{fault:?}");
        }
    }

    #[test]
    fn corrupt_stream_series_byte_faults_change_shape_or_values() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            for kind in ByteFault::ALL {
                let mut x = ramp(32);
                corrupt_stream_series(&mut x, StreamFault::Bytes(kind), &mut rng);
                match kind {
                    // Dropped tail bytes leave a partial f64 that the
                    // framed decode discards: strictly shorter series.
                    ByteFault::Truncate | ByteFault::MidStreamStall => {
                        assert!(x.len() < 32, "{kind:?}: {}", x.len());
                        // The surviving prefix decodes to the original
                        // samples when it lands on an 8-byte boundary.
                        assert!(x.iter().zip(ramp(32)).all(|(a, b)| *a == b));
                    }
                    // 16 garbage bytes prepend two bogus "samples" and
                    // shift every real sample's byte alignment.
                    ByteFault::GarbagePrefix => {
                        assert!(x.len() >= 32, "{kind:?}");
                    }
                    ByteFault::BitFlip => assert_eq!(x.len(), 32),
                }
            }
        }
    }

    #[test]
    fn corrupt_stream_series_series_faults_match_corrupt_series() {
        // The Series arm must delegate verbatim.
        for kind in FaultKind::ALL {
            let mut via_stream = ramp(24);
            let mut direct = ramp(24);
            corrupt_stream_series(
                &mut via_stream,
                StreamFault::Series(kind),
                &mut StdRng::seed_from_u64(5),
            );
            corrupt_series(&mut direct, kind, &mut StdRng::seed_from_u64(5));
            assert_eq!(via_stream.len(), direct.len(), "{kind:?}");
            for (a, b) in via_stream.iter().zip(&direct) {
                assert!(a == b || (a.is_nan() && b.is_nan()), "{kind:?}");
            }
        }
    }

    #[test]
    fn schedule_and_feed_are_deterministic_and_labelled() {
        let feed = |seed: u64| {
            let clean: Vec<Vec<f64>> = (0..64).map(|_| ramp(16)).collect();
            corrupt_feed(
                clean.into_iter(),
                StreamFaultSchedule::all(0.3),
                StdRng::seed_from_u64(seed),
            )
            .collect::<Vec<_>>()
        };
        let a = feed(9);
        let b = feed(9);
        assert_eq!(a.len(), 64);
        for ((xa, fa), (xb, fb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert_eq!(xa.len(), xb.len());
            for (va, vb) in xa.iter().zip(xb) {
                assert!(va == vb || (va.is_nan() && vb.is_nan()));
            }
        }
        // ~30% corruption rate: some hit, some clean, labels honest.
        let hit = a.iter().filter(|(_, f)| f.is_some()).count();
        assert!(hit > 0 && hit < 64, "hit {hit}/64");
        for (x, fault) in &a {
            if fault.is_none() {
                assert_eq!(x.len(), 16);
                assert!(x.iter().all(|v| v.is_finite()));
            }
        }
        // p = 0 and an empty fault list both disable corruption.
        let clean: Vec<Vec<f64>> = (0..8).map(|_| ramp(4)).collect();
        for schedule in [
            StreamFaultSchedule::all(0.0),
            StreamFaultSchedule::new(Vec::new(), 1.0),
        ] {
            let out: Vec<_> = corrupt_feed(
                clean.clone().into_iter(),
                schedule,
                StdRng::seed_from_u64(1),
            )
            .collect();
            assert!(out.iter().all(|(x, f)| f.is_none() && x.len() == 4));
        }
    }
}
