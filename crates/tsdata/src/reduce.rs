//! Dimensionality reduction for long series.
//!
//! The paper notes (end of Section 3.3) that in the rare `m ≫ n` regime,
//! "segmentation or dimensionality reduction approaches can be used to
//! sufficiently reduce the length of the sequences", citing Haar wavelets
//! (Chan & Fu — reference [10]) among others. This module provides the two
//! standard reducers:
//!
//! * [`paa`] — Piecewise Aggregate Approximation: mean per segment,
//! * [`haar_transform`] / [`haar_reduce`] — the orthonormal Haar discrete
//!   wavelet transform and coefficient-truncation reduction, which
//!   preserves Euclidean distances up to the discarded detail energy.

/// Piecewise Aggregate Approximation: reduces `x` to `segments` values,
/// each the mean of (an equal share of) the original samples.
///
/// Sample `i` is assigned to segment `i * segments / m`, which handles
/// lengths that are not multiples of `segments`.
///
/// # Panics
///
/// Panics if `segments` is 0 or exceeds `x.len()` (for non-empty `x`).
#[must_use]
pub fn paa(x: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA needs at least one segment");
    if x.is_empty() {
        return vec![0.0; segments];
    }
    let m = x.len();
    assert!(segments <= m, "cannot expand with PAA ({segments} > {m})");
    let mut sums = vec![0.0; segments];
    let mut counts = vec![0usize; segments];
    for (i, &v) in x.iter().enumerate() {
        let s = i * segments / m;
        sums[s] += v;
        counts[s] += 1;
    }
    sums.iter()
        .zip(counts.iter())
        .map(|(&s, &c)| s / c.max(1) as f64)
        .collect()
}

/// Forward orthonormal Haar DWT. Input length must be a power of two.
///
/// Output layout: `[approximation, detail_level_1, detail_level_2, …]`
/// with the single overall approximation coefficient first. The transform
/// is orthonormal, so Euclidean norms are preserved exactly.
///
/// # Panics
///
/// Panics if the length is not a power of two.
#[must_use]
pub fn haar_transform(x: &[f64]) -> Vec<f64> {
    let m = x.len();
    assert!(
        m.is_power_of_two(),
        "Haar DWT requires a power-of-two length"
    );
    let mut data = x.to_vec();
    let mut out = vec![0.0; m];
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut len = m;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            out[i] = (data[2 * i] + data[2 * i + 1]) * inv_sqrt2;
            out[half + i] = (data[2 * i] - data[2 * i + 1]) * inv_sqrt2;
        }
        data[..len].copy_from_slice(&out[..len]);
        len = half;
    }
    data
}

/// Inverse of [`haar_transform`].
///
/// # Panics
///
/// Panics if the length is not a power of two.
#[must_use]
pub fn haar_inverse(coeffs: &[f64]) -> Vec<f64> {
    let m = coeffs.len();
    assert!(
        m.is_power_of_two(),
        "Haar DWT requires a power-of-two length"
    );
    let mut data = coeffs.to_vec();
    let mut tmp = vec![0.0; m];
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut len = 2;
    while len <= m {
        let half = len / 2;
        for i in 0..half {
            tmp[2 * i] = (data[i] + data[half + i]) * inv_sqrt2;
            tmp[2 * i + 1] = (data[i] - data[half + i]) * inv_sqrt2;
        }
        data[..len].copy_from_slice(&tmp[..len]);
        len *= 2;
    }
    data
}

/// Haar reduction: transforms, keeps the first `keep` coefficients (the
/// coarsest approximations), and returns them. Distances in the reduced
/// space lower-bound the original Euclidean distances (the GEMINI
/// property exploited by wavelet indexing).
///
/// # Panics
///
/// Panics if the length is not a power of two or `keep` is 0 or exceeds
/// the length.
#[must_use]
pub fn haar_reduce(x: &[f64], keep: usize) -> Vec<f64> {
    assert!(keep > 0 && keep <= x.len(), "keep must be in 1..=len");
    let mut coeffs = haar_transform(x);
    coeffs.truncate(keep);
    coeffs
}

#[cfg(test)]
mod tests {
    use super::{haar_inverse, haar_reduce, haar_transform, paa};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    fn paa_exact_segments() {
        let x = [1.0, 3.0, 5.0, 7.0];
        assert_eq!(paa(&x, 2), vec![2.0, 6.0]);
        assert_eq!(paa(&x, 4), x.to_vec());
        assert_eq!(paa(&x, 1), vec![4.0]);
    }

    #[test]
    fn paa_uneven_lengths() {
        let x = [2.0, 2.0, 2.0, 8.0, 8.0];
        let r = paa(&x, 2);
        assert_eq!(r.len(), 2);
        // Segment boundaries: i*2/5 -> [0,0,0 -> seg 0? i=0,1,2 -> 0; i=3,4 -> 1]
        assert!((r[0] - 2.0).abs() < 1e-12);
        assert!((r[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn paa_preserves_mean() {
        let mut next = lcg(2);
        let x: Vec<f64> = (0..60).map(|_| next()).collect();
        let r = paa(&x, 6);
        // Equal segments: mean of PAA = mean of x.
        let mx: f64 = x.iter().sum::<f64>() / 60.0;
        let mr: f64 = r.iter().sum::<f64>() / 6.0;
        assert!((mx - mr).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot expand")]
    fn paa_rejects_expansion() {
        let _ = paa(&[1.0, 2.0], 3);
    }

    #[test]
    fn haar_roundtrip() {
        let mut next = lcg(7);
        for &m in &[2usize, 8, 64, 256] {
            let x: Vec<f64> = (0..m).map(|_| next()).collect();
            let back = haar_inverse(&haar_transform(&x));
            for (a, b) in x.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-10, "m={m}");
            }
        }
    }

    #[test]
    fn haar_is_orthonormal() {
        let mut next = lcg(11);
        let x: Vec<f64> = (0..128).map(|_| next()).collect();
        let c = haar_transform(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-9, "energy {ex} vs {ec}");
    }

    #[test]
    fn first_coefficient_is_scaled_mean() {
        let x = [3.0; 16];
        let c = haar_transform(&x);
        // Orthonormal Haar: c[0] = mean * sqrt(m).
        assert!((c[0] - 3.0 * 4.0).abs() < 1e-12);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn truncated_distance_lower_bounds_euclidean() {
        let mut next = lcg(13);
        for _ in 0..20 {
            let x: Vec<f64> = (0..64).map(|_| next()).collect();
            let y: Vec<f64> = (0..64).map(|_| next()).collect();
            let full: f64 = x
                .iter()
                .zip(y.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            for keep in [1usize, 4, 16, 64] {
                let rx = haar_reduce(&x, keep);
                let ry = haar_reduce(&y, keep);
                let red: f64 = rx
                    .iter()
                    .zip(ry.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(red <= full + 1e-9, "keep={keep}: {red} > {full}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn haar_rejects_non_power_of_two() {
        let _ = haar_transform(&[1.0, 2.0, 3.0]);
    }
}
