//! Cylinder–Bell–Funnel generator (Saito 1994).
//!
//! The paper uses CBF for its scalability study (Appendix B, Figure 12)
//! because `n` and `m` can be varied freely without changing the nature of
//! the data. The three classes are:
//!
//! ```text
//! cylinder: c(t) = (6 + η) · χ_[a,b](t)                 + ε(t)
//! bell:     b(t) = (6 + η) · χ_[a,b](t) · (t−a)/(b−a)   + ε(t)
//! funnel:   f(t) = (6 + η) · χ_[a,b](t) · (b−t)/(b−a)   + ε(t)
//! ```
//!
//! with `η, ε(t) ~ N(0, 1)` and random breakpoints `a < b`. The classic
//! parameters for `m = 128` (`a ∈ [16, 32]`, `b − a ∈ [32, 96]`) are scaled
//! proportionally for other lengths.

use tserror::TsResult;
use tsrand::Rng;

use crate::dataset::Dataset;
use crate::distort::gaussian;
use crate::generators::GenParams;
use crate::store::SeriesStore;

/// CBF class identifiers.
pub const CLASSES: [&str; 3] = ["cylinder", "bell", "funnel"];

/// Generates one CBF series of class `class` (0 = cylinder, 1 = bell,
/// 2 = funnel) and length `m`.
///
/// # Panics
///
/// Panics if `class > 2` or `m < 8`.
#[must_use]
pub fn generate_one<R: Rng>(class: usize, m: usize, rng: &mut R) -> Vec<f64> {
    assert!(class < 3, "CBF has exactly 3 classes");
    assert!(m >= 8, "CBF series must have at least 8 samples");
    let scale = m as f64 / 128.0;
    let a_lo = (16.0 * scale).round() as usize;
    let a_hi = (32.0 * scale).round() as usize;
    let w_lo = (32.0 * scale).round().max(2.0) as usize;
    let w_hi = (96.0 * scale).round() as usize;

    let a = rng.gen_range(a_lo..=a_hi.max(a_lo + 1));
    let width = rng.gen_range(w_lo..=w_hi.max(w_lo + 1));
    let b = (a + width).min(m - 1);
    let eta = gaussian(rng);
    let level = 6.0 + eta;
    let denom = (b - a).max(1) as f64;

    (0..m)
        .map(|t| {
            let noise = gaussian(rng);
            if t < a || t > b {
                return noise;
            }
            let shape = match class {
                0 => 1.0,
                1 => (t - a) as f64 / denom,
                _ => (b - t) as f64 / denom,
            };
            level * shape + noise
        })
        .collect()
}

/// Generates a CBF dataset with `n_per_class` members of each class.
#[must_use]
pub fn generate<R: Rng>(params: &GenParams, rng: &mut R) -> Dataset {
    // CBF defines its own noise model, so bypass the shared distortions and
    // use the generator's ε(t) directly; shifts are inherent in the random
    // breakpoints.
    let total = 3 * params.n_per_class;
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for class in 0..3 {
        for _ in 0..params.n_per_class {
            series.push(generate_one(class, params.len, rng));
            labels.push(class);
        }
    }
    Dataset::new("cbf", series, labels)
}

/// Streams a CBF dataset directly into a [`SeriesStore`] — the
/// out-of-core twin of [`generate`]: identical RNG consumption, identical
/// class-major row order, identical sample values, but no nested-Vec
/// materialization (each row exists transiently before being pushed into
/// the contiguous — possibly spilled — buffer). Returns the class label
/// per row.
///
/// Rows are pushed raw; call [`SeriesStore::z_normalize_in_place`]
/// afterwards for fit-ready data.
///
/// # Errors
///
/// Everything [`SeriesStore::push_row`] reports (a `store` whose
/// `series_len() != params.len` yields `LengthMismatch`; spill write
/// failures yield `CorruptData`).
pub fn generate_into<R: Rng>(
    params: &GenParams,
    store: &mut SeriesStore,
    rng: &mut R,
) -> TsResult<Vec<usize>> {
    let mut labels = Vec::with_capacity(3 * params.n_per_class);
    for class in 0..3 {
        for _ in 0..params.n_per_class {
            let row = generate_one(class, params.len, rng);
            store.push_row(&row)?;
            labels.push(class);
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::{generate, generate_into, generate_one};
    use crate::generators::GenParams;
    use crate::store::{ElemType, SeriesStore};
    use tsrand::StdRng;

    #[test]
    fn series_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for &m in &[8usize, 64, 128, 512, 1000] {
            assert_eq!(generate_one(0, m, &mut rng).len(), m);
        }
    }

    #[test]
    #[should_panic(expected = "3 classes")]
    fn rejects_bad_class() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = generate_one(3, 128, &mut rng);
    }

    #[test]
    fn cylinder_has_plateau_energy() {
        // Averaged over noise, a cylinder's mid-section should be well
        // above the baseline.
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = vec![0.0; 128];
        for _ in 0..50 {
            let s = generate_one(0, 128, &mut rng);
            for (a, v) in acc.iter_mut().zip(s.iter()) {
                *a += v;
            }
        }
        let mid = acc[40..70].iter().sum::<f64>() / 30.0 / 50.0;
        let head = acc[..10].iter().sum::<f64>() / 10.0 / 50.0;
        assert!(mid > head + 2.0, "mid {mid} vs head {head}");
    }

    #[test]
    fn bell_rises_and_funnel_falls() {
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 80;
        let (mut bell_slope, mut funnel_slope) = (0.0, 0.0);
        for _ in 0..trials {
            let b = generate_one(1, 128, &mut rng);
            let f = generate_one(2, 128, &mut rng);
            // Compare mean of second half of the active region (roughly
            // 32..96) against the first half.
            let early: f64 = b[24..56].iter().sum::<f64>() / 32.0;
            let late: f64 = b[56..88].iter().sum::<f64>() / 32.0;
            bell_slope += late - early;
            let early: f64 = f[24..56].iter().sum::<f64>() / 32.0;
            let late: f64 = f[56..88].iter().sum::<f64>() / 32.0;
            funnel_slope += late - early;
        }
        bell_slope /= trials as f64;
        funnel_slope /= trials as f64;
        assert!(bell_slope > 0.3, "bell slope {bell_slope}");
        assert!(funnel_slope < -0.3, "funnel slope {funnel_slope}");
    }

    #[test]
    fn generate_into_matches_generate_bit_for_bit() {
        let params = GenParams {
            n_per_class: 5,
            len: 64,
            ..GenParams::default()
        };
        let nested = generate(&params, &mut StdRng::seed_from_u64(9));
        let mut store = SeriesStore::new(64, ElemType::F64);
        let labels = generate_into(&params, &mut store, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(labels, nested.labels);
        assert_eq!(store.to_rows().unwrap(), nested.series);
    }

    #[test]
    fn dataset_shape() {
        let params = GenParams {
            n_per_class: 7,
            len: 96,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let d = generate(&params, &mut rng);
        assert_eq!(d.n_series(), 21);
        assert_eq!(d.series_len(), 96);
        assert_eq!(d.n_classes(), 3);
    }
}
