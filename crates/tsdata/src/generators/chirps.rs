//! Chirp generator: classes are frequency-modulated sweeps with different
//! modulation profiles (constant, rising, falling, parabolic).
//!
//! Chirps change their local frequency over time, so neither a global phase
//! shift nor a small warp maps one class onto another — a hard, structured
//! family that keeps the clustering benchmarks honest.

use tsrand::Rng;

use crate::dataset::Dataset;
use crate::generators::{build_dataset, GenParams};

/// Maximum number of chirp classes.
pub const MAX_CLASSES: usize = 4;

/// Instantaneous frequency profile (cycles over the whole series) for
/// `class` at normalized time `t`.
fn freq_profile(class: usize, t: f64, base: f64) -> f64 {
    match class {
        0 => base,                                       // constant tone
        1 => base * (0.5 + 1.5 * t),                     // rising chirp
        2 => base * (2.0 - 1.5 * t),                     // falling chirp
        _ => base * (0.5 + 3.0 * (t - 0.5) * (t - 0.5)), // parabolic
    }
}

/// Generates the chirp prototype for `class` with base frequency `base`
/// (in cycles over the series).
///
/// # Panics
///
/// Panics if `class >= MAX_CLASSES`.
#[must_use]
pub fn prototype(class: usize, m: usize, base: f64) -> Vec<f64> {
    assert!(class < MAX_CLASSES, "chirp class out of range");
    // Integrate the instantaneous frequency to get the phase.
    let mut phase = 0.0;
    let dt = 1.0 / m as f64;
    (0..m)
        .map(|i| {
            let t = i as f64 * dt;
            phase += 2.0 * std::f64::consts::PI * freq_profile(class, t, base) * dt;
            phase.sin()
        })
        .collect()
}

/// Generates a chirp dataset with `n_classes ≤ 4` classes.
///
/// # Panics
///
/// Panics if `n_classes` is 0 or exceeds [`MAX_CLASSES`].
#[must_use]
pub fn generate<R: Rng>(n_classes: usize, base: f64, params: &GenParams, rng: &mut R) -> Dataset {
    assert!(
        (1..=MAX_CLASSES).contains(&n_classes),
        "n_classes must be in 1..=4"
    );
    build_dataset("chirps", n_classes, params, rng, |class, _| {
        prototype(class, params.len, base)
    })
}

#[cfg(test)]
mod tests {
    use super::{generate, prototype, MAX_CLASSES};
    use crate::generators::GenParams;
    use tsrand::StdRng;

    /// Counts zero crossings — a cheap proxy for average frequency.
    fn zero_crossings(s: &[f64]) -> usize {
        s.windows(2)
            .filter(|w| w[0].signum() != w[1].signum())
            .count()
    }

    #[test]
    fn constant_tone_matches_expected_crossings() {
        let p = prototype(0, 512, 4.0);
        // 4 cycles → ~8 zero crossings.
        let zc = zero_crossings(&p);
        assert!((7..=9).contains(&zc), "crossings {zc}");
    }

    #[test]
    fn rising_chirp_accelerates() {
        let p = prototype(1, 1024, 6.0);
        let early = zero_crossings(&p[..512]);
        let late = zero_crossings(&p[512..]);
        assert!(late > early, "early {early}, late {late}");
    }

    #[test]
    fn falling_chirp_decelerates() {
        let p = prototype(2, 1024, 6.0);
        let early = zero_crossings(&p[..512]);
        let late = zero_crossings(&p[512..]);
        assert!(late < early, "early {early}, late {late}");
    }

    #[test]
    fn amplitudes_bounded() {
        for class in 0..MAX_CLASSES {
            for &v in &prototype(class, 256, 5.0) {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn dataset_shape() {
        let params = GenParams {
            n_per_class: 6,
            len: 128,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let d = generate(3, 4.0, &params, &mut rng);
        assert_eq!(d.n_series(), 18);
        assert_eq!(d.n_classes(), 3);
    }
}
