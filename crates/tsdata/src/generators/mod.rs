//! Synthetic shape-family generators.
//!
//! Each family produces a class-labeled [`crate::dataset::Dataset`] whose
//! classes differ in *shape* while individual members are distorted with the
//! operators of [`crate::distort`] — amplitude scaling, offset, phase shift,
//! local warping, and additive noise. Together the families stand in for the
//! UCR archive (see `DESIGN.md` for the substitution rationale).
//!
//! Families:
//!
//! * [`cbf`] — Cylinder–Bell–Funnel (Saito 1994), the paper's scalability
//!   workload (Appendix B),
//! * [`two_patterns`] — step-event combinations (four classes),
//! * [`ecg`] — two-class ECG-like beats mirroring Figure 1,
//! * [`sines`] — waveform families with random phase,
//! * [`trends`] — trend + random-walk classes,
//! * [`seasonal`] — harmonic-mixture classes,
//! * [`warped`] — Gaussian-bump arrangements under local warping,
//! * [`chirps`] — frequency-modulated classes.

pub mod cbf;
pub mod chirps;
pub mod ecg;
pub mod seasonal;
pub mod sines;
pub mod trends;
pub mod two_patterns;
pub mod warped;

use tsrand::Rng;

use crate::dataset::Dataset;
use crate::distort::{add_noise, scale_translate, shift_circular};

/// Common knobs shared by all family generators.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Series generated per class.
    pub n_per_class: usize,
    /// Series length `m`.
    pub len: usize,
    /// Standard deviation of additive Gaussian noise.
    pub noise: f64,
    /// Maximum circular phase shift as a fraction of `m` (0 disables).
    pub max_shift_frac: f64,
    /// Maximum random amplitude factor applied per series (1 disables; a
    /// factor is drawn from `[1/a, a]`).
    pub amp_jitter: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            n_per_class: 20,
            len: 128,
            noise: 0.3,
            max_shift_frac: 0.15,
            amp_jitter: 1.5,
        }
    }
}

impl GenParams {
    /// Applies the common per-member distortions (shift, amplitude/offset
    /// jitter, noise) to a class prototype.
    pub fn distort<R: Rng>(&self, prototype: &[f64], rng: &mut R) -> Vec<f64> {
        let m = prototype.len();
        let max_shift = ((m as f64) * self.max_shift_frac) as isize;
        let shift = if max_shift > 0 {
            rng.gen_range(-max_shift..=max_shift)
        } else {
            0
        };
        let mut series = shift_circular(prototype, shift);
        if self.amp_jitter > 1.0 {
            let a = rng.gen_range(1.0 / self.amp_jitter..self.amp_jitter);
            let b = rng.gen_range(-1.0..1.0);
            scale_translate(&mut series, a, b);
        }
        add_noise(&mut series, self.noise, rng);
        series
    }
}

/// Builds a dataset by drawing `params.n_per_class` members from each class
/// prototype function.
///
/// `prototype(class, rng)` returns a fresh prototype of length `params.len`
/// for the given class (it may itself be randomized, e.g. CBF's random
/// breakpoints).
pub fn build_dataset<R, F>(
    name: &str,
    n_classes: usize,
    params: &GenParams,
    rng: &mut R,
    mut prototype: F,
) -> Dataset
where
    R: Rng,
    F: FnMut(usize, &mut R) -> Vec<f64>,
{
    let total = n_classes * params.n_per_class;
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for class in 0..n_classes {
        for _ in 0..params.n_per_class {
            let proto = prototype(class, rng);
            debug_assert_eq!(proto.len(), params.len);
            series.push(params.distort(&proto, rng));
            labels.push(class);
        }
    }
    Dataset::new(name, series, labels)
}

#[cfg(test)]
mod tests {
    use super::{build_dataset, GenParams};
    use tsrand::StdRng;

    #[test]
    fn build_dataset_shape() {
        let params = GenParams {
            n_per_class: 5,
            len: 32,
            noise: 0.1,
            max_shift_frac: 0.1,
            amp_jitter: 1.2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let d = build_dataset("toy", 3, &params, &mut rng, |class, _| {
            vec![class as f64; 32]
        });
        assert_eq!(d.n_series(), 15);
        assert_eq!(d.series_len(), 32);
        assert_eq!(d.n_classes(), 3);
        for class in 0..3 {
            assert_eq!(d.class_indices(class).len(), 5);
        }
    }

    #[test]
    fn distort_is_deterministic_given_seed() {
        let params = GenParams::default();
        let proto: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
        let a = params.distort(&proto, &mut StdRng::seed_from_u64(42));
        let b = params.distort(&proto, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_distortion_params_reproduce_prototype() {
        let params = GenParams {
            n_per_class: 1,
            len: 16,
            noise: 0.0,
            max_shift_frac: 0.0,
            amp_jitter: 1.0,
        };
        let proto: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let out = params.distort(&proto, &mut rng);
        assert_eq!(out, proto);
    }
}
