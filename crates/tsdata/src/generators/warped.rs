//! Warped-bump generator: classes are arrangements of Gaussian bumps, and
//! each member is passed through a random *local* (non-linear) time
//! warping.
//!
//! This family stresses exactly the invariance where DTW should shine and
//! linear-drift measures (ED, SBD) struggle — the counterpart of the
//! phase-shift-dominated ECG family. Having both in the collection lets the
//! experiments reproduce the paper's observation that no measure dominates
//! on every dataset (Figure 5 has points on both sides of the diagonal).

use tsrand::Rng;

use crate::dataset::Dataset;
use crate::distort::warp_local;
use crate::generators::GenParams;

/// Maximum number of bump-arrangement classes.
pub const MAX_CLASSES: usize = 4;

/// Bump centers (normalized time) and signs per class.
const ARRANGEMENTS: [&[(f64, f64)]; MAX_CLASSES] = [
    &[(0.3, 1.0), (0.7, 1.0)],
    &[(0.3, 1.0), (0.7, -1.0)],
    &[(0.2, -1.0), (0.5, 1.0), (0.8, -1.0)],
    &[(0.5, 1.0)],
];

/// Generates the undistorted prototype for `class`.
///
/// # Panics
///
/// Panics if `class >= MAX_CLASSES`.
#[must_use]
pub fn prototype(class: usize, m: usize) -> Vec<f64> {
    assert!(class < MAX_CLASSES, "warped class out of range");
    let width = 0.06;
    (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            ARRANGEMENTS[class]
                .iter()
                .map(|&(c, sign)| sign * (-((t - c) / width).powi(2)).exp())
                .sum()
        })
        .collect()
}

/// Generates a warped-bump dataset: each member is the class prototype
/// under a random local warp plus the shared distortions.
///
/// # Panics
///
/// Panics if `n_classes` is 0 or exceeds [`MAX_CLASSES`].
#[must_use]
pub fn generate<R: Rng>(n_classes: usize, params: &GenParams, rng: &mut R) -> Dataset {
    assert!(
        (1..=MAX_CLASSES).contains(&n_classes),
        "n_classes must be in 1..=4"
    );
    let total = n_classes * params.n_per_class;
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    let max_warp = params.len as f64 * 0.05;
    for class in 0..n_classes {
        let proto = prototype(class, params.len);
        for _ in 0..params.n_per_class {
            let amp = rng.gen_range(0.0..max_warp);
            let freq = rng.gen_range(0.5..2.5);
            let warped = warp_local(&proto, amp, freq);
            series.push(params.distort(&warped, rng));
            labels.push(class);
        }
    }
    Dataset::new("warped", series, labels)
}

#[cfg(test)]
mod tests {
    use super::{generate, prototype, MAX_CLASSES};
    use crate::generators::GenParams;
    use crate::normalize::z_normalize;
    use tsrand::StdRng;

    #[test]
    fn prototypes_distinct() {
        for a in 0..MAX_CLASSES {
            for b in a + 1..MAX_CLASSES {
                let pa = z_normalize(&prototype(a, 100));
                let pb = z_normalize(&prototype(b, 100));
                let d: f64 = pa
                    .iter()
                    .zip(pb.iter())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                assert!(d > 1.0, "classes {a},{b}: {d}");
            }
        }
    }

    #[test]
    fn single_bump_class_has_one_extremum() {
        let p = prototype(3, 200);
        let peak = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((peak - 1.0).abs() < 0.01);
        // Count strict local maxima above 0.5 — exactly one.
        let count = p
            .windows(3)
            .filter(|w| w[1] > w[0] && w[1] > w[2] && w[1] > 0.5)
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn dataset_shape() {
        let params = GenParams {
            n_per_class: 5,
            len: 120,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(21);
        let d = generate(4, &params, &mut rng);
        assert_eq!(d.n_series(), 20);
        assert_eq!(d.series_len(), 120);
    }
}
