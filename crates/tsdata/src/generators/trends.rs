//! Trend-family generator: classes are distinct global trend shapes riding
//! on a shared random-walk component.
//!
//! z-normalization removes level and scale, so classes must differ in the
//! *functional form* of the trend — linear up, linear down, quadratic
//! valley, quadratic hill, and S-curve.

use tsrand::Rng;

use crate::dataset::Dataset;
use crate::distort::gaussian;
use crate::generators::GenParams;

/// Maximum number of trend classes.
pub const MAX_CLASSES: usize = 5;

/// Evaluates trend `class` at normalized time `t ∈ [0, 1]`.
fn trend(class: usize, t: f64) -> f64 {
    match class {
        0 => t,                                       // linear up
        1 => -t,                                      // linear down
        2 => (2.0 * t - 1.0).powi(2),                 // valley
        3 => -(2.0 * t - 1.0).powi(2),                // hill
        _ => 1.0 / (1.0 + (-12.0 * (t - 0.5)).exp()), // S-curve
    }
}

/// Generates one series: `amplitude · trend(t) + random walk`.
///
/// # Panics
///
/// Panics if `class >= MAX_CLASSES`.
#[must_use]
pub fn generate_one<R: Rng>(class: usize, m: usize, walk_sigma: f64, rng: &mut R) -> Vec<f64> {
    assert!(class < MAX_CLASSES, "trend class out of range");
    let amplitude = 6.0;
    let mut walk = 0.0;
    (0..m)
        .map(|i| {
            walk += walk_sigma * gaussian(rng);
            let t = if m > 1 {
                i as f64 / (m - 1) as f64
            } else {
                0.0
            };
            amplitude * trend(class, t) + walk
        })
        .collect()
}

/// Generates a trend dataset with `n_classes ≤ 5` classes.
///
/// The shared shift distortion is *not* applied (trends are anchored in
/// absolute time); noise enters through the random walk instead.
///
/// # Panics
///
/// Panics if `n_classes` is 0 or exceeds [`MAX_CLASSES`].
#[must_use]
pub fn generate<R: Rng>(n_classes: usize, params: &GenParams, rng: &mut R) -> Dataset {
    assert!(
        (1..=MAX_CLASSES).contains(&n_classes),
        "n_classes must be in 1..=5"
    );
    let total = n_classes * params.n_per_class;
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for class in 0..n_classes {
        for _ in 0..params.n_per_class {
            series.push(generate_one(class, params.len, params.noise, rng));
            labels.push(class);
        }
    }
    Dataset::new("trends", series, labels)
}

#[cfg(test)]
mod tests {
    use super::{generate, generate_one, trend};
    use crate::generators::GenParams;
    use tsrand::StdRng;

    #[test]
    fn trend_shapes() {
        assert_eq!(trend(0, 0.0), 0.0);
        assert_eq!(trend(0, 1.0), 1.0);
        assert_eq!(trend(1, 1.0), -1.0);
        assert_eq!(trend(2, 0.5), 0.0);
        assert_eq!(trend(2, 0.0), 1.0);
        assert_eq!(trend(3, 0.0), -1.0);
        assert!(trend(4, 0.0) < 0.01);
        assert!(trend(4, 1.0) > 0.99);
    }

    #[test]
    fn noiseless_linear_up_is_monotone() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = generate_one(0, 50, 0.0, &mut rng);
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn up_and_down_classes_anticorrelate() {
        let mut rng = StdRng::seed_from_u64(2);
        let up = generate_one(0, 100, 0.05, &mut rng);
        let down = generate_one(1, 100, 0.05, &mut rng);
        let mu = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let (mu_u, mu_d) = (mu(&up), mu(&down));
        let corr: f64 = up
            .iter()
            .zip(down.iter())
            .map(|(a, b)| (a - mu_u) * (b - mu_d))
            .sum();
        assert!(corr < 0.0);
    }

    #[test]
    fn dataset_shape() {
        let params = GenParams {
            n_per_class: 4,
            len: 80,
            noise: 0.1,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(5, &params, &mut rng);
        assert_eq!(d.n_series(), 20);
        assert_eq!(d.n_classes(), 5);
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn rejects_too_many_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = generate(6, &GenParams::default(), &mut rng);
    }
}
