//! Seasonal-mixture generator: classes are different mixtures of two
//! harmonics of a base frequency.
//!
//! Models the "seasonal variations in currency values" motivation of the
//! paper's Section 2.2: members share a fundamental period but classes
//! differ in harmonic content, and members are phase-shifted and
//! amplitude-scaled (as inflation would).

use tsrand::Rng;

use crate::dataset::Dataset;
use crate::generators::{build_dataset, GenParams};

/// Maximum number of harmonic-mixture classes.
pub const MAX_CLASSES: usize = 4;

/// Mixture weights `(fundamental, 2nd harmonic, 3rd harmonic)` per class.
const WEIGHTS: [(f64, f64, f64); MAX_CLASSES] = [
    (1.0, 0.0, 0.0),
    (0.6, 0.8, 0.0),
    (0.6, 0.0, 0.8),
    (0.5, 0.5, 0.7),
];

/// Generates the prototype for `class` with `cycles` fundamental periods.
///
/// # Panics
///
/// Panics if `class >= MAX_CLASSES`.
#[must_use]
pub fn prototype(class: usize, m: usize, cycles: f64) -> Vec<f64> {
    assert!(class < MAX_CLASSES, "seasonal class out of range");
    let (w1, w2, w3) = WEIGHTS[class];
    let tau = 2.0 * std::f64::consts::PI * cycles;
    (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            w1 * (tau * t).sin() + w2 * (2.0 * tau * t).sin() + w3 * (3.0 * tau * t).sin()
        })
        .collect()
}

/// Generates a seasonal dataset with `n_classes ≤ 4` classes.
///
/// # Panics
///
/// Panics if `n_classes` is 0 or exceeds [`MAX_CLASSES`].
#[must_use]
pub fn generate<R: Rng>(n_classes: usize, cycles: f64, params: &GenParams, rng: &mut R) -> Dataset {
    assert!(
        (1..=MAX_CLASSES).contains(&n_classes),
        "n_classes must be in 1..=4"
    );
    build_dataset("seasonal", n_classes, params, rng, |class, _| {
        prototype(class, params.len, cycles)
    })
}

#[cfg(test)]
mod tests {
    use super::{generate, prototype, MAX_CLASSES};
    use crate::generators::GenParams;
    use crate::normalize::z_normalize;
    use tsrand::StdRng;

    #[test]
    fn prototypes_distinct_pairwise() {
        for a in 0..MAX_CLASSES {
            for b in a + 1..MAX_CLASSES {
                let pa = z_normalize(&prototype(a, 128, 2.0));
                let pb = z_normalize(&prototype(b, 128, 2.0));
                let d: f64 = pa
                    .iter()
                    .zip(pb.iter())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                assert!(d > 1.0, "classes {a} and {b} too close: {d}");
            }
        }
    }

    #[test]
    fn fundamental_only_class_is_pure_sine() {
        let p = prototype(0, 64, 1.0);
        for (i, &v) in p.iter().enumerate() {
            let expect = (2.0 * std::f64::consts::PI * i as f64 / 64.0).sin();
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn prototypes_have_zero_mean_over_full_cycles() {
        for class in 0..MAX_CLASSES {
            let p = prototype(class, 200, 2.0);
            let mean: f64 = p.iter().sum::<f64>() / 200.0;
            assert!(mean.abs() < 1e-10, "class {class} mean {mean}");
        }
    }

    #[test]
    fn dataset_shape() {
        let params = GenParams {
            n_per_class: 5,
            len: 96,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let d = generate(4, 3.0, &params, &mut rng);
        assert_eq!(d.n_series(), 20);
        assert_eq!(d.n_classes(), 4);
    }
}
