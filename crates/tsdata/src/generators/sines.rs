//! Waveform-family generator: classes are distinct periodic waveforms
//! (sine, square, sawtooth, triangle) at a common base frequency, with the
//! per-member phase randomized by the shared shift distortion.
//!
//! These datasets isolate the *shift invariance* requirement: after
//! z-normalization all members have identical amplitude, so only phase and
//! waveform shape distinguish them.

use tsrand::Rng;

use crate::dataset::Dataset;
use crate::generators::{build_dataset, GenParams};

/// Number of waveform classes available.
pub const MAX_CLASSES: usize = 4;

/// Evaluates waveform `class` at phase `p` (in cycles, `p ∈ [0, 1)`).
fn waveform(class: usize, p: f64) -> f64 {
    let p = p - p.floor();
    match class {
        0 => (2.0 * std::f64::consts::PI * p).sin(),
        1 => {
            // Square wave.
            if p < 0.5 {
                1.0
            } else {
                -1.0
            }
        }
        2 => 2.0 * p - 1.0, // Sawtooth.
        _ => {
            // Triangle.
            if p < 0.5 {
                4.0 * p - 1.0
            } else {
                3.0 - 4.0 * p
            }
        }
    }
}

/// Generates the prototype for `class` with `cycles` full periods over `m`
/// samples.
///
/// # Panics
///
/// Panics if `class >= MAX_CLASSES`.
#[must_use]
pub fn prototype(class: usize, m: usize, cycles: f64) -> Vec<f64> {
    assert!(class < MAX_CLASSES, "waveform class out of range");
    (0..m)
        .map(|i| waveform(class, cycles * i as f64 / m as f64))
        .collect()
}

/// Generates a waveform dataset with `n_classes ≤ 4` classes.
///
/// # Panics
///
/// Panics if `n_classes` is 0 or exceeds [`MAX_CLASSES`].
#[must_use]
pub fn generate<R: Rng>(n_classes: usize, cycles: f64, params: &GenParams, rng: &mut R) -> Dataset {
    assert!(
        (1..=MAX_CLASSES).contains(&n_classes),
        "n_classes must be in 1..=4"
    );
    build_dataset("sines", n_classes, params, rng, |class, _| {
        prototype(class, params.len, cycles)
    })
}

#[cfg(test)]
mod tests {
    use super::{generate, prototype, waveform, MAX_CLASSES};
    use crate::generators::GenParams;
    use tsrand::StdRng;

    #[test]
    fn waveforms_bounded() {
        for class in 0..MAX_CLASSES {
            for i in 0..1000 {
                let v = waveform(class, i as f64 / 333.0);
                assert!((-1.0..=1.0).contains(&v), "class {class}: {v}");
            }
        }
    }

    #[test]
    fn sine_prototype_hits_expected_values() {
        let p = prototype(0, 8, 1.0);
        assert!(p[0].abs() < 1e-12);
        assert!((p[2] - 1.0).abs() < 1e-12);
        assert!((p[6] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn square_has_two_levels() {
        let p = prototype(1, 100, 1.0);
        for &v in &p {
            assert!(v == 1.0 || v == -1.0);
        }
    }

    #[test]
    fn prototypes_are_periodic() {
        for class in 0..MAX_CLASSES {
            let p = prototype(class, 120, 3.0);
            for i in 0..40 {
                assert!((p[i] - p[i + 40]).abs() < 1e-9, "class {class} at {i}");
            }
        }
    }

    #[test]
    fn dataset_shapes() {
        let params = GenParams {
            n_per_class: 6,
            len: 64,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let d = generate(3, 2.0, &params, &mut rng);
        assert_eq!(d.n_series(), 18);
        assert_eq!(d.n_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn rejects_too_many_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = generate(5, 2.0, &GenParams::default(), &mut rng);
    }
}
