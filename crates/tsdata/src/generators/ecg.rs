//! ECG-like two-class generator mirroring Figure 1 of the paper.
//!
//! The ECGFiveDays dataset that motivates the paper has two classes with the
//! same gross morphology but different onsets:
//!
//! * **Class A** — a sharp rise, a drop, then a gradual increase;
//! * **Class B** — a gradual increase, a drop, then a gradual increase.
//!
//! Members of a class differ mainly by a *global phase shift* (heartbeats
//! are out of phase depending on when measurement starts), which is exactly
//! the regime where SBD/k-Shape should dominate cDTW/k-medoids — the paper's
//! headline anecdote (98.9% vs 79.7% 1-NN accuracy; 84% vs 53% Rand index).

use tsrand::Rng;

use crate::dataset::Dataset;
use crate::generators::{build_dataset, GenParams};

/// Smooth step from 0 to 1 centered at `c` with steepness `k`.
fn sigmoid(t: f64, c: f64, k: f64) -> f64 {
    1.0 / (1.0 + (-(t - c) * k).exp())
}

/// Gaussian bump centered at `c` with width `w`.
fn bump(t: f64, c: f64, w: f64) -> f64 {
    (-((t - c) / w).powi(2)).exp()
}

/// Generates an ECG-like prototype of length `m` for class 0 (sharp onset)
/// or class 1 (gradual onset).
///
/// # Panics
///
/// Panics if `class > 1` or `m < 16`.
#[must_use]
pub fn prototype(class: usize, m: usize) -> Vec<f64> {
    assert!(class < 2, "ECG generator has exactly 2 classes");
    assert!(m >= 16, "ECG series must have at least 16 samples");
    let mf = m as f64;
    (0..m)
        .map(|i| {
            let t = i as f64 / mf; // normalized time in [0, 1)
            match class {
                0 => {
                    // Sharp R-peak-like rise at 0.2, drop, gradual recovery.
                    4.0 * bump(t, 0.2, 0.03) - 1.5 * bump(t, 0.32, 0.06)
                        + 1.2 * sigmoid(t, 0.6, 12.0)
                }
                _ => {
                    // Gradual rise toward 0.3, drop, gradual recovery.
                    2.0 * sigmoid(t, 0.18, 18.0) * (1.0 - sigmoid(t, 0.32, 25.0))
                        - 1.5 * bump(t, 0.4, 0.06)
                        + 1.2 * sigmoid(t, 0.65, 12.0)
                }
            }
        })
        .collect()
}

/// Generates a two-class ECG-like dataset.
#[must_use]
pub fn generate<R: Rng>(params: &GenParams, rng: &mut R) -> Dataset {
    build_dataset("ecg", 2, params, rng, |class, _| {
        prototype(class, params.len)
    })
}

#[cfg(test)]
mod tests {
    use super::{generate, prototype};
    use crate::generators::GenParams;
    use crate::normalize::z_normalize;
    use tsrand::StdRng;

    #[test]
    fn prototypes_have_requested_length() {
        assert_eq!(prototype(0, 100).len(), 100);
        assert_eq!(prototype(1, 136).len(), 136);
    }

    #[test]
    #[should_panic(expected = "2 classes")]
    fn rejects_bad_class() {
        let _ = prototype(2, 64);
    }

    #[test]
    fn classes_are_distinguishable_after_z_norm() {
        let a = z_normalize(&prototype(0, 128));
        let b = z_normalize(&prototype(1, 128));
        let dist: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 2.0, "classes too similar: ED = {dist}");
    }

    #[test]
    fn class_a_peak_is_sharper() {
        // Class A's max derivative should exceed class B's: the sharp rise
        // is the defining feature.
        let a = prototype(0, 256);
        let b = prototype(1, 256);
        let max_slope = |s: &[f64]| {
            s.windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(max_slope(&a) > 1.5 * max_slope(&b));
    }

    #[test]
    fn dataset_is_balanced() {
        let params = GenParams {
            n_per_class: 12,
            len: 128,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let d = generate(&params, &mut rng);
        assert_eq!(d.n_series(), 24);
        assert_eq!(d.class_indices(0).len(), 12);
        assert_eq!(d.class_indices(1).len(), 12);
    }
}
