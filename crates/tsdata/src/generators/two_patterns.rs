//! Two-Patterns-style generator: four classes defined by the *order* of two
//! step events (up–up, up–down, down–up, down–down) placed at random
//! positions on a noisy baseline.
//!
//! Because the event positions vary per member, the classes are only
//! separable by measures that tolerate phase variation — the same property
//! the original Two Patterns dataset stresses.

use tserror::TsResult;
use tsrand::Rng;

use crate::dataset::Dataset;
use crate::generators::GenParams;
use crate::store::SeriesStore;

/// The four event-order classes.
pub const CLASSES: [&str; 4] = ["up-up", "up-down", "down-up", "down-down"];

/// Generates one series of length `m` for class `class ∈ 0..4`.
///
/// Class bits: bit 1 = first event direction, bit 0 = second event
/// direction (0 = up, 1 = down).
///
/// # Panics
///
/// Panics if `class > 3` or `m < 32`.
#[must_use]
pub fn generate_one<R: Rng>(class: usize, m: usize, noise: f64, rng: &mut R) -> Vec<f64> {
    assert!(class < 4, "two-patterns has exactly 4 classes");
    assert!(m >= 32, "two-patterns series must have at least 32 samples");
    let first_down = (class & 0b10) != 0;
    let second_down = (class & 0b01) != 0;

    let event_len = m / 8;
    // First event in the first third, second event in the last third, so
    // order is preserved while positions jitter.
    let p1 = rng.gen_range(m / 16..m / 3 - event_len / 2);
    let p2 = rng.gen_range(m / 2..m - event_len - 1);

    let mut s = vec![0.0; m];
    place_step(&mut s[p1..p1 + event_len], first_down);
    place_step(&mut s[p2..p2 + event_len], second_down);
    if noise > 0.0 {
        crate::distort::add_noise(&mut s, noise, rng);
    }
    s
}

/// Writes a ±step pulse into `window`: a ramp up to the level then back.
fn place_step(window: &mut [f64], down: bool) {
    let level = if down { -5.0 } else { 5.0 };
    let n = window.len();
    for (i, v) in window.iter_mut().enumerate() {
        // Trapezoid: rise over first quarter, hold, fall over last quarter.
        let q = n / 4;
        let shape = if i < q {
            i as f64 / q.max(1) as f64
        } else if i >= n - q {
            (n - 1 - i) as f64 / q.max(1) as f64
        } else {
            1.0
        };
        *v += level * shape;
    }
}

/// Generates a four-class Two-Patterns dataset.
#[must_use]
pub fn generate<R: Rng>(params: &GenParams, rng: &mut R) -> Dataset {
    let total = 4 * params.n_per_class;
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for class in 0..4 {
        for _ in 0..params.n_per_class {
            series.push(generate_one(class, params.len, params.noise, rng));
            labels.push(class);
        }
    }
    Dataset::new("two-patterns", series, labels)
}

/// Streams a Two-Patterns dataset directly into a [`SeriesStore`] — the
/// out-of-core twin of [`generate`] (identical RNG consumption, order,
/// and values; no nested-Vec materialization). Returns the class label
/// per row. Rows are pushed raw; z-normalize the store afterwards.
///
/// # Errors
///
/// Everything [`SeriesStore::push_row`] reports.
pub fn generate_into<R: Rng>(
    params: &GenParams,
    store: &mut SeriesStore,
    rng: &mut R,
) -> TsResult<Vec<usize>> {
    let mut labels = Vec::with_capacity(4 * params.n_per_class);
    for class in 0..4 {
        for _ in 0..params.n_per_class {
            let row = generate_one(class, params.len, params.noise, rng);
            store.push_row(&row)?;
            labels.push(class);
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::{generate, generate_into, generate_one};
    use crate::generators::GenParams;
    use crate::store::{ElemType, SeriesStore};
    use tsrand::StdRng;

    #[test]
    fn lengths_and_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in 0..4 {
            assert_eq!(generate_one(class, 64, 0.0, &mut rng).len(), 64);
        }
    }

    #[test]
    #[should_panic(expected = "4 classes")]
    fn rejects_bad_class() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = generate_one(4, 64, 0.0, &mut rng);
    }

    #[test]
    fn event_signs_match_class() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            // Class 0 (up-up): noiseless series must be non-negative.
            let s = generate_one(0, 128, 0.0, &mut rng);
            assert!(s.iter().all(|&v| v >= -1e-12));
            // Class 3 (down-down): non-positive.
            let s = generate_one(3, 128, 0.0, &mut rng);
            assert!(s.iter().all(|&v| v <= 1e-12));
            // Class 1 (up-down): positive mass first, negative later.
            let s = generate_one(1, 128, 0.0, &mut rng);
            let first_half: f64 = s[..64].iter().sum();
            let second_half: f64 = s[64..].iter().sum();
            assert!(first_half > 0.0 && second_half < 0.0);
        }
    }

    #[test]
    fn generate_into_matches_generate_bit_for_bit() {
        let params = GenParams {
            n_per_class: 4,
            len: 64,
            noise: 0.3,
            ..GenParams::default()
        };
        let nested = generate(&params, &mut StdRng::seed_from_u64(11));
        let mut store = SeriesStore::new(64, ElemType::F64);
        let labels = generate_into(&params, &mut store, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(labels, nested.labels);
        assert_eq!(store.to_rows().unwrap(), nested.series);
    }

    #[test]
    fn dataset_is_balanced() {
        let params = GenParams {
            n_per_class: 9,
            len: 96,
            noise: 0.2,
            ..GenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&params, &mut rng);
        assert_eq!(d.n_series(), 36);
        assert_eq!(d.n_classes(), 4);
        for class in 0..4 {
            assert_eq!(d.class_indices(class).len(), 9);
        }
    }
}
