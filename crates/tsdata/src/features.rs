//! Statistical feature extraction — the *feature-based* and *model-based*
//! clustering paradigms of paper Section 2.4.
//!
//! The paper contrasts raw-based clustering (its choice) with approaches
//! that first summarize each series by descriptive statistics
//! (characteristic-based clustering, reference [82]) or by fitted model
//! coefficients (ARIMA-based distances, reference [38]). This module
//! provides both representations so the `feature_based` experiment can
//! test the paper's §2.4 argument — that feature/model pipelines are
//! domain-sensitive — on the same collection:
//!
//! * [`feature_vector`] — a fixed battery of distribution, dependence, and
//!   spectral statistics,
//! * [`ar_coefficients`] — AR(p) model coefficients fitted with
//!   Levinson–Durbin recursion on the sample autocorrelations,
//! * [`standardize_features`] — per-dimension z-scoring across a dataset
//!   so Euclidean clustering of feature vectors is scale-free.

use crate::normalize::{mean, std_dev};

/// Sample autocorrelation of `x` at `lag` (biased estimator, the standard
/// choice for Levinson–Durbin). Returns 0 for degenerate inputs.
#[must_use]
pub fn autocorrelation(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if n == 0 || lag >= n {
        return 0.0;
    }
    let mu = mean(x);
    let denom: f64 = x.iter().map(|v| (v - mu) * (v - mu)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag).map(|t| (x[t] - mu) * (x[t + lag] - mu)).sum();
    num / denom
}

/// Sample skewness (0 for degenerate inputs).
#[must_use]
pub fn skewness(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mu = mean(x);
    let sigma = std_dev(x);
    if sigma == 0.0 {
        return 0.0;
    }
    x.iter().map(|v| ((v - mu) / sigma).powi(3)).sum::<f64>() / n as f64
}

/// Sample excess kurtosis (0 for degenerate inputs; 0 for a Gaussian).
#[must_use]
pub fn kurtosis(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mu = mean(x);
    let sigma = std_dev(x);
    if sigma == 0.0 {
        return 0.0;
    }
    x.iter().map(|v| ((v - mu) / sigma).powi(4)).sum::<f64>() / n as f64 - 3.0
}

/// Least-squares linear trend slope per unit time.
#[must_use]
pub fn trend_slope(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let tmean = (n - 1) as f64 / 2.0;
    let xmean = mean(x);
    let mut num = 0.0;
    let mut denom = 0.0;
    for (t, &v) in x.iter().enumerate() {
        let dt = t as f64 - tmean;
        num += dt * (v - xmean);
        denom += dt * dt;
    }
    if denom == 0.0 {
        0.0
    } else {
        num / denom
    }
}

/// Fits AR(`order`) coefficients with the Levinson–Durbin recursion on the
/// sample autocorrelations (the model-based representation of [38]).
///
/// Returns `order` coefficients `φ₁..φ_p` such that
/// `x[t] ≈ Σ φ_k x[t−k]`. Degenerate inputs yield all zeros.
///
/// # Panics
///
/// Panics if `order == 0`.
#[must_use]
pub fn ar_coefficients(x: &[f64], order: usize) -> Vec<f64> {
    assert!(order > 0, "AR order must be positive");
    let r: Vec<f64> = (0..=order).map(|k| autocorrelation(x, k)).collect();
    if r[0] == 0.0 {
        return vec![0.0; order];
    }
    // Levinson–Durbin.
    let mut phi = vec![0.0; order];
    let mut prev = vec![0.0; order];
    let mut err = r[0];
    for k in 0..order {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= prev[j] * r[k - j];
        }
        if err.abs() < 1e-300 {
            break;
        }
        let reflection = acc / err;
        phi[..k].copy_from_slice(&prev[..k]);
        for j in 0..k {
            phi[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        phi[k] = reflection;
        err *= 1.0 - reflection * reflection;
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    phi
}

/// Spectral entropy of the series: Shannon entropy of the normalized
/// power spectrum, scaled to `[0, 1]` (1 = white noise, 0 = pure tone).
#[must_use]
pub fn spectral_entropy(x: &[f64]) -> f64 {
    let m = x.len();
    if m < 4 {
        return 0.0;
    }
    let n = tsfft::next_pow2(m);
    let plan = tsfft::Radix2Fft::new(n);
    let spec = plan.forward_vec(tsfft::real::pad_to_complex(x, n));
    // One-sided power spectrum, DC excluded (dominated by the mean).
    let powers: Vec<f64> = spec[1..n / 2].iter().map(|z| z.norm_sqr()).collect();
    let total: f64 = powers.iter().sum();
    // A single usable bin carries no distributional information, and the
    // normalizer ln(len) would be zero.
    if total <= 0.0 || powers.len() < 2 {
        return 0.0;
    }
    let entropy: f64 = powers
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = p / total;
            -q * q.ln()
        })
        .sum();
    entropy / (powers.len() as f64).ln()
}

/// Names of the dimensions produced by [`feature_vector`], in order.
pub const FEATURE_NAMES: [&str; 10] = [
    "mean",
    "std",
    "skewness",
    "kurtosis",
    "trend",
    "acf1",
    "acf2",
    "acf_season",
    "spectral_entropy",
    "turning_rate",
];

/// Extracts the 10-dimensional characteristic feature vector of a series.
#[must_use]
pub fn feature_vector(x: &[f64]) -> Vec<f64> {
    let m = x.len();
    // Turning points: local extrema rate, a classic complexity feature.
    let turning = if m >= 3 {
        x.windows(3)
            .filter(|w| (w[1] > w[0] && w[1] > w[2]) || (w[1] < w[0] && w[1] < w[2]))
            .count() as f64
            / (m - 2) as f64
    } else {
        0.0
    };
    let season_lag = (m / 8).max(3).min(m.saturating_sub(1).max(1));
    vec![
        mean(x),
        std_dev(x),
        skewness(x),
        kurtosis(x),
        trend_slope(x),
        autocorrelation(x, 1),
        autocorrelation(x, 2),
        autocorrelation(x, season_lag),
        spectral_entropy(x),
        turning,
    ]
}

/// z-scores each feature dimension across the dataset (mean 0, std 1 per
/// column), leaving constant columns at zero.
#[must_use]
pub fn standardize_features(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let dims = rows[0].len();
    let n = rows.len() as f64;
    let mut out = rows.to_vec();
    for d in 0..dims {
        let col_mean: f64 = rows.iter().map(|r| r[d]).sum::<f64>() / n;
        let col_var: f64 = rows.iter().map(|r| (r[d] - col_mean).powi(2)).sum::<f64>() / n;
        let col_std = col_var.sqrt();
        for row in &mut out {
            row[d] = if col_std > 0.0 {
                (row[d] - col_mean) / col_std
            } else {
                0.0
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{
        ar_coefficients, autocorrelation, feature_vector, kurtosis, skewness, spectral_entropy,
        standardize_features, trend_slope, FEATURE_NAMES,
    };

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    fn autocorrelation_basics() {
        // Lag 0 is always 1 for non-degenerate series.
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&x, 0) - 1.0).abs() < 1e-12);
        // Alternating series has strongly negative lag-1 ACF.
        let alt: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&alt, 1) < -0.9);
        // Degenerate cases.
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[2.0, 2.0], 1), 0.0);
    }

    #[test]
    fn skewness_and_kurtosis_signatures() {
        // Symmetric data: ~0 skewness.
        let sym: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.2).sin()).collect();
        assert!(skewness(&sym).abs() < 0.2);
        // Right-skewed data: positive skewness.
        let skewed: Vec<f64> = (0..100)
            .map(|i| if i % 10 == 0 { 10.0 } else { 0.0 })
            .collect();
        assert!(skewness(&skewed) > 1.0);
        // Two-point distribution has minimal kurtosis (-2).
        let binary: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((kurtosis(&binary) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn trend_slope_recovers_linear() {
        let x: Vec<f64> = (0..30).map(|i| 3.0 + 0.7 * i as f64).collect();
        assert!((trend_slope(&x) - 0.7).abs() < 1e-9);
        let flat = vec![2.0; 10];
        assert_eq!(trend_slope(&flat), 0.0);
    }

    #[test]
    fn ar1_coefficient_recovered() {
        // Simulate AR(1) with φ = 0.8.
        let mut next = lcg(5);
        let mut x = vec![0.0];
        for _ in 0..5000 {
            let prev = *x.last().unwrap();
            x.push(0.8 * prev + next());
        }
        let phi = ar_coefficients(&x, 1);
        assert!((phi[0] - 0.8).abs() < 0.05, "phi {phi:?}");
    }

    #[test]
    fn ar2_coefficients_recovered() {
        // AR(2): x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + noise.
        let mut next = lcg(9);
        let mut x = vec![0.0, 0.0];
        for _ in 0..20000 {
            let n = x.len();
            x.push(0.5 * x[n - 1] + 0.3 * x[n - 2] + next());
        }
        let phi = ar_coefficients(&x, 2);
        assert!((phi[0] - 0.5).abs() < 0.05, "{phi:?}");
        assert!((phi[1] - 0.3).abs() < 0.05, "{phi:?}");
    }

    #[test]
    fn ar_degenerate_input_is_zero() {
        assert_eq!(ar_coefficients(&[1.0; 10], 3), vec![0.0; 3]);
    }

    #[test]
    fn spectral_entropy_separates_tone_from_noise() {
        let tone: Vec<f64> = (0..256)
            .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / 256.0).sin())
            .collect();
        let mut next = lcg(11);
        let noise: Vec<f64> = (0..256).map(|_| next()).collect();
        let se_tone = spectral_entropy(&tone);
        let se_noise = spectral_entropy(&noise);
        assert!(se_tone < 0.4, "tone {se_tone}");
        assert!(se_noise > 0.8, "noise {se_noise}");
        assert!((0.0..=1.0).contains(&se_tone) && (0.0..=1.0 + 1e-9).contains(&se_noise));
    }

    #[test]
    fn feature_vector_dimensions_match_names() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).cos()).collect();
        let f = feature_vector(&x);
        assert_eq!(f.len(), FEATURE_NAMES.len());
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn standardize_features_column_stats() {
        let rows = vec![
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
        ];
        let std = standardize_features(&rows);
        for d in 0..2 {
            let mean: f64 = std.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = std.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
        // Constant column zeroed.
        assert!(std.iter().all(|r| r[2] == 0.0));
    }
}
