//! Time-series normalizations (paper Sections 2.2, 3.1, and Appendix A).
//!
//! * **z-normalization** removes amplitude (scaling) and offset
//!   (translation) distortions and is applied to every dataset before any
//!   experiment.
//! * **ValuesBetween0-1** rescales into the unit interval (Appendix A).
//! * **OptimalScaling** computes the least-squares scaling coefficient
//!   `c = x·yᵀ / y·yᵀ` used for pairwise comparisons in Appendix A.

use tserror::{ensure_finite, TsError, TsResult};

/// Mean of a slice (0 for an empty slice).
#[inline]
#[must_use]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population standard deviation of a slice (0 for an empty slice).
///
/// The paper's MATLAB implementation uses the population form (divide by
/// `m`) inside z-normalization; we match it.
#[must_use]
pub fn std_dev(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mu = mean(x);
    (x.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / x.len() as f64).sqrt()
}

/// z-normalizes in place: zero mean, unit (population) standard deviation.
///
/// A constant sequence has zero variance; it is mapped to all zeros rather
/// than dividing by zero.
pub fn z_normalize_in_place(x: &mut [f64]) {
    let mu = mean(x);
    let sigma = std_dev(x);
    if sigma > 0.0 {
        for v in x.iter_mut() {
            *v = (*v - mu) / sigma;
        }
    } else {
        for v in x.iter_mut() {
            *v = 0.0;
        }
    }
}

/// Returns a z-normalized copy of `x`.
///
/// # Example
///
/// ```
/// use tsdata::normalize::z_normalize;
///
/// let z = z_normalize(&[10.0, 20.0, 30.0]);
/// let mean: f64 = z.iter().sum::<f64>() / 3.0;
/// assert!(mean.abs() < 1e-12);
/// ```
#[must_use]
pub fn z_normalize(x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    z_normalize_in_place(&mut out);
    out
}

/// Fallible z-normalization that *distinguishes* the degenerate cases the
/// infallible [`z_normalize`] silently maps to zeros.
///
/// Shorthand for [`try_z_normalize_series`] with series index 0.
///
/// # Errors
///
/// * [`TsError::EmptyInput`] for an empty slice,
/// * [`TsError::NonFinite`] at the first NaN/infinite sample,
/// * [`TsError::ConstantSeries`] for zero variance (no well-defined
///   z-score exists; callers decide whether to zero-fill, drop, or abort).
pub fn try_z_normalize(x: &[f64]) -> TsResult<Vec<f64>> {
    try_z_normalize_series(x, 0)
}

/// [`try_z_normalize`] with an explicit series index, so collection-level
/// callers (dataset loaders, the chaos suite) can report *which* series
/// was degenerate.
///
/// # Errors
///
/// Same as [`try_z_normalize`], with `series` embedded in the error.
pub fn try_z_normalize_series(x: &[f64], series: usize) -> TsResult<Vec<f64>> {
    if x.is_empty() {
        return Err(TsError::EmptyInput);
    }
    ensure_finite(x, series)?;
    let sigma = std_dev(x);
    // A non-finite sigma means the variance overflowed f64 (samples near
    // ±MAX): every z-score collapses to 0, i.e. the output would be
    // constant — report it as such instead of returning an all-zero
    // series that later divides by a zero norm.
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(TsError::ConstantSeries { series });
    }
    let mu = mean(x);
    Ok(x.iter().map(|v| (v - mu) / sigma).collect())
}

/// Rescales `x` into `[0, 1]` (`ValuesBetween0-1` of Appendix A).
///
/// A constant sequence maps to all zeros.
#[must_use]
pub fn values_between_0_1(x: &[f64]) -> Vec<f64> {
    let (min, max) = min_max(x);
    let range = max - min;
    if range > 0.0 {
        x.iter().map(|v| (v - min) / range).collect()
    } else {
        vec![0.0; x.len()]
    }
}

/// Least-squares optimal scaling coefficient `c = (x·y) / (y·y)`
/// (`OptimalScaling` of Appendix A): `c·y` is the best scalar multiple of
/// `y` approximating `x`.
///
/// Returns 0 when `y` is the zero vector.
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn optimal_scaling_coefficient(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sequences must have equal length");
    let denom: f64 = y.iter().map(|v| v * v).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    num / denom
}

/// Returns `(min, max)` of a slice; `(0, 0)` when empty.
#[must_use]
pub fn min_max(x: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in x {
        min = min.min(v);
        max = max.max(v);
    }
    if x.is_empty() {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::{
        mean, min_max, optimal_scaling_coefficient, std_dev, try_z_normalize,
        try_z_normalize_series, values_between_0_1, z_normalize, z_normalize_in_place,
    };
    use tserror::TsError;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), 0.0);
        assert!((std_dev(&[2.0, 2.0, 2.0])).abs() < 1e-12);
        // Population std of [1,2,3] is sqrt(2/3).
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn z_normalization_properties() {
        let z = z_normalize(&[3.0, 7.0, 11.0, 2.0, 9.0]);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalization_is_idempotent() {
        let z1 = z_normalize(&[5.0, -2.0, 8.0, 1.0]);
        let z2 = z_normalize(&z1);
        for (a, b) in z1.iter().zip(z2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn z_normalization_removes_scale_and_offset() {
        let x = [1.0, 5.0, 2.0, 8.0];
        let transformed: Vec<f64> = x.iter().map(|v| 3.5 * v - 100.0).collect();
        let zx = z_normalize(&x);
        let zt = z_normalize(&transformed);
        for (a, b) in zx.iter().zip(zt.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_series_maps_to_zeros() {
        let mut x = vec![4.0; 5];
        z_normalize_in_place(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
        assert!(values_between_0_1(&[7.0; 3]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn try_z_normalize_matches_on_clean_data() {
        let x = [3.0, 7.0, 11.0, 2.0, 9.0];
        assert_eq!(try_z_normalize(&x), Ok(z_normalize(&x)));
    }

    #[test]
    fn try_z_normalize_distinguishes_degenerate_cases() {
        assert_eq!(try_z_normalize(&[]), Err(TsError::EmptyInput));
        assert_eq!(
            try_z_normalize(&[1.0, f64::NAN]),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        );
        assert_eq!(
            try_z_normalize(&[4.0, 4.0, 4.0]),
            Err(TsError::ConstantSeries { series: 0 })
        );
        // The series index threads through to the error.
        assert_eq!(
            try_z_normalize_series(&[4.0, 4.0], 7),
            Err(TsError::ConstantSeries { series: 7 })
        );
        // Finite-but-huge samples overflow the variance to infinity;
        // the z-scores would all collapse to 0 (a constant output), so
        // the result is the same typed error, never an all-zero vector.
        assert_eq!(
            try_z_normalize_series(&[f64::MAX, 1.0, -2.0, 3.0], 5),
            Err(TsError::ConstantSeries { series: 5 })
        );
        assert_eq!(
            try_z_normalize_series(&[f64::INFINITY], 3),
            Err(TsError::NonFinite {
                series: 3,
                index: 0
            })
        );
    }

    #[test]
    fn unit_interval_rescaling() {
        let y = values_between_0_1(&[10.0, 20.0, 15.0]);
        assert!((y[0]).abs() < 1e-12);
        assert!((y[1] - 1.0).abs() < 1e-12);
        assert!((y[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn optimal_scaling_recovers_known_factor() {
        let y = [1.0, 2.0, 3.0];
        let x: Vec<f64> = y.iter().map(|v| 2.5 * v).collect();
        assert!((optimal_scaling_coefficient(&x, &y) - 2.5).abs() < 1e-12);
        assert_eq!(optimal_scaling_coefficient(&[1.0, 1.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn optimal_scaling_minimizes_residual() {
        let x = [1.0, 4.0, -2.0, 3.0];
        let y = [0.5, 2.5, -1.0, 1.0];
        let c = optimal_scaling_coefficient(&x, &y);
        let resid = |cc: f64| -> f64 {
            x.iter()
                .zip(y.iter())
                .map(|(a, b)| (a - cc * b) * (a - cc * b))
                .sum()
        };
        let base = resid(c);
        for delta in [-0.1, -0.01, 0.01, 0.1] {
            assert!(resid(c + delta) >= base - 1e-12);
        }
    }

    #[test]
    fn min_max_edges() {
        assert_eq!(min_max(&[]), (0.0, 0.0));
        assert_eq!(min_max(&[3.0]), (3.0, 3.0));
        assert_eq!(min_max(&[-1.0, 4.0, 0.0]), (-1.0, 4.0));
    }
}
