//! Time-series datasets, normalizations, distortions, and synthetic
//! generators.
//!
//! This crate is the data substrate of the k-Shape reproduction. The paper
//! evaluates on the UCR archive — 48 class-labeled datasets — which is not
//! redistributable here, so [`collection`] builds a deterministic synthetic
//! stand-in: 48 labeled datasets spanning eight shape families, each
//! exercising the distortions of Section 2.2 of the paper (amplitude
//! scaling, offset translation, phase shift, local warping, noise,
//! occlusion). The UCR text format is supported by [`ucr`] so real archives
//! drop in when available.

//! For the rare `m ≫ n` regime, [`reduce`] provides the PAA and Haar-DWT
//! length reductions the paper points to (Section 3.3, reference [10]);
//! [`features`] provides the characteristic-statistics and AR-coefficient
//! representations of the feature-/model-based paradigms the paper's
//! Section 2.4 contrasts with raw-based clustering (references [82], [38]).

#![warn(missing_docs)]

pub mod collection;
pub mod corrupt;
pub mod dataset;
pub mod distort;
pub mod features;
pub mod generators;
pub mod normalize;
pub mod reduce;
pub mod store;
pub mod ucr;

pub use collection::{synthetic_collection, CollectionSpec};
pub use dataset::{Dataset, NormalizeReport, SplitDataset};
pub use normalize::{try_z_normalize, z_normalize};
pub use store::{ElemType, SeriesStore, SeriesView, SpillConfig, SpillStats};
