//! Contiguous, optionally out-of-core series storage: the workspace's
//! scale data plane.
//!
//! [`SeriesStore`] keeps an n×m collection row-major in **one** contiguous
//! buffer (`f64` or `f32` elements, [`ElemType`]) instead of the
//! one-allocation-per-series `Vec<Vec<f64>>` the rest of the stack grew up
//! on. For collections larger than RAM it adds a zero-dependency
//! file-backed **spill tier**: rows accumulate in an in-memory tail
//! segment, full segments are sealed to disk (atomic tmp+rename, checksum
//! trailer), and reads go through a small LRU-pinned resident window so
//! peak RSS stays bounded by `O(window + tail)` regardless of n.
//!
//! Consumers access rows through the [`SeriesView`] trait, whose
//! borrow-or-copy contract lets resident `f64` stores hand out direct
//! `&[f64]` slices (zero copies, zero allocations) while `f32` and
//! spilled stores decode into a caller-owned scratch buffer. A blanket
//! impl for `[Vec<f64>]` keeps every existing nested-Vec call site
//! working unchanged — and bit-identical, since the slice path returns
//! the very same `&[f64]` the old code indexed.
//!
//! Invariants (see DESIGN.md §10 "Data plane"):
//!
//! * every row pushed is validated (length + finiteness) **once**, at
//!   [`SeriesStore::push_row`]; readers may assume clean data;
//! * sealed segments are immutable except through
//!   [`SeriesStore::z_normalize_in_place`], which rewrites them with the
//!   same atomic tmp+rename protocol `CheckpointStore` uses;
//! * a torn, bit-flipped, or otherwise invalid segment file surfaces as
//!   [`TsError::CorruptData`] — never a decode panic, never silent
//!   garbage rows (an FNV-1a checksum over header+payload guards the
//!   whole file);
//! * the resident window never holds more than the configured number of
//!   decoded segments ([`SpillConfig::resident_segments`]), verified by
//!   [`SpillStats::max_resident`].

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tserror::{ensure_finite, TsError, TsResult};

use crate::normalize::{std_dev, z_normalize_in_place};

/// Element width of a [`SeriesStore`] buffer.
///
/// `F32` halves memory and disk traffic at the cost of ~7 significant
/// decimal digits per sample. After z-normalization samples live in a
/// few-units range where `f32` keeps ~1e-7 absolute error — far below
/// generator noise — so cluster *labels* on well-separated data are
/// unaffected (see DESIGN.md §10 for when `f32` is safe). Distances and
/// centroids are always *computed* in `f64`; only storage narrows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    /// 8-byte IEEE-754 double precision (lossless round-trip).
    F64,
    /// 4-byte IEEE-754 single precision (storage-only narrowing).
    F32,
}

impl ElemType {
    /// Bytes per stored sample.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            ElemType::F64 => 8,
            ElemType::F32 => 4,
        }
    }

    /// Stable lowercase name (`"f64"` / `"f32"`), used in config tags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ElemType::F64 => "f64",
            ElemType::F32 => "f32",
        }
    }

    /// Wire tag for segment headers.
    fn tag(self) -> u8 {
        match self {
            ElemType::F64 => 0,
            ElemType::F32 => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ElemType::F64),
            1 => Some(ElemType::F32),
            _ => None,
        }
    }
}

/// Shape of one row of a [`SeriesView`]: channel count and per-channel
/// length.
///
/// A row with `channels = c` and `len = l` occupies `c · l` contiguous
/// samples in **channel-major** order: all `l` samples of channel 0,
/// then all of channel 1, and so on. Univariate fixed-length views
/// report `channels = 1, len = series_len()` for every row, which makes
/// the layout contract degenerate to the original flat-row one — the
/// compatibility guarantee every pre-redesign consumer relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowShape {
    /// Number of channels (≥ 1).
    pub channels: usize,
    /// Samples per channel for this row.
    pub len: usize,
}

impl RowShape {
    /// Total samples the row occupies (`channels · len`) — the length of
    /// the slice [`SeriesView::try_row`] returns for it.
    #[must_use]
    pub fn samples(self) -> usize {
        self.channels * self.len
    }
}

/// Read access to an n-row collection of series.
///
/// The one method that matters, [`try_row`](SeriesView::try_row), has a
/// borrow-*or*-copy contract: implementations return a slice borrowed
/// either from themselves (resident `f64` storage — the zero-copy fast
/// path) or from the caller's `scratch` buffer (decoded `f32` rows,
/// spilled segments copied out from under the window lock). Callers must
/// therefore treat the returned slice as invalidated by the next
/// `try_row` call with the same scratch.
///
/// # Shape contract
///
/// Views are shape-aware: [`row_shape`](SeriesView::row_shape) reports
/// each row's [`RowShape`] and [`channels`](SeriesView::channels) the
/// collection-wide channel count. The returned `try_row` slice always
/// holds `row_shape(i).samples()` values in channel-major order (see
/// [`RowShape`]). The defaults report `channels = 1, len = series_len()`
/// — exactly the pre-redesign flat layout — so univariate fixed-length
/// impls (`[Vec<f64>]`, [`SeriesStore`]) need no code and stay
/// bit-identical.
///
/// `Sync` is a supertrait so engines can fan row reads across
/// `std::thread::scope` workers, each with its own scratch.
pub trait SeriesView: Sync {
    /// Number of series.
    fn n_series(&self) -> usize;

    /// Per-channel series length m (0 only for empty views). For ragged
    /// views this is the plan-sizing bound: the maximum row length.
    fn series_len(&self) -> usize;

    /// Collection-wide channel count (default 1). Rows of a `c`-channel
    /// view hold `c · series_len()` samples, channel-major.
    fn channels(&self) -> usize {
        1
    }

    /// Whether rows may differ in length. `false` (the default) promises
    /// every row has `len == series_len()`, which lets engines cache one
    /// FFT plan and skip per-row length dispatch.
    fn is_ragged(&self) -> bool {
        false
    }

    /// Shape of row `i`. The default reports the fixed collection shape;
    /// ragged views override it with the row's true length.
    fn row_shape(&self, i: usize) -> RowShape {
        let _ = i;
        RowShape {
            channels: self.channels(),
            len: self.series_len(),
        }
    }

    /// Returns row `i`, either borrowed from storage or staged into
    /// `scratch`. The slice holds `row_shape(i).samples()` values,
    /// channel-major.
    ///
    /// # Errors
    ///
    /// [`TsError::CorruptData`] when backing storage fails validation
    /// (spilled tiers only — in-memory views are infallible).
    ///
    /// # Panics
    ///
    /// Implementations may panic on `i >= n_series()` — an
    /// out-of-bounds index is a caller bug, not a data fault.
    fn try_row<'s>(&'s self, i: usize, scratch: &'s mut Vec<f64>) -> TsResult<&'s [f64]>;
}

/// Channel-major reinterpretation of a fixed-length univariate view.
///
/// Wraps any [`SeriesView`] whose rows hold `c · m` samples and exposes
/// them as `c`-channel rows of per-channel length `m`: `try_row` passes
/// the underlying flat slice through untouched (channel-major by
/// construction), while [`channels`](SeriesView::channels) and
/// [`series_len`](SeriesView::series_len) report the reinterpreted
/// shape. This is how multichannel collections ride the existing
/// storage tiers — a 3-channel [`SeriesStore`] is just a store with
/// `m = 3·len` wrapped in a `ChannelView`, spill segments and all.
#[derive(Debug)]
pub struct ChannelView<'a, V: SeriesView + ?Sized> {
    inner: &'a V,
    channels: usize,
}

impl<'a, V: SeriesView + ?Sized> ChannelView<'a, V> {
    /// Reinterprets `inner` as `channels`-channel rows.
    ///
    /// # Errors
    ///
    /// [`TsError::LengthMismatch`] when `channels == 0` or the inner
    /// row length is not a multiple of `channels`, or when `inner` is
    /// itself multichannel or ragged (reinterpretation needs the flat
    /// univariate layout).
    pub fn new(inner: &'a V, channels: usize) -> TsResult<Self> {
        let flat = inner.series_len();
        if channels == 0 || inner.channels() != 1 || inner.is_ragged() || !flat.is_multiple_of(channels) {
            return Err(TsError::LengthMismatch {
                expected: channels.max(1),
                found: flat,
                series: 0,
            });
        }
        Ok(ChannelView { inner, channels })
    }
}

impl<'a, V: SeriesView + ?Sized> SeriesView for ChannelView<'a, V> {
    fn n_series(&self) -> usize {
        self.inner.n_series()
    }

    fn series_len(&self) -> usize {
        self.inner.series_len() / self.channels
    }

    fn channels(&self) -> usize {
        self.channels
    }

    fn try_row<'s>(&'s self, i: usize, scratch: &'s mut Vec<f64>) -> TsResult<&'s [f64]> {
        self.inner.try_row(i, scratch)
    }
}

impl SeriesView for [Vec<f64>] {
    fn n_series(&self) -> usize {
        self.len()
    }

    fn series_len(&self) -> usize {
        self.first().map_or(0, Vec::len)
    }

    fn try_row<'s>(&'s self, i: usize, _scratch: &'s mut Vec<f64>) -> TsResult<&'s [f64]> {
        Ok(&self[i])
    }
}

/// Spill-tier tuning for [`SeriesStore::spilled`].
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory for segment files (created if absent). The store owns
    /// the segment files it writes and removes them on drop.
    pub dir: PathBuf,
    /// Rows per sealed segment (the spill granularity). Default 1024.
    pub rows_per_segment: usize,
    /// Decoded segments the LRU window may pin in memory at once.
    /// Default 2 — one being read, one lookahead.
    pub resident_segments: usize,
}

impl SpillConfig {
    /// Config with default segment size (1024 rows) and window (2).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            rows_per_segment: 1024,
            resident_segments: 2,
        }
    }

    /// Sets the rows-per-segment granularity (min 1).
    #[must_use]
    pub fn rows_per_segment(mut self, rows: usize) -> Self {
        self.rows_per_segment = rows.max(1);
        self
    }

    /// Sets the resident-window capacity in segments (min 1).
    #[must_use]
    pub fn resident_segments(mut self, segments: usize) -> Self {
        self.resident_segments = segments.max(1);
        self
    }
}

/// Counters proving the resident window actually bounds memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// Segment decodes from disk (window misses).
    pub loads: u64,
    /// Row reads served from an already-resident segment.
    pub hits: u64,
    /// Segments dropped from the window to respect the cap.
    pub evictions: u64,
    /// High-water mark of simultaneously resident decoded segments.
    pub max_resident: usize,
    /// Sealed segments currently on disk.
    pub sealed_segments: usize,
}

/// LRU window over decoded segments, front = most recent.
struct WindowState {
    /// `(segment index, decoded rows)`, at most `cap` entries.
    slots: Vec<(usize, Vec<f64>)>,
    cap: usize,
    loads: u64,
    hits: u64,
    evictions: u64,
    max_resident: usize,
}

impl WindowState {
    fn new(cap: usize) -> Self {
        WindowState {
            slots: Vec::with_capacity(cap),
            cap,
            loads: 0,
            hits: 0,
            evictions: 0,
            max_resident: 0,
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
    }
}

/// File-backed storage tier: sealed immutable segments plus an open
/// in-memory tail (always staged as `f64`; narrowed on seal when the
/// store is `f32`).
struct SpillTier {
    cfg: SpillConfig,
    elem: ElemType,
    m: usize,
    /// Number of sealed segments on disk (`seg_000000.bin` …).
    sealed: usize,
    /// Open tail rows, row-major `f64`.
    tail: Vec<f64>,
    window: Mutex<WindowState>,
}

const SEGMENT_MAGIC: &[u8; 4] = b"TSSG";
const SEGMENT_VERSION: u8 = 1;
/// magic(4) + version(1) + elem(1) + reserved(2) + m(8) + rows(8)
const SEGMENT_HEADER: usize = 24;
const SEGMENT_TRAILER: usize = 8; // FNV-1a checksum

/// FNV-1a 64-bit over `bytes` — the segment integrity check. Not
/// cryptographic; catches torn writes, truncation, and bit flips.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> TsError {
    TsError::CorruptData {
        context: format!("spill segment {}: {what}", path.display()),
    }
}

impl SpillTier {
    fn new(m: usize, elem: ElemType, cfg: SpillConfig) -> TsResult<Self> {
        fs::create_dir_all(&cfg.dir).map_err(|e| corrupt(&cfg.dir, format!("mkdir: {e}")))?;
        let window = Mutex::new(WindowState::new(cfg.resident_segments));
        Ok(SpillTier {
            elem,
            m,
            sealed: 0,
            tail: Vec::new(),
            window,
            cfg,
        })
    }

    fn segment_path(&self, seg: usize) -> PathBuf {
        self.cfg.dir.join(format!("seg_{seg:06}.bin"))
    }

    fn tail_rows(&self) -> usize {
        self.tail.len() / self.m
    }

    fn push_row(&mut self, row: &[f64]) -> TsResult<()> {
        self.tail.extend_from_slice(row);
        if self.tail_rows() == self.cfg.rows_per_segment {
            self.seal_tail()?;
        }
        Ok(())
    }

    /// Encodes the tail into the next sealed segment (tmp+rename, like
    /// `CheckpointStore`) and clears it.
    fn seal_tail(&mut self) -> TsResult<()> {
        let rows = self.tail_rows();
        debug_assert!(rows > 0);
        let bytes = encode_segment(&self.tail, rows, self.m, self.elem);
        let path = self.segment_path(self.sealed);
        let tmp = path.with_extension("bin.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
            drop(f);
            fs::rename(&tmp, &path)
        };
        write().map_err(|e| corrupt(&path, format!("write: {e}")))?;
        self.sealed += 1;
        self.tail.clear();
        Ok(())
    }

    /// Copies row `i` of a sealed segment into `scratch` through the LRU
    /// window. The copy is what lets the borrow escape the window lock.
    fn fetch_sealed<'s>(&self, i: usize, scratch: &'s mut Vec<f64>) -> TsResult<&'s [f64]> {
        let seg = i / self.cfg.rows_per_segment;
        let off = (i % self.cfg.rows_per_segment) * self.m;
        let mut w = self
            .window
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let pos = w.slots.iter().position(|(s, _)| *s == seg);
        let slot = match pos {
            Some(p) => {
                w.hits += 1;
                // Move-to-front keeps eviction order LRU.
                let entry = w.slots.remove(p);
                w.slots.insert(0, entry);
                0
            }
            None => {
                let decoded = decode_segment(
                    &self.segment_path(seg),
                    self.m,
                    self.elem,
                    self.cfg.rows_per_segment,
                )?;
                w.loads += 1;
                w.slots.insert(0, (seg, decoded));
                while w.slots.len() > w.cap {
                    w.slots.pop();
                    w.evictions += 1;
                }
                w.max_resident = w.max_resident.max(w.slots.len());
                0
            }
        };
        scratch.clear();
        scratch.extend_from_slice(&w.slots[slot].1[off..off + self.m]);
        Ok(&scratch[..])
    }

    /// Rewrites every sealed segment with z-normalized rows (atomic
    /// per-segment), normalizes the tail, and drops the now-stale window.
    fn z_normalize(&mut self) -> TsResult<crate::dataset::NormalizeReport> {
        let mut report = crate::dataset::NormalizeReport::default();
        for seg in 0..self.sealed {
            let path = self.segment_path(seg);
            let mut rows = decode_segment(&path, self.m, self.elem, self.cfg.rows_per_segment)?;
            normalize_rows(&mut rows, self.m, &mut report);
            let n_rows = rows.len() / self.m;
            let bytes = encode_segment(&rows, n_rows, self.m, self.elem);
            let tmp = path.with_extension("bin.tmp");
            let write = || -> std::io::Result<()> {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&bytes)?;
                f.sync_data()?;
                drop(f);
                fs::rename(&tmp, &path)
            };
            write().map_err(|e| corrupt(&path, format!("rewrite: {e}")))?;
        }
        let m = self.m;
        normalize_rows(&mut self.tail, m, &mut report);
        self.window
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        Ok(report)
    }

    fn stats(&self) -> SpillStats {
        let w = self
            .window
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        SpillStats {
            loads: w.loads,
            hits: w.hits,
            evictions: w.evictions,
            max_resident: w.max_resident,
            sealed_segments: self.sealed,
        }
    }
}

impl Drop for SpillTier {
    /// Spill segments are scratch data (regenerable from the generator
    /// seed), so the tier removes its own files on drop. A `kill -9`
    /// leaks them; sweep coordinators wipe their spill directories
    /// before reuse.
    fn drop(&mut self) {
        for seg in 0..self.sealed {
            let _ = fs::remove_file(self.segment_path(seg));
        }
        let _ = fs::remove_dir(&self.cfg.dir);
    }
}

/// Z-normalizes each m-length row of `rows` in place with the same
/// semantics as [`Dataset::try_z_normalize`]: constant rows zero-fill
/// and count as `constant`, everything else normalizes cleanly.
///
/// [`Dataset::try_z_normalize`]: crate::dataset::Dataset::try_z_normalize
fn normalize_rows(rows: &mut [f64], m: usize, report: &mut crate::dataset::NormalizeReport) {
    for row in rows.chunks_mut(m) {
        if std_dev(row) > 0.0 {
            report.normalized += 1;
        } else {
            report.constant += 1;
        }
        z_normalize_in_place(row);
    }
}

/// Serializes `rows` (row-major f64 staging) into the segment wire
/// format, narrowing to the store's element type.
fn encode_segment(rows: &[f64], n_rows: usize, m: usize, elem: ElemType) -> Vec<u8> {
    let payload = n_rows * m * elem.bytes();
    let mut bytes = Vec::with_capacity(SEGMENT_HEADER + payload + SEGMENT_TRAILER);
    bytes.extend_from_slice(SEGMENT_MAGIC);
    bytes.push(SEGMENT_VERSION);
    bytes.push(elem.tag());
    bytes.extend_from_slice(&[0u8; 2]);
    bytes.extend_from_slice(&(m as u64).to_le_bytes());
    bytes.extend_from_slice(&(n_rows as u64).to_le_bytes());
    match elem {
        ElemType::F64 => {
            for v in rows {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        ElemType::F32 => {
            for v in rows {
                bytes.extend_from_slice(&(*v as f32).to_le_bytes());
            }
        }
    }
    let sum = fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Reads and validates one sealed segment, widening to `f64`.
///
/// Every structural property is checked before any sample is
/// interpreted: magic, version, element tag, m, the exact expected row
/// count, total length, and the FNV-1a checksum over header+payload.
/// Any violation — torn write, bit flip, garbage prefix, wrong file —
/// is a typed [`TsError::CorruptData`].
fn decode_segment(path: &Path, m: usize, elem: ElemType, expect_rows: usize) -> TsResult<Vec<f64>> {
    let bytes = fs::read(path).map_err(|e| corrupt(path, format!("read: {e}")))?;
    if bytes.len() < SEGMENT_HEADER + SEGMENT_TRAILER {
        return Err(corrupt(path, "shorter than header+trailer"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - SEGMENT_TRAILER);
    let stored_sum = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a64(body) != stored_sum {
        return Err(corrupt(path, "checksum mismatch"));
    }
    if &body[0..4] != SEGMENT_MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    if body[4] != SEGMENT_VERSION {
        return Err(corrupt(path, format!("unknown version {}", body[4])));
    }
    let file_elem = ElemType::from_tag(body[5]).ok_or_else(|| corrupt(path, "bad element tag"))?;
    if file_elem != elem {
        return Err(corrupt(
            path,
            format!("element type {} != store {}", file_elem.name(), elem.name()),
        ));
    }
    let file_m = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")) as usize;
    if file_m != m {
        return Err(corrupt(
            path,
            format!("series length {file_m} != store {m}"),
        ));
    }
    let rows = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")) as usize;
    if rows != expect_rows {
        return Err(corrupt(
            path,
            format!("row count {rows} != expected {expect_rows}"),
        ));
    }
    let payload = &body[SEGMENT_HEADER..];
    if payload.len() != rows * m * elem.bytes() {
        return Err(corrupt(path, "payload length mismatch"));
    }
    let mut out = Vec::with_capacity(rows * m);
    match elem {
        ElemType::F64 => {
            for chunk in payload.chunks_exact(8) {
                out.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
        }
        ElemType::F32 => {
            for chunk in payload.chunks_exact(4) {
                out.push(f64::from(f32::from_le_bytes(
                    chunk.try_into().expect("4 bytes"),
                )));
            }
        }
    }
    // Checksummed payloads can still smuggle non-finite bit patterns
    // only if the *writer* produced them — push_row forbids that, so a
    // non-finite decode means the checksum collided on a corruption.
    // Cheap to re-verify, so do: silent garbage is the one failure mode
    // the contract rules out absolutely.
    if let Some(idx) = out.iter().position(|v| !v.is_finite()) {
        return Err(corrupt(path, format!("non-finite sample at offset {idx}")));
    }
    Ok(out)
}

const RAGGED_MAGIC: &[u8; 4] = b"TSRG";

/// Serializes a ragged batch into the segment wire format: the same
/// header/checksum container as [`encode_segment`] (magic `TSRG`, the
/// `m` slot holding total samples) plus a per-row length table between
/// header and payload.
fn encode_ragged_segment(data: &[f64], lens: &[usize], elem: ElemType) -> Vec<u8> {
    let samples: usize = lens.iter().sum();
    debug_assert_eq!(samples, data.len());
    let payload = samples * elem.bytes();
    let mut bytes = Vec::with_capacity(SEGMENT_HEADER + lens.len() * 8 + payload + SEGMENT_TRAILER);
    bytes.extend_from_slice(RAGGED_MAGIC);
    bytes.push(SEGMENT_VERSION);
    bytes.push(elem.tag());
    bytes.extend_from_slice(&[0u8; 2]);
    bytes.extend_from_slice(&(samples as u64).to_le_bytes());
    bytes.extend_from_slice(&(lens.len() as u64).to_le_bytes());
    for &l in lens {
        bytes.extend_from_slice(&(l as u64).to_le_bytes());
    }
    match elem {
        ElemType::F64 => {
            for v in data {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        ElemType::F32 => {
            for v in data {
                bytes.extend_from_slice(&(*v as f32).to_le_bytes());
            }
        }
    }
    let sum = fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Reads and validates one sealed ragged segment, widening to `f64`.
///
/// The same checks as [`decode_segment`] — checksum first, then every
/// structural field — plus the per-row length table, which must match
/// the store's in-memory table entry for entry. Any violation is a
/// typed [`TsError::CorruptData`], never a panic.
fn decode_ragged_segment(path: &Path, elem: ElemType, expect_lens: &[usize]) -> TsResult<Vec<f64>> {
    let bytes = fs::read(path).map_err(|e| corrupt(path, format!("read: {e}")))?;
    if bytes.len() < SEGMENT_HEADER + SEGMENT_TRAILER {
        return Err(corrupt(path, "shorter than header+trailer"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - SEGMENT_TRAILER);
    let stored_sum = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a64(body) != stored_sum {
        return Err(corrupt(path, "checksum mismatch"));
    }
    if &body[0..4] != RAGGED_MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    if body[4] != SEGMENT_VERSION {
        return Err(corrupt(path, format!("unknown version {}", body[4])));
    }
    let file_elem = ElemType::from_tag(body[5]).ok_or_else(|| corrupt(path, "bad element tag"))?;
    if file_elem != elem {
        return Err(corrupt(
            path,
            format!("element type {} != store {}", file_elem.name(), elem.name()),
        ));
    }
    let samples = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")) as usize;
    let expect_samples: usize = expect_lens.iter().sum();
    if samples != expect_samples {
        return Err(corrupt(
            path,
            format!("sample count {samples} != expected {expect_samples}"),
        ));
    }
    let rows = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")) as usize;
    if rows != expect_lens.len() {
        return Err(corrupt(
            path,
            format!("row count {rows} != expected {}", expect_lens.len()),
        ));
    }
    let table_end = SEGMENT_HEADER + rows * 8;
    if body.len() < table_end {
        return Err(corrupt(path, "length table truncated"));
    }
    for (r, &want) in expect_lens.iter().enumerate() {
        let off = SEGMENT_HEADER + r * 8;
        let got = u64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes")) as usize;
        if got != want {
            return Err(corrupt(
                path,
                format!("row {r} length {got} != expected {want}"),
            ));
        }
    }
    let payload = &body[table_end..];
    if payload.len() != samples * elem.bytes() {
        return Err(corrupt(path, "payload length mismatch"));
    }
    let mut out = Vec::with_capacity(samples);
    match elem {
        ElemType::F64 => {
            for chunk in payload.chunks_exact(8) {
                out.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
        }
        ElemType::F32 => {
            for chunk in payload.chunks_exact(4) {
                out.push(f64::from(f32::from_le_bytes(
                    chunk.try_into().expect("4 bytes"),
                )));
            }
        }
    }
    if let Some(idx) = out.iter().position(|v| !v.is_finite()) {
        return Err(corrupt(path, format!("non-finite sample at offset {idx}")));
    }
    Ok(out)
}

/// Writes a sealed segment with the tmp+rename protocol shared by the
/// fixed and ragged spill tiers.
fn write_segment_atomic(path: &Path, bytes: &[u8], what: &str) -> TsResult<()> {
    let tmp = path.with_extension("bin.tmp");
    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, path)
    };
    write().map_err(|e| corrupt(path, format!("{what}: {e}")))
}

/// Backing storage variants of a [`SeriesStore`].
enum Backing {
    /// Fully resident, contiguous `f64` — the zero-copy fast path.
    Resident64(Vec<f64>),
    /// Fully resident, contiguous `f32` — half the footprint, rows
    /// widened into scratch on read.
    Resident32(Vec<f32>),
    /// Larger-than-RAM tier: sealed disk segments + LRU window.
    Spilled(SpillTier),
}

/// An n×m row-major series collection in one contiguous buffer, with
/// optional `f32` narrowing and an optional file-backed spill tier.
///
/// See the [module docs](self) for the layout contract. Construction
/// picks the tier: [`SeriesStore::new`] / [`with_capacity`] for
/// resident buffers, [`spilled`] for the out-of-core tier. Rows enter
/// through [`push_row`] (validated once) and leave through the
/// [`SeriesView`] borrow-or-copy contract.
///
/// [`with_capacity`]: SeriesStore::with_capacity
/// [`spilled`]: SeriesStore::spilled
/// [`push_row`]: SeriesStore::push_row
pub struct SeriesStore {
    m: usize,
    elem: ElemType,
    n: usize,
    backing: Backing,
}

impl std::fmt::Debug for SeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tier = match &self.backing {
            Backing::Resident64(_) | Backing::Resident32(_) => "resident",
            Backing::Spilled(_) => "spilled",
        };
        f.debug_struct("SeriesStore")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("elem", &self.elem.name())
            .field("tier", &tier)
            .finish()
    }
}

impl SeriesStore {
    /// Empty resident store for series of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: usize, elem: ElemType) -> Self {
        Self::with_capacity(0, m, elem)
    }

    /// Empty resident store pre-allocating room for `n` series.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn with_capacity(n: usize, m: usize, elem: ElemType) -> Self {
        assert!(m > 0, "series length must be positive");
        let backing = match elem {
            ElemType::F64 => Backing::Resident64(Vec::with_capacity(n * m)),
            ElemType::F32 => Backing::Resident32(Vec::with_capacity(n * m)),
        };
        SeriesStore {
            m,
            elem,
            n: 0,
            backing,
        }
    }

    /// Empty spilled store: rows stream to chunked segment files under
    /// `cfg.dir`, reads come back through an LRU resident window.
    ///
    /// # Errors
    ///
    /// [`TsError::CorruptData`] if the spill directory cannot be
    /// created.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn spilled(m: usize, elem: ElemType, cfg: SpillConfig) -> TsResult<Self> {
        assert!(m > 0, "series length must be positive");
        Ok(SeriesStore {
            m,
            elem,
            n: 0,
            backing: Backing::Spilled(SpillTier::new(m, elem, cfg)?),
        })
    }

    /// Number of series.
    #[must_use]
    pub fn n_series(&self) -> usize {
        self.n
    }

    /// Whether the store holds no series yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Common series length m.
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.m
    }

    /// Element type of the backing buffer.
    #[must_use]
    pub fn elem(&self) -> ElemType {
        self.elem
    }

    /// Appends one series, validating length and finiteness — the single
    /// validation point of the data plane.
    ///
    /// # Errors
    ///
    /// [`TsError::LengthMismatch`] / [`TsError::NonFinite`] on a bad
    /// row (reported at this row's index), [`TsError::CorruptData`] if a
    /// spill segment fails to write.
    pub fn push_row(&mut self, row: &[f64]) -> TsResult<()> {
        if row.len() != self.m {
            return Err(TsError::LengthMismatch {
                expected: self.m,
                found: row.len(),
                series: self.n,
            });
        }
        ensure_finite(row, self.n)?;
        match &mut self.backing {
            Backing::Resident64(buf) => buf.extend_from_slice(row),
            Backing::Resident32(buf) => buf.extend(row.iter().map(|&v| v as f32)),
            Backing::Spilled(tier) => tier.push_row(row)?,
        }
        self.n += 1;
        Ok(())
    }

    /// Direct row view — the cheap path the contiguous layout exists
    /// for. Only resident `f64` stores can hand out direct borrows; use
    /// [`SeriesView::try_row`] for tier-generic access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds `i`, or when the store is `f32` or
    /// spilled (those rows must be staged through scratch).
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        match &self.backing {
            Backing::Resident64(buf) => &buf[i * self.m..(i + 1) * self.m],
            _ => panic!("row(): direct &[f64] views require a resident f64 store; use try_row"),
        }
    }

    /// The whole resident `f64` buffer as one contiguous slice (`None`
    /// for `f32` or spilled stores).
    #[must_use]
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match &self.backing {
            Backing::Resident64(buf) => Some(buf),
            _ => None,
        }
    }

    /// Z-normalizes every series in place with [`Dataset`] semantics
    /// (constant rows zero-fill and are tallied, not errors). Spilled
    /// stores rewrite each sealed segment atomically.
    ///
    /// # Errors
    ///
    /// [`TsError::CorruptData`] if a sealed segment fails validation or
    /// rewrite.
    ///
    /// [`Dataset`]: crate::dataset::Dataset
    pub fn z_normalize_in_place(&mut self) -> TsResult<crate::dataset::NormalizeReport> {
        let m = self.m;
        let mut report = crate::dataset::NormalizeReport::default();
        match &mut self.backing {
            Backing::Resident64(buf) => normalize_rows(buf, m, &mut report),
            Backing::Resident32(buf) => {
                let mut staged = vec![0.0f64; m];
                for row in buf.chunks_mut(m) {
                    for (d, s) in staged.iter_mut().zip(row.iter()) {
                        *d = f64::from(*s);
                    }
                    normalize_rows(&mut staged, m, &mut report);
                    for (d, s) in row.iter_mut().zip(staged.iter()) {
                        *d = *s as f32;
                    }
                }
            }
            Backing::Spilled(tier) => report = tier.z_normalize()?,
        }
        Ok(report)
    }

    /// Builds a resident or spilled store from nested rows (the legacy
    /// layout), validating every row.
    ///
    /// # Errors
    ///
    /// Everything [`SeriesStore::push_row`] reports, plus
    /// [`TsError::EmptyInput`] for an empty collection or zero-length
    /// rows.
    pub fn from_rows(rows: &[Vec<f64>], elem: ElemType) -> TsResult<Self> {
        let m = rows.first().map_or(0, Vec::len);
        if m == 0 {
            return Err(TsError::EmptyInput);
        }
        let mut store = SeriesStore::with_capacity(rows.len(), m, elem);
        for row in rows {
            store.push_row(row)?;
        }
        Ok(store)
    }

    /// Materializes every row as nested `Vec<Vec<f64>>` (the legacy
    /// layout). Lossless for `f64` stores; `f32` stores widen their
    /// narrowed samples.
    ///
    /// # Errors
    ///
    /// [`TsError::CorruptData`] if a spilled segment fails validation.
    pub fn to_rows(&self) -> TsResult<Vec<Vec<f64>>> {
        let mut out = Vec::with_capacity(self.n);
        let mut scratch = Vec::with_capacity(self.m);
        for i in 0..self.n {
            out.push(self.try_row(i, &mut scratch)?.to_vec());
        }
        Ok(out)
    }

    /// Spill-tier counters ([`None`] for resident stores).
    #[must_use]
    pub fn spill_stats(&self) -> Option<SpillStats> {
        match &self.backing {
            Backing::Spilled(tier) => Some(tier.stats()),
            _ => None,
        }
    }

    /// Paths of the sealed segment files (empty for resident stores).
    /// Exposed for corruption drills and tooling; mutating these files
    /// outside [`z_normalize_in_place`](Self::z_normalize_in_place)
    /// must surface as [`TsError::CorruptData`] on the next read.
    #[must_use]
    pub fn spill_segment_paths(&self) -> Vec<PathBuf> {
        match &self.backing {
            Backing::Spilled(tier) => (0..tier.sealed).map(|s| tier.segment_path(s)).collect(),
            _ => Vec::new(),
        }
    }

    /// Approximate resident-memory footprint in bytes: the contiguous
    /// buffer for resident tiers; tail + window for spilled tiers.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        match &self.backing {
            Backing::Resident64(buf) => buf.capacity() * 8,
            Backing::Resident32(buf) => buf.capacity() * 4,
            Backing::Spilled(tier) => {
                let window = tier
                    .window
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .slots
                    .iter()
                    .map(|(_, rows)| rows.capacity() * 8)
                    .sum::<usize>();
                tier.tail.capacity() * 8 + window
            }
        }
    }
}

impl SeriesView for SeriesStore {
    fn n_series(&self) -> usize {
        self.n
    }

    fn series_len(&self) -> usize {
        self.m
    }

    fn try_row<'s>(&'s self, i: usize, scratch: &'s mut Vec<f64>) -> TsResult<&'s [f64]> {
        assert!(i < self.n, "row index {i} out of bounds (n = {})", self.n);
        match &self.backing {
            Backing::Resident64(buf) => Ok(&buf[i * self.m..(i + 1) * self.m]),
            Backing::Resident32(buf) => {
                scratch.clear();
                scratch.extend(
                    buf[i * self.m..(i + 1) * self.m]
                        .iter()
                        .map(|&v| f64::from(v)),
                );
                Ok(&scratch[..])
            }
            Backing::Spilled(tier) => {
                let sealed_rows = tier.sealed * tier.cfg.rows_per_segment;
                if i >= sealed_rows {
                    let off = (i - sealed_rows) * self.m;
                    Ok(&tier.tail[off..off + self.m])
                } else {
                    tier.fetch_sealed(i, scratch)
                }
            }
        }
    }
}

/// Ragged spill tier: count-sealed segments like [`SpillTier`], plus
/// per-segment row-length tables so rows can be located without a fixed
/// stride.
struct RaggedSpillTier {
    cfg: SpillConfig,
    elem: ElemType,
    sealed: usize,
    /// Per-row lengths of each sealed segment.
    seg_lens: Vec<Vec<usize>>,
    /// Row start offsets within each sealed segment (prefix sums).
    seg_offsets: Vec<Vec<usize>>,
    /// Open tail rows, concatenated `f64`.
    tail: Vec<f64>,
    tail_lens: Vec<usize>,
    tail_offsets: Vec<usize>,
    window: Mutex<WindowState>,
}

impl RaggedSpillTier {
    fn new(elem: ElemType, cfg: SpillConfig) -> TsResult<Self> {
        fs::create_dir_all(&cfg.dir).map_err(|e| corrupt(&cfg.dir, format!("mkdir: {e}")))?;
        let window = Mutex::new(WindowState::new(cfg.resident_segments));
        Ok(RaggedSpillTier {
            elem,
            sealed: 0,
            seg_lens: Vec::new(),
            seg_offsets: Vec::new(),
            tail: Vec::new(),
            tail_lens: Vec::new(),
            tail_offsets: Vec::new(),
            window,
            cfg,
        })
    }

    fn segment_path(&self, seg: usize) -> PathBuf {
        self.cfg.dir.join(format!("seg_{seg:06}.bin"))
    }

    fn push_row(&mut self, row: &[f64]) -> TsResult<()> {
        self.tail_offsets.push(self.tail.len());
        self.tail_lens.push(row.len());
        self.tail.extend_from_slice(row);
        if self.tail_lens.len() == self.cfg.rows_per_segment {
            self.seal_tail()?;
        }
        Ok(())
    }

    fn seal_tail(&mut self) -> TsResult<()> {
        debug_assert!(!self.tail_lens.is_empty());
        let bytes = encode_ragged_segment(&self.tail, &self.tail_lens, self.elem);
        let path = self.segment_path(self.sealed);
        write_segment_atomic(&path, &bytes, "write")?;
        self.sealed += 1;
        self.seg_lens.push(std::mem::take(&mut self.tail_lens));
        self.seg_offsets
            .push(std::mem::take(&mut self.tail_offsets));
        self.tail.clear();
        Ok(())
    }

    /// Copies sealed row `i` into `scratch` through the LRU window.
    fn fetch_sealed<'s>(&self, i: usize, scratch: &'s mut Vec<f64>) -> TsResult<&'s [f64]> {
        let seg = i / self.cfg.rows_per_segment;
        let r = i % self.cfg.rows_per_segment;
        let (off, len) = (self.seg_offsets[seg][r], self.seg_lens[seg][r]);
        let mut w = self
            .window
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let pos = w.slots.iter().position(|(s, _)| *s == seg);
        let slot = match pos {
            Some(p) => {
                w.hits += 1;
                let entry = w.slots.remove(p);
                w.slots.insert(0, entry);
                0
            }
            None => {
                let decoded =
                    decode_ragged_segment(&self.segment_path(seg), self.elem, &self.seg_lens[seg])?;
                w.loads += 1;
                w.slots.insert(0, (seg, decoded));
                while w.slots.len() > w.cap {
                    w.slots.pop();
                    w.evictions += 1;
                }
                w.max_resident = w.max_resident.max(w.slots.len());
                0
            }
        };
        scratch.clear();
        scratch.extend_from_slice(&w.slots[slot].1[off..off + len]);
        Ok(&scratch[..])
    }

    fn z_normalize(&mut self) -> TsResult<crate::dataset::NormalizeReport> {
        let mut report = crate::dataset::NormalizeReport::default();
        for seg in 0..self.sealed {
            let path = self.segment_path(seg);
            let mut data = decode_ragged_segment(&path, self.elem, &self.seg_lens[seg])?;
            normalize_ragged_rows(&mut data, &self.seg_lens[seg], &mut report);
            let bytes = encode_ragged_segment(&data, &self.seg_lens[seg], self.elem);
            write_segment_atomic(&path, &bytes, "rewrite")?;
        }
        let lens = self.tail_lens.clone();
        normalize_ragged_rows(&mut self.tail, &lens, &mut report);
        self.window
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        Ok(report)
    }

    fn stats(&self) -> SpillStats {
        let w = self
            .window
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        SpillStats {
            loads: w.loads,
            hits: w.hits,
            evictions: w.evictions,
            max_resident: w.max_resident,
            sealed_segments: self.sealed,
        }
    }
}

impl Drop for RaggedSpillTier {
    fn drop(&mut self) {
        for seg in 0..self.sealed {
            let _ = fs::remove_file(self.segment_path(seg));
        }
        let _ = fs::remove_dir(&self.cfg.dir);
    }
}

/// Z-normalizes concatenated variable-length rows in place, tallying
/// with the same semantics as [`normalize_rows`].
fn normalize_ragged_rows(
    data: &mut [f64],
    lens: &[usize],
    report: &mut crate::dataset::NormalizeReport,
) {
    let mut off = 0;
    for &l in lens {
        let row = &mut data[off..off + l];
        if std_dev(row) > 0.0 {
            report.normalized += 1;
        } else {
            report.constant += 1;
        }
        z_normalize_in_place(row);
        off += l;
    }
}

enum RaggedBacking {
    /// Fully resident: one concatenated `f64` buffer plus row offsets.
    Resident { data: Vec<f64>, offsets: Vec<usize> },
    /// Out-of-core tier with per-segment length tables.
    Spilled(RaggedSpillTier),
}

/// A variable-length (ragged) univariate series collection: rows of
/// differing lengths stored contiguously with a row-offset/length
/// table, resident or spilled.
///
/// Through [`SeriesView`] the store reports
/// [`is_ragged`](SeriesView::is_ragged)` = true`,
/// [`series_len`](SeriesView::series_len) as the **maximum** row length
/// (the FFT-plan-sizing bound consumers use for padded unequal-length
/// SBD), and each row's true length via
/// [`row_shape`](SeriesView::row_shape). Spilled tiers reuse the
/// checksummed tmp+rename segment protocol of [`SeriesStore`] with a
/// per-row length table in each segment; a torn or bit-flipped segment
/// surfaces as [`TsError::CorruptData`], never a panic.
pub struct RaggedStore {
    lens: Vec<usize>,
    max_len: usize,
    backing: RaggedBacking,
}

impl std::fmt::Debug for RaggedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tier = match &self.backing {
            RaggedBacking::Resident { .. } => "resident",
            RaggedBacking::Spilled(_) => "spilled",
        };
        f.debug_struct("RaggedStore")
            .field("n", &self.lens.len())
            .field("max_len", &self.max_len)
            .field("tier", &tier)
            .finish()
    }
}

impl Default for RaggedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl RaggedStore {
    /// Empty resident ragged store (`f64` staging).
    #[must_use]
    pub fn new() -> Self {
        RaggedStore {
            lens: Vec::new(),
            max_len: 0,
            backing: RaggedBacking::Resident {
                data: Vec::new(),
                offsets: Vec::new(),
            },
        }
    }

    /// Empty spilled ragged store: rows stream to segment files under
    /// `cfg.dir` (sealed every `cfg.rows_per_segment` rows), narrowed to
    /// `elem` on disk.
    ///
    /// # Errors
    ///
    /// [`TsError::CorruptData`] if the spill directory cannot be
    /// created.
    pub fn spilled(elem: ElemType, cfg: SpillConfig) -> TsResult<Self> {
        Ok(RaggedStore {
            lens: Vec::new(),
            max_len: 0,
            backing: RaggedBacking::Spilled(RaggedSpillTier::new(elem, cfg)?),
        })
    }

    /// Appends one series of any positive length, validating finiteness
    /// — the single validation point, like [`SeriesStore::push_row`].
    ///
    /// # Errors
    ///
    /// [`TsError::EmptyInput`] for an empty row, [`TsError::NonFinite`]
    /// on bad samples, [`TsError::CorruptData`] if a spill segment
    /// fails to write.
    pub fn push_row(&mut self, row: &[f64]) -> TsResult<()> {
        if row.is_empty() {
            return Err(TsError::EmptyInput);
        }
        ensure_finite(row, self.lens.len())?;
        match &mut self.backing {
            RaggedBacking::Resident { data, offsets } => {
                offsets.push(data.len());
                data.extend_from_slice(row);
            }
            RaggedBacking::Spilled(tier) => tier.push_row(row)?,
        }
        self.lens.push(row.len());
        self.max_len = self.max_len.max(row.len());
        Ok(())
    }

    /// Number of series.
    #[must_use]
    pub fn n_series(&self) -> usize {
        self.lens.len()
    }

    /// Whether the store holds no series yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Maximum row length seen so far (0 when empty).
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Length of row `i`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds `i`.
    #[must_use]
    pub fn row_len(&self, i: usize) -> usize {
        self.lens[i]
    }

    /// Per-row lengths in insertion order.
    #[must_use]
    pub fn row_lens(&self) -> &[usize] {
        &self.lens
    }

    /// Builds a resident ragged store from nested rows.
    ///
    /// # Errors
    ///
    /// Everything [`RaggedStore::push_row`] reports, plus
    /// [`TsError::EmptyInput`] for an empty collection.
    pub fn from_rows(rows: &[Vec<f64>]) -> TsResult<Self> {
        if rows.is_empty() {
            return Err(TsError::EmptyInput);
        }
        let mut store = RaggedStore::new();
        for row in rows {
            store.push_row(row)?;
        }
        Ok(store)
    }

    /// Materializes every row as nested `Vec<Vec<f64>>`.
    ///
    /// # Errors
    ///
    /// [`TsError::CorruptData`] if a spilled segment fails validation.
    pub fn to_rows(&self) -> TsResult<Vec<Vec<f64>>> {
        let mut out = Vec::with_capacity(self.lens.len());
        let mut scratch = Vec::with_capacity(self.max_len);
        for i in 0..self.lens.len() {
            out.push(self.try_row(i, &mut scratch)?.to_vec());
        }
        Ok(out)
    }

    /// Z-normalizes every series in place (constant rows zero-fill and
    /// are tallied). Spilled tiers rewrite each segment atomically.
    ///
    /// # Errors
    ///
    /// [`TsError::CorruptData`] if a sealed segment fails validation or
    /// rewrite.
    pub fn z_normalize_in_place(&mut self) -> TsResult<crate::dataset::NormalizeReport> {
        match &mut self.backing {
            RaggedBacking::Resident { data, .. } => {
                let mut report = crate::dataset::NormalizeReport::default();
                normalize_ragged_rows(data, &self.lens, &mut report);
                Ok(report)
            }
            RaggedBacking::Spilled(tier) => tier.z_normalize(),
        }
    }

    /// Spill-tier counters ([`None`] for resident stores).
    #[must_use]
    pub fn spill_stats(&self) -> Option<SpillStats> {
        match &self.backing {
            RaggedBacking::Spilled(tier) => Some(tier.stats()),
            RaggedBacking::Resident { .. } => None,
        }
    }

    /// Paths of the sealed segment files (empty for resident stores).
    #[must_use]
    pub fn spill_segment_paths(&self) -> Vec<PathBuf> {
        match &self.backing {
            RaggedBacking::Spilled(tier) => {
                (0..tier.sealed).map(|s| tier.segment_path(s)).collect()
            }
            RaggedBacking::Resident { .. } => Vec::new(),
        }
    }
}

impl SeriesView for RaggedStore {
    fn n_series(&self) -> usize {
        self.lens.len()
    }

    fn series_len(&self) -> usize {
        self.max_len
    }

    fn is_ragged(&self) -> bool {
        true
    }

    fn row_shape(&self, i: usize) -> RowShape {
        RowShape {
            channels: 1,
            len: self.lens[i],
        }
    }

    fn try_row<'s>(&'s self, i: usize, scratch: &'s mut Vec<f64>) -> TsResult<&'s [f64]> {
        assert!(
            i < self.lens.len(),
            "row index {i} out of bounds (n = {})",
            self.lens.len()
        );
        match &self.backing {
            RaggedBacking::Resident { data, offsets } => {
                Ok(&data[offsets[i]..offsets[i] + self.lens[i]])
            }
            RaggedBacking::Spilled(tier) => {
                let sealed_rows = tier.sealed * tier.cfg.rows_per_segment;
                if i >= sealed_rows {
                    let r = i - sealed_rows;
                    let off = tier.tail_offsets[r];
                    Ok(&tier.tail[off..off + tier.tail_lens[r]])
                } else {
                    tier.fetch_sealed(i, scratch)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| ((i * 31 + j) as f64).sin() + i as f64)
                    .collect()
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tsstore-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn f64_roundtrip_is_bit_identical() {
        let data = rows(7, 5);
        let store = SeriesStore::from_rows(&data, ElemType::F64).unwrap();
        assert_eq!(store.n_series(), 7);
        assert_eq!(store.series_len(), 5);
        assert_eq!(store.to_rows().unwrap(), data);
        // Direct views hit the same memory.
        for (i, r) in data.iter().enumerate() {
            assert_eq!(store.row(i), &r[..]);
        }
        assert_eq!(store.as_f64_slice().unwrap().len(), 35);
    }

    #[test]
    fn f32_roundtrip_is_close_not_exact() {
        let data = rows(4, 9);
        let store = SeriesStore::from_rows(&data, ElemType::F32).unwrap();
        let back = store.to_rows().unwrap();
        for (a, b) in data.iter().flatten().zip(back.iter().flatten()) {
            assert!((a - b).abs() <= a.abs() * 1e-6 + 1e-6, "{a} vs {b}");
        }
        assert!(store.as_f64_slice().is_none());
    }

    #[test]
    fn push_row_validates_once() {
        let mut store = SeriesStore::new(4, ElemType::F64);
        assert!(matches!(
            store.push_row(&[1.0, 2.0]),
            Err(TsError::LengthMismatch {
                expected: 4,
                found: 2,
                series: 0
            })
        ));
        assert!(matches!(
            store.push_row(&[1.0, f64::NAN, 0.0, 0.0]),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
        store.push_row(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(store.n_series(), 1);
    }

    #[test]
    fn spilled_store_roundtrips_and_bounds_window() {
        let dir = tmp_dir("roundtrip");
        let cfg = SpillConfig::new(&dir)
            .rows_per_segment(3)
            .resident_segments(2);
        let data = rows(11, 6);
        let mut store = SeriesStore::spilled(6, ElemType::F64, cfg).unwrap();
        for r in &data {
            store.push_row(r).unwrap();
        }
        // 11 rows / 3 per segment = 3 sealed + 2-row tail.
        assert_eq!(store.spill_stats().unwrap().sealed_segments, 3);
        assert_eq!(store.to_rows().unwrap(), data);
        // Random access sweeps twice; the window must never exceed cap.
        let mut scratch = Vec::new();
        for pass in 0..2 {
            for i in (0..11).rev() {
                let got = store.try_row(i, &mut scratch).unwrap().to_vec();
                assert_eq!(got, data[i], "pass {pass} row {i}");
            }
        }
        let stats = store.spill_stats().unwrap();
        assert!(stats.max_resident <= 2, "{stats:?}");
        assert!(stats.loads > 0 && stats.hits > 0, "{stats:?}");
        drop(store);
        assert!(!dir.exists(), "spill dir should be cleaned up on drop");
    }

    #[test]
    fn spilled_f32_narrow_widen() {
        let dir = tmp_dir("f32");
        let cfg = SpillConfig::new(&dir).rows_per_segment(2);
        let data = rows(5, 4);
        let mut store = SeriesStore::spilled(4, ElemType::F32, cfg).unwrap();
        for r in &data {
            store.push_row(r).unwrap();
        }
        let back = store.to_rows().unwrap();
        for (a, b) in data.iter().flatten().zip(back.iter().flatten()) {
            assert!((a - b).abs() <= a.abs() * 1e-6 + 1e-6);
        }
    }

    #[test]
    fn z_normalize_matches_dataset_semantics_across_tiers() {
        let mut data = rows(7, 8);
        data[3] = vec![2.5; 8]; // constant row: zero-filled, tallied
        let mut expected = crate::dataset::Dataset::new("t", data.clone(), vec![0; 7]);
        let expected_report = expected.try_z_normalize().unwrap();

        for elem in [ElemType::F64, ElemType::F32] {
            // Resident.
            let mut store = SeriesStore::from_rows(&data, elem).unwrap();
            let report = store.z_normalize_in_place().unwrap();
            assert_eq!(report, expected_report);
            // Spilled.
            let dir = tmp_dir(&format!("znorm-{}", elem.name()));
            let cfg = SpillConfig::new(&dir).rows_per_segment(2);
            let mut spilled = SeriesStore::spilled(8, elem, cfg).unwrap();
            for r in &data {
                spilled.push_row(r).unwrap();
            }
            let report = spilled.z_normalize_in_place().unwrap();
            assert_eq!(report, expected_report);
            let back = spilled.to_rows().unwrap();
            let tol = if elem == ElemType::F64 { 0.0 } else { 1e-6 };
            for (want, got) in expected.series.iter().zip(back.iter()) {
                for (a, b) in want.iter().zip(got.iter()) {
                    assert!((a - b).abs() <= tol, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn slice_view_is_zero_copy() {
        // Exercised through a generic seam, the way SpectraEngine
        // consumes views ([Vec<f64>] is unsized, so no trait objects).
        fn first_ptr<V: SeriesView + ?Sized>(view: &V) -> (usize, usize, *const f64) {
            let mut scratch = Vec::new();
            let row = view.try_row(1, &mut scratch).unwrap();
            (view.n_series(), view.series_len(), row.as_ptr())
        }
        let data = rows(3, 4);
        let (n, m, ptr) = first_ptr(&data[..]);
        assert_eq!((n, m), (3, 4));
        assert_eq!(ptr, data[1].as_ptr(), "must borrow, not copy");
    }

    #[test]
    fn corrupt_segment_is_typed_error_not_panic() {
        let dir = tmp_dir("corrupt");
        let cfg = SpillConfig::new(&dir)
            .rows_per_segment(2)
            .resident_segments(1);
        let data = rows(6, 4);
        let mut store = SeriesStore::spilled(4, ElemType::F64, cfg).unwrap();
        for r in &data {
            store.push_row(r).unwrap();
        }
        let seg = &store.spill_segment_paths()[1];
        let mut bytes = fs::read(seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(seg, &bytes).unwrap();
        let mut scratch = Vec::new();
        // Rows in segments 0 and the tail still read fine.
        assert!(store.try_row(0, &mut scratch).is_ok());
        assert!(store.try_row(4, &mut scratch).is_ok());
        // The flipped segment is a typed error.
        match store.try_row(2, &mut scratch) {
            Err(TsError::CorruptData { context }) => {
                assert!(context.contains("seg_000001"), "{context}");
            }
            other => panic!("expected CorruptData, got {other:?}"),
        }
    }

    #[test]
    fn univariate_views_report_degenerate_shape() {
        let data = rows(3, 4);
        let slice_shape = data[..].row_shape(2);
        assert_eq!(
            slice_shape,
            RowShape {
                channels: 1,
                len: 4
            }
        );
        assert_eq!(slice_shape.samples(), 4);
        let store = SeriesStore::from_rows(&data, ElemType::F64).unwrap();
        assert_eq!(store.channels(), 1);
        assert!(!SeriesView::is_ragged(&store));
        assert_eq!(
            store.row_shape(0),
            RowShape {
                channels: 1,
                len: 4
            }
        );
    }

    #[test]
    fn channel_view_reinterprets_flat_rows() {
        // 2 rows of 6 samples = 3 channels × length 2, channel-major.
        let data = rows(2, 6);
        let view = ChannelView::new(&data[..], 3).unwrap();
        assert_eq!(view.n_series(), 2);
        assert_eq!(view.series_len(), 2);
        assert_eq!(view.channels(), 3);
        assert_eq!(
            view.row_shape(1),
            RowShape {
                channels: 3,
                len: 2
            }
        );
        assert_eq!(view.row_shape(1).samples(), 6);
        let mut scratch = Vec::new();
        // The flat slice passes through untouched (zero-copy).
        let row = view.try_row(1, &mut scratch).unwrap();
        assert_eq!(row.as_ptr(), data[1].as_ptr());
        // Non-divisible or zero channel counts are typed errors.
        assert!(matches!(
            ChannelView::new(&data[..], 4),
            Err(TsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ChannelView::new(&data[..], 0),
            Err(TsError::LengthMismatch { .. })
        ));
    }

    fn ragged_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let len = 4 + (i * 3) % 7;
                (0..len)
                    .map(|j| ((i * 17 + j) as f64).cos() + i as f64 * 0.1)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn ragged_resident_roundtrip_and_shape() {
        let data = ragged_rows(9);
        let store = RaggedStore::from_rows(&data).unwrap();
        assert_eq!(store.n_series(), 9);
        assert!(SeriesView::is_ragged(&store));
        let max = data.iter().map(Vec::len).max().unwrap();
        assert_eq!(store.series_len(), max);
        assert_eq!(store.max_len(), max);
        for (i, r) in data.iter().enumerate() {
            assert_eq!(
                store.row_shape(i),
                RowShape {
                    channels: 1,
                    len: r.len()
                }
            );
        }
        assert_eq!(store.to_rows().unwrap(), data);
    }

    #[test]
    fn ragged_spilled_roundtrip_bounds_window() {
        let dir = tmp_dir("ragged");
        let cfg = SpillConfig::new(&dir)
            .rows_per_segment(3)
            .resident_segments(1);
        let data = ragged_rows(11);
        let mut store = RaggedStore::spilled(ElemType::F64, cfg).unwrap();
        for r in &data {
            store.push_row(r).unwrap();
        }
        assert_eq!(store.spill_stats().unwrap().sealed_segments, 3);
        let mut scratch = Vec::new();
        for pass in 0..2 {
            for i in (0..11).rev() {
                let got = store.try_row(i, &mut scratch).unwrap().to_vec();
                assert_eq!(got, data[i], "pass {pass} row {i}");
            }
        }
        let stats = store.spill_stats().unwrap();
        assert!(stats.max_resident <= 1, "{stats:?}");
        drop(store);
        assert!(!dir.exists(), "ragged spill dir should be cleaned up");
    }

    #[test]
    fn ragged_corrupt_segment_is_typed_error() {
        let dir = tmp_dir("ragged-corrupt");
        let cfg = SpillConfig::new(&dir)
            .rows_per_segment(2)
            .resident_segments(1);
        let data = ragged_rows(6);
        let mut store = RaggedStore::spilled(ElemType::F64, cfg).unwrap();
        for r in &data {
            store.push_row(r).unwrap();
        }
        let seg = &store.spill_segment_paths()[1];
        let mut bytes = fs::read(seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(seg, &bytes).unwrap();
        let mut scratch = Vec::new();
        assert!(store.try_row(0, &mut scratch).is_ok());
        match store.try_row(2, &mut scratch) {
            Err(TsError::CorruptData { context }) => {
                assert!(context.contains("seg_000001"), "{context}");
            }
            other => panic!("expected CorruptData, got {other:?}"),
        }
    }

    #[test]
    fn ragged_z_normalize_across_tiers() {
        let mut data = ragged_rows(7);
        data[2] = vec![3.0; 5]; // constant row
        let mut resident = RaggedStore::from_rows(&data).unwrap();
        let report = resident.z_normalize_in_place().unwrap();
        assert_eq!(report.normalized, 6);
        assert_eq!(report.constant, 1);
        let dir = tmp_dir("ragged-znorm");
        let cfg = SpillConfig::new(&dir).rows_per_segment(2);
        let mut spilled = RaggedStore::spilled(ElemType::F64, cfg).unwrap();
        for r in &data {
            spilled.push_row(r).unwrap();
        }
        let report2 = spilled.z_normalize_in_place().unwrap();
        assert_eq!(report2, report);
        assert_eq!(spilled.to_rows().unwrap(), resident.to_rows().unwrap());
    }

    #[test]
    fn ragged_rejects_bad_rows() {
        let mut store = RaggedStore::new();
        assert!(matches!(store.push_row(&[]), Err(TsError::EmptyInput)));
        assert!(matches!(
            store.push_row(&[1.0, f64::NAN]),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
    }

    #[test]
    fn row_panics_on_non_resident_f64() {
        let data = rows(2, 3);
        let store = SeriesStore::from_rows(&data, ElemType::F32).unwrap();
        let err = std::panic::catch_unwind(|| store.row(0)).unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap();
        assert!(msg.contains("resident f64"), "{msg}");
    }
}
