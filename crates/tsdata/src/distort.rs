//! Distortion operators implementing the invariance taxonomy of paper
//! Section 2.2.
//!
//! The synthetic generators compose these distortions so that each dataset
//! exercises the invariances the distance measures are supposed to provide:
//! scaling/translation (handled by z-normalization), shift (handled by SBD
//! and DTW), warping (handled by DTW), noise, and occlusion.

use tsrand::Rng;

/// Applies amplitude scaling and offset translation: `x' = a·x + b`.
pub fn scale_translate(x: &mut [f64], a: f64, b: f64) {
    for v in x.iter_mut() {
        *v = a * *v + b;
    }
}

/// Shifts a sequence by `s` positions, zero-padding the vacated region —
/// exactly Equation 5 of the paper. Positive `s` delays the sequence
/// (pads zeros at the front).
#[must_use]
pub fn shift_zero_pad(x: &[f64], s: isize) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    shift_zero_pad_into(x, s, &mut out);
    out
}

/// [`shift_zero_pad`] into a caller-owned buffer — the allocation-free
/// variant for hot loops that align one member at a time (k-Shape
/// refinement, streaming shape extraction).
///
/// # Panics
///
/// Panics if `out.len() != x.len()`.
pub fn shift_zero_pad_into(x: &[f64], s: isize, out: &mut [f64]) {
    let m = x.len();
    assert_eq!(out.len(), m, "shift output length must match input");
    out.fill(0.0);
    if s >= 0 {
        let s = (s as usize).min(m);
        out[s..].copy_from_slice(&x[..m - s]);
    } else {
        let s = ((-s) as usize).min(m);
        out[..m - s].copy_from_slice(&x[s..]);
    }
}

/// Circularly rotates a sequence by `s` positions (positive = delay).
///
/// Used by generators to create out-of-phase class members without edge
/// artifacts.
#[must_use]
pub fn shift_circular(x: &[f64], s: isize) -> Vec<f64> {
    let m = x.len() as isize;
    if m == 0 {
        return Vec::new();
    }
    let s = ((s % m) + m) % m;
    let mut out = Vec::with_capacity(m as usize);
    for i in 0..m {
        out.push(x[((i - s + m) % m) as usize]);
    }
    out
}

/// Adds i.i.d. Gaussian noise with standard deviation `sigma`.
pub fn add_noise<R: Rng>(x: &mut [f64], sigma: f64, rng: &mut R) {
    if sigma <= 0.0 {
        return;
    }
    for v in x.iter_mut() {
        *v += sigma * gaussian(rng);
    }
}

/// Samples a standard normal variate via Box–Muller (delegates to
/// [`tsrand::normal::standard_normal`], the single in-tree Gaussian
/// source).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    tsrand::normal::standard_normal(rng)
}

/// Applies a smooth local time warping: resamples `x` at positions
/// `t + amp·sin(2π·freq·t/m)` with linear interpolation.
///
/// `amp` is measured in samples; `amp = 0` returns a copy.
#[must_use]
pub fn warp_local(x: &[f64], amp: f64, freq: f64) -> Vec<f64> {
    let m = x.len();
    if m == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(m);
    for t in 0..m {
        let pos = t as f64 + amp * (2.0 * std::f64::consts::PI * freq * t as f64 / m as f64).sin();
        out.push(sample_linear(x, pos));
    }
    out
}

/// Uniform scaling: stretches or shrinks `x` to `new_len` samples with
/// linear interpolation (paper's "uniform scaling invariance").
#[must_use]
pub fn resample(x: &[f64], new_len: usize) -> Vec<f64> {
    let m = x.len();
    if m == 0 || new_len == 0 {
        return vec![0.0; new_len];
    }
    if m == 1 {
        return vec![x[0]; new_len];
    }
    let scale = (m - 1) as f64 / (new_len - 1).max(1) as f64;
    (0..new_len)
        .map(|i| sample_linear(x, i as f64 * scale))
        .collect()
}

/// Occludes (zeroes) a window `[start, start + len)`, clamped to bounds
/// (paper's "occlusion invariance" distortion).
pub fn occlude(x: &mut [f64], start: usize, len: usize) {
    let m = x.len();
    let end = start.saturating_add(len).min(m);
    for v in &mut x[start.min(m)..end] {
        *v = 0.0;
    }
}

/// Linear interpolation into `x` at fractional position `pos`, clamped to
/// the valid range.
fn sample_linear(x: &[f64], pos: f64) -> f64 {
    let m = x.len();
    let pos = pos.clamp(0.0, (m - 1) as f64);
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(m - 1);
    let frac = pos - lo as f64;
    x[lo] * (1.0 - frac) + x[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::{
        add_noise, gaussian, occlude, resample, scale_translate, shift_circular, shift_zero_pad,
        warp_local,
    };
    use tsrand::StdRng;

    #[test]
    fn scale_translate_affine() {
        let mut x = vec![1.0, 2.0, 3.0];
        scale_translate(&mut x, 2.0, 1.0);
        assert_eq!(x, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn zero_pad_shift_right() {
        let y = shift_zero_pad(&[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(y, vec![0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn zero_pad_shift_left() {
        let y = shift_zero_pad(&[1.0, 2.0, 3.0, 4.0], -1);
        assert_eq!(y, vec![2.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn zero_pad_shift_saturates() {
        let y = shift_zero_pad(&[1.0, 2.0], 10);
        assert_eq!(y, vec![0.0, 0.0]);
        let y = shift_zero_pad(&[1.0, 2.0], -10);
        assert_eq!(y, vec![0.0, 0.0]);
    }

    #[test]
    fn circular_shift_wraps() {
        let y = shift_circular(&[1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(y, vec![4.0, 1.0, 2.0, 3.0]);
        let y = shift_circular(&[1.0, 2.0, 3.0, 4.0], -1);
        assert_eq!(y, vec![2.0, 3.0, 4.0, 1.0]);
        let y = shift_circular(&[1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
        let y = shift_circular(&[1.0, 2.0, 3.0], -7);
        assert_eq!(y, shift_circular(&[1.0, 2.0, 3.0], -1));
        assert!(shift_circular(&[], 3).is_empty());
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn noise_with_zero_sigma_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = vec![1.0, 2.0];
        add_noise(&mut x, 0.0, &mut rng);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn warp_zero_amplitude_is_identity() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
        let w = warp_local(&x, 0.0, 2.0);
        for (a, b) in x.iter().zip(w.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn warp_preserves_length_and_range() {
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.2).cos()).collect();
        let w = warp_local(&x, 3.0, 1.5);
        assert_eq!(w.len(), x.len());
        let (min, max) = crate::normalize::min_max(&x);
        for &v in &w {
            assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }

    #[test]
    fn resample_identity_when_same_length() {
        let x = vec![1.0, 3.0, 2.0, 5.0];
        let y = resample(&x, 4);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_stretch_preserves_endpoints() {
        let x = vec![0.0, 1.0, 4.0];
        let y = resample(&x, 7);
        assert_eq!(y.len(), 7);
        assert!((y[0] - 0.0).abs() < 1e-12);
        assert!((y[6] - 4.0).abs() < 1e-12);
        // Monotone input stays monotone under linear interpolation.
        for w in y.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn resample_edge_cases() {
        assert_eq!(resample(&[], 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(resample(&[2.5], 3), vec![2.5, 2.5, 2.5]);
        assert!(resample(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn occlusion_zeroes_window() {
        let mut x = vec![1.0; 6];
        occlude(&mut x, 2, 3);
        assert_eq!(x, vec![1.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        // Clamped beyond the end.
        let mut y = vec![1.0; 3];
        occlude(&mut y, 2, 100);
        assert_eq!(y, vec![1.0, 1.0, 0.0]);
        // Start beyond the end is a no-op.
        let mut z = vec![1.0; 2];
        occlude(&mut z, 5, 2);
        assert_eq!(z, vec![1.0, 1.0]);
    }
}
