//! UCR text-format I/O.
//!
//! The UCR archive ships each dataset half as a text file with one series
//! per line: the class label first, then the values, separated by commas
//! (older releases use whitespace). This module reads and writes that
//! format so a real UCR download can replace the synthetic collection
//! without code changes.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::dataset::{Dataset, NormalizeReport, SplitDataset};
use tserror::TsError;

/// Errors from parsing UCR text data.
#[derive(Debug)]
pub enum UcrError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable explanation.
        reason: String,
    },
    /// Series lengths differ across lines.
    RaggedSeries {
        /// 1-based line number of the first mismatching line.
        line: usize,
    },
    /// The file parsed but its values are unusable (NaN/infinity).
    Data(TsError),
}

impl std::fmt::Display for UcrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UcrError::Io(e) => write!(f, "I/O error: {e}"),
            UcrError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            UcrError::RaggedSeries { line } => {
                write!(f, "series on line {line} has a different length")
            }
            UcrError::Data(e) => write!(f, "corrupt data: {e}"),
        }
    }
}

impl std::error::Error for UcrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UcrError::Io(e) => Some(e),
            UcrError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for UcrError {
    fn from(e: io::Error) -> Self {
        UcrError::Io(e)
    }
}

impl From<TsError> for UcrError {
    fn from(e: TsError) -> Self {
        UcrError::Data(e)
    }
}

/// Parses UCR text content into a dataset.
///
/// Labels may be arbitrary integers (UCR uses 1-based and sometimes
/// negative labels); they are remapped densely to `0..k` in order of first
/// appearance. Empty lines are skipped. Fields may be separated by commas
/// or whitespace.
pub fn parse(name: &str, content: &str) -> Result<Dataset, UcrError> {
    let mut series = Vec::new();
    let mut labels_raw: Vec<i64> = Vec::new();
    let mut expected_len: Option<usize> = None;

    for (idx, raw_line) in content.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() < 2 {
            return Err(UcrError::Parse {
                line: idx + 1,
                reason: "need a label and at least one value".into(),
            });
        }
        let label: i64 = fields[0]
            .parse::<f64>()
            .map_err(|e| UcrError::Parse {
                line: idx + 1,
                reason: format!("bad label {:?}: {e}", fields[0]),
            })?
            .round() as i64;
        let values: Result<Vec<f64>, _> = fields[1..]
            .iter()
            .map(|f| {
                f.parse::<f64>().map_err(|e| UcrError::Parse {
                    line: idx + 1,
                    reason: format!("bad value {f:?}: {e}"),
                })
            })
            .collect();
        let values = values?;
        match expected_len {
            None => expected_len = Some(values.len()),
            Some(m) if m != values.len() => return Err(UcrError::RaggedSeries { line: idx + 1 }),
            _ => {}
        }
        series.push(values);
        labels_raw.push(label);
    }

    // Remap labels densely in order of first appearance.
    let mut mapping: Vec<i64> = Vec::new();
    let labels = labels_raw
        .into_iter()
        .map(|l| match mapping.iter().position(|&m| m == l) {
            Some(i) => i,
            None => {
                mapping.push(l);
                mapping.len() - 1
            }
        })
        .collect();

    Ok(Dataset::new(name, series, labels))
}

/// Serializes a dataset in UCR comma-separated format.
#[must_use]
pub fn serialize(d: &Dataset) -> String {
    let mut out = String::new();
    for (s, &l) in d.series.iter().zip(d.labels.iter()) {
        // UCR labels are conventionally 1-based.
        write!(out, "{}", l + 1).unwrap();
        for v in s {
            write!(out, ",{v}").unwrap();
        }
        out.push('\n');
    }
    out
}

/// Loads a UCR-style `<name>_TRAIN` / `<name>_TEST` pair from a directory.
pub fn load_split(dir: &Path, name: &str) -> Result<SplitDataset, UcrError> {
    let train = parse(
        name,
        &fs::read_to_string(dir.join(format!("{name}_TRAIN")))?,
    )?;
    let test = parse(name, &fs::read_to_string(dir.join(format!("{name}_TEST")))?)?;
    Ok(SplitDataset { train, test })
}

/// Loads a UCR split and z-normalizes it with degenerate-series
/// accounting: constant series are zero-filled and counted in the
/// returned [`NormalizeReport`], while NaN/infinite values become a typed
/// [`UcrError::Data`] naming the offending series — corruption is
/// surfaced at load time instead of poisoning distances downstream.
///
/// # Errors
///
/// Any [`UcrError`] from [`load_split`], plus [`UcrError::Data`] for
/// non-finite values.
pub fn load_split_normalized(
    dir: &Path,
    name: &str,
) -> Result<(SplitDataset, NormalizeReport), UcrError> {
    let mut split = load_split(dir, name)?;
    let report = split.try_z_normalize()?;
    Ok((split, report))
}

/// Writes a `SplitDataset` as a UCR-style `<name>_TRAIN` / `<name>_TEST`
/// pair into a directory.
pub fn save_split(dir: &Path, split: &SplitDataset) -> Result<(), UcrError> {
    fs::create_dir_all(dir)?;
    let name = split.name().to_owned();
    fs::write(dir.join(format!("{name}_TRAIN")), serialize(&split.train))?;
    fs::write(dir.join(format!("{name}_TEST")), serialize(&split.test))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{load_split, load_split_normalized, parse, save_split, serialize, UcrError};
    use crate::dataset::{Dataset, SplitDataset};
    use tserror::TsError;

    #[test]
    fn parses_comma_separated() {
        let d = parse("t", "1,0.5,1.5,2.5\n2,3.0,4.0,5.0\n").unwrap();
        assert_eq!(d.n_series(), 2);
        assert_eq!(d.series_len(), 3);
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(d.series[0], vec![0.5, 1.5, 2.5]);
    }

    #[test]
    fn parses_whitespace_separated() {
        let d = parse("t", " 1  0.5 1.5\n 1  2.0 3.0\n").unwrap();
        assert_eq!(d.n_series(), 2);
        assert_eq!(d.labels, vec![0, 0]);
    }

    #[test]
    fn skips_empty_lines() {
        let d = parse("t", "\n1,1.0,2.0\n\n2,3.0,4.0\n\n").unwrap();
        assert_eq!(d.n_series(), 2);
    }

    #[test]
    fn remaps_arbitrary_labels_densely() {
        let d = parse("t", "-1,1.0\n3,2.0\n-1,3.0\n7,4.0\n").unwrap();
        assert_eq!(d.labels, vec![0, 1, 0, 2]);
        assert_eq!(d.n_classes(), 3);
    }

    #[test]
    fn rejects_ragged_lines() {
        let err = parse("t", "1,1.0,2.0\n1,3.0\n").unwrap_err();
        assert!(matches!(err, UcrError::RaggedSeries { line: 2 }));
    }

    #[test]
    fn rejects_garbage() {
        let err = parse("t", "1,abc\n").unwrap_err();
        assert!(matches!(err, UcrError::Parse { line: 1, .. }));
        let err = parse("t", "1\n").unwrap_err();
        assert!(matches!(err, UcrError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_through_serialization() {
        let d = Dataset::new("rt", vec![vec![1.5, -2.0], vec![0.0, 3.25]], vec![0, 1]);
        let text = serialize(&d);
        let back = parse("rt", &text).unwrap();
        assert_eq!(back.series, d.series);
        assert_eq!(back.labels, d.labels);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ucr-test-{}", std::process::id()));
        let split = SplitDataset {
            train: Dataset::new("demo", vec![vec![1.0, 2.0]], vec![0]),
            test: Dataset::new("demo", vec![vec![3.0, 4.0]], vec![0]),
        };
        save_split(&dir, &split).unwrap();
        let back = load_split(&dir, "demo").unwrap();
        assert_eq!(back.train.series, split.train.series);
        assert_eq!(back.test.series, split.test.series);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn normalized_loading_surfaces_degenerate_series() {
        let dir = std::env::temp_dir().join(format!("ucr-norm-test-{}", std::process::id()));
        let split = SplitDataset {
            train: Dataset::new(
                "demo",
                vec![vec![1.0, 2.0, 4.0], vec![3.0, 3.0, 3.0]],
                vec![0, 1],
            ),
            test: Dataset::new("demo", vec![vec![5.0, 1.0, 2.0]], vec![0]),
        };
        save_split(&dir, &split).unwrap();
        let (loaded, report) = load_split_normalized(&dir, "demo").unwrap();
        assert_eq!(report.normalized, 2);
        assert_eq!(report.constant, 1);
        // The flatlined series is zero-filled, matching z_normalize.
        assert!(loaded.train.series[1].iter().all(|&v| v == 0.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn normalized_loading_rejects_nan_values() {
        let dir = std::env::temp_dir().join(format!("ucr-nan-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("demo_TRAIN"), "1,1.0,NaN,2.0\n").unwrap();
        std::fs::write(dir.join("demo_TEST"), "1,1.0,2.0,3.0\n").unwrap();
        let err = load_split_normalized(&dir, "demo").unwrap_err();
        assert!(
            matches!(
                err,
                UcrError::Data(TsError::NonFinite {
                    series: 0,
                    index: 1
                })
            ),
            "{err}"
        );
        assert!(err.to_string().contains("corrupt data"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse("t", "1,oops\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
