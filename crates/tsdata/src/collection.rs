//! The 48-dataset synthetic collection standing in for the UCR archive.
//!
//! The paper evaluates every distance measure and clustering method on the
//! 48 class-labeled datasets of the UCR collection. That archive cannot be
//! redistributed here, so [`synthetic_collection`] deterministically builds
//! 48 datasets from the eight shape families in [`crate::generators`], six
//! variants per family, varying `n`, `m`, `k`, noise, and shift magnitude.
//! Each dataset is split into train/test halves (as UCR ships them) and
//! z-normalized, matching the paper's preprocessing.

use tsrand::StdRng;

use crate::dataset::{Dataset, SplitDataset};
use crate::generators::{
    cbf, chirps, ecg, seasonal, sines, trends, two_patterns, warped, GenParams,
};

/// Knobs for building the collection.
#[derive(Debug, Clone, Copy)]
pub struct CollectionSpec {
    /// Base RNG seed; the collection is fully determined by it.
    pub seed: u64,
    /// Global multiplier on per-class series counts (1.0 = default sizes).
    /// Lets tests run on tiny collections and benches on larger ones.
    pub size_factor: f64,
}

impl Default for CollectionSpec {
    fn default() -> Self {
        CollectionSpec {
            seed: 0x5ADE,
            size_factor: 1.0,
        }
    }
}

/// Per-variant parameter tweaks applied on top of each family's defaults.
struct Variant {
    n_per_class: usize,
    len: usize,
    noise: f64,
    max_shift_frac: f64,
}

/// Six variants reused by every family: small/clean, small/noisy,
/// medium/shifted, medium/long, large/clean, large/noisy-shifted.
const VARIANTS: [Variant; 6] = [
    Variant {
        n_per_class: 12,
        len: 64,
        noise: 0.15,
        max_shift_frac: 0.05,
    },
    Variant {
        n_per_class: 12,
        len: 64,
        noise: 0.50,
        max_shift_frac: 0.05,
    },
    Variant {
        n_per_class: 20,
        len: 128,
        noise: 0.25,
        max_shift_frac: 0.20,
    },
    Variant {
        n_per_class: 12,
        len: 512,
        noise: 0.25,
        max_shift_frac: 0.10,
    },
    Variant {
        n_per_class: 30,
        len: 96,
        noise: 0.15,
        max_shift_frac: 0.10,
    },
    Variant {
        n_per_class: 24,
        len: 128,
        noise: 0.45,
        max_shift_frac: 0.25,
    },
];

/// Builds the full 48-dataset collection, z-normalized and split.
#[must_use]
pub fn synthetic_collection(spec: &CollectionSpec) -> Vec<SplitDataset> {
    let mut out = Vec::with_capacity(48);
    for (vi, variant) in VARIANTS.iter().enumerate() {
        let n_per_class = ((variant.n_per_class as f64 * spec.size_factor).round() as usize).max(4);
        let params = GenParams {
            n_per_class,
            len: variant.len,
            noise: variant.noise,
            max_shift_frac: variant.max_shift_frac,
            amp_jitter: 1.5,
        };
        for family in 0..8 {
            // One independent deterministic stream per (family, variant).
            let seed = spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((family * 131 + vi) as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = match family {
                0 => cbf::generate(&params, &mut rng),
                1 => two_patterns::generate(&params, &mut rng),
                2 => ecg::generate(&params, &mut rng),
                3 => sines::generate(2 + vi % 3, 2.0 + vi as f64, &params, &mut rng),
                4 => trends::generate(3 + vi % 3, &params, &mut rng),
                5 => seasonal::generate(2 + vi % 3, 2.0, &params, &mut rng),
                6 => warped::generate(2 + vi % 3, &params, &mut rng),
                _ => chirps::generate(2 + vi % 3, 3.0 + vi as f64, &params, &mut rng),
            };
            d.name = format!("{}-{:02}", d.name, vi);
            let mut split = split_alternating(d);
            split.z_normalize();
            out.push(split);
        }
    }
    out
}

/// Splits a dataset into train/test halves by alternating within each
/// class, preserving class balance in both halves.
#[must_use]
pub fn split_alternating(d: Dataset) -> SplitDataset {
    let mut train_series = Vec::new();
    let mut train_labels = Vec::new();
    let mut test_series = Vec::new();
    let mut test_labels = Vec::new();
    let mut seen_per_class = vec![0usize; d.n_classes()];
    for (s, &l) in d.series.iter().zip(d.labels.iter()) {
        let seen = &mut seen_per_class[l];
        if (*seen).is_multiple_of(2) {
            train_series.push(s.clone());
            train_labels.push(l);
        } else {
            test_series.push(s.clone());
            test_labels.push(l);
        }
        *seen += 1;
    }
    SplitDataset {
        train: Dataset::new(d.name.clone(), train_series, train_labels),
        test: Dataset::new(d.name, test_series, test_labels),
    }
}

#[cfg(test)]
mod tests {
    use super::{split_alternating, synthetic_collection, CollectionSpec};
    use crate::dataset::Dataset;

    fn tiny_spec() -> CollectionSpec {
        CollectionSpec {
            seed: 7,
            size_factor: 0.34, // minimum sizes, fast tests
        }
    }

    #[test]
    fn collection_has_48_datasets() {
        let c = synthetic_collection(&tiny_spec());
        assert_eq!(c.len(), 48);
    }

    #[test]
    fn names_are_unique() {
        let c = synthetic_collection(&tiny_spec());
        let mut names: Vec<&str> = c.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 48);
    }

    #[test]
    fn collection_is_deterministic() {
        let a = synthetic_collection(&tiny_spec());
        let b = synthetic_collection(&tiny_spec());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.train.series, y.train.series);
            assert_eq!(x.test.labels, y.test.labels);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_collection(&tiny_spec());
        let b = synthetic_collection(&CollectionSpec {
            seed: 8,
            size_factor: 0.34,
        });
        assert_ne!(a[0].train.series, b[0].train.series);
    }

    #[test]
    fn every_dataset_is_z_normalized() {
        let c = synthetic_collection(&tiny_spec());
        for split in &c {
            for s in split.train.series.iter().chain(split.test.series.iter()) {
                let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
                assert!(mean.abs() < 1e-9, "{}: mean {mean}", split.name());
            }
        }
    }

    #[test]
    fn every_dataset_has_multiple_classes_and_members() {
        let c = synthetic_collection(&tiny_spec());
        for split in &c {
            assert!(split.n_classes() >= 2, "{}", split.name());
            assert!(split.train.n_series() >= 4, "{}", split.name());
            assert!(split.test.n_series() >= 4, "{}", split.name());
        }
    }

    #[test]
    fn split_preserves_class_balance() {
        let d = Dataset::new(
            "t",
            (0..10).map(|i| vec![i as f64; 4]).collect(),
            vec![0, 0, 0, 0, 1, 1, 1, 1, 1, 1],
        );
        let split = split_alternating(d);
        assert_eq!(split.train.class_indices(0).len(), 2);
        assert_eq!(split.test.class_indices(0).len(), 2);
        assert_eq!(split.train.class_indices(1).len(), 3);
        assert_eq!(split.test.class_indices(1).len(), 3);
    }

    #[test]
    fn size_factor_scales_counts() {
        let small = synthetic_collection(&tiny_spec());
        let big = synthetic_collection(&CollectionSpec {
            seed: 7,
            size_factor: 1.0,
        });
        assert!(big[0].train.n_series() > small[0].train.n_series());
    }
}
