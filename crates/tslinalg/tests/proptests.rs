//! Property-based tests for the linear-algebra substrate (tscheck
//! harness).

use tscheck::Gen;
use tslinalg::eigen::symmetric_eigen;
use tslinalg::jacobi::jacobi_eigen;
use tslinalg::matrix::Matrix;

/// A random symmetric matrix of side 1..=8.
fn symmetric_matrix(g: &mut Gen) -> Matrix {
    let n = g.usize_in(1..=8);
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..=r {
            let v = g.f64_in(-10.0..10.0);
            m[(r, c)] = v;
            m[(c, r)] = v;
        }
    }
    m
}

tscheck::props! {
    #[cases(48)]
    fn ql_residuals_are_small(g) {
        let a = symmetric_matrix(g);
        let eig = symmetric_eigen(&a);
        let scale = 1.0 + a.frobenius_norm();
        assert!(eig.max_residual(&a) / scale < 1e-9);
    }

    #[cases(48)]
    fn ql_eigenvalues_sorted_descending(g) {
        let a = symmetric_matrix(g);
        let eig = symmetric_eigen(&a);
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[cases(48)]
    fn trace_matches_eigenvalue_sum(g) {
        let a = symmetric_matrix(g);
        let eig = symmetric_eigen(&a);
        let trace: f64 = (0..a.rows()).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        let scale = 1.0 + trace.abs();
        assert!((trace - sum).abs() / scale < 1e-9);
    }

    #[cases(48)]
    fn jacobi_and_ql_agree_on_spectra(g) {
        let a = symmetric_matrix(g);
        let e1 = symmetric_eigen(&a);
        let e2 = jacobi_eigen(&a);
        let scale = 1.0 + a.frobenius_norm();
        for (v1, v2) in e1.values.iter().zip(e2.values.iter()) {
            assert!((v1 - v2).abs() / scale < 1e-8);
        }
    }

    #[cases(48)]
    fn eigenvectors_unit_norm(g) {
        let a = symmetric_matrix(g);
        let eig = symmetric_eigen(&a);
        for i in 0..a.rows() {
            let v = eig.vectors.col(i);
            let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[cases(48)]
    fn matmul_associativity(g) {
        let a = g.vec_f64(9..=9, -5.0..5.0);
        let b = g.vec_f64(9..=9, -5.0..5.0);
        let v = g.vec_f64(3..=3, -5.0..5.0);
        let ma = Matrix::from_vec(3, 3, a);
        let mb = Matrix::from_vec(3, 3, b);
        let left = ma.matmul(&mb).matvec(&v);
        let right = ma.matvec(&mb.matvec(&v));
        for (x, y) in left.iter().zip(right.iter()) {
            assert!((x - y).abs() < 1e-8 * (1.0 + x.abs()));
        }
    }
}
