//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use tslinalg::eigen::symmetric_eigen;
use tslinalg::jacobi::jacobi_eigen;
use tslinalg::matrix::Matrix;

/// Strategy producing a random symmetric matrix of side 1..=8.
fn symmetric_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=8).prop_flat_map(|n| {
        prop::collection::vec(-10.0f64..10.0, n * (n + 1) / 2).prop_map(move |tri| {
            let mut m = Matrix::zeros(n, n);
            let mut it = tri.into_iter();
            for r in 0..n {
                for c in 0..=r {
                    let v = it.next().unwrap();
                    m[(r, c)] = v;
                    m[(c, r)] = v;
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ql_residuals_are_small(a in symmetric_matrix()) {
        let eig = symmetric_eigen(&a);
        let scale = 1.0 + a.frobenius_norm();
        prop_assert!(eig.max_residual(&a) / scale < 1e-9);
    }

    #[test]
    fn ql_eigenvalues_sorted_descending(a in symmetric_matrix()) {
        let eig = symmetric_eigen(&a);
        for w in eig.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_matches_eigenvalue_sum(a in symmetric_matrix()) {
        let eig = symmetric_eigen(&a);
        let trace: f64 = (0..a.rows()).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        let scale = 1.0 + trace.abs();
        prop_assert!((trace - sum).abs() / scale < 1e-9);
    }

    #[test]
    fn jacobi_and_ql_agree_on_spectra(a in symmetric_matrix()) {
        let e1 = symmetric_eigen(&a);
        let e2 = jacobi_eigen(&a);
        let scale = 1.0 + a.frobenius_norm();
        for (v1, v2) in e1.values.iter().zip(e2.values.iter()) {
            prop_assert!((v1 - v2).abs() / scale < 1e-8);
        }
    }

    #[test]
    fn eigenvectors_unit_norm(a in symmetric_matrix()) {
        let eig = symmetric_eigen(&a);
        for i in 0..a.rows() {
            let v = eig.vectors.col(i);
            let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_associativity(
        a in prop::collection::vec(-5.0f64..5.0, 9),
        b in prop::collection::vec(-5.0f64..5.0, 9),
        v in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        let ma = Matrix::from_vec(3, 3, a);
        let mb = Matrix::from_vec(3, 3, b);
        let left = ma.matmul(&mb).matvec(&v);
        let right = ma.matvec(&mb.matvec(&v));
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + x.abs()));
        }
    }
}
