//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! Slower than the Householder/QL pipeline in [`crate::eigen`] but extremely
//! simple and independently derived — we use it as a cross-check in tests
//! and expose it for callers who prefer its unconditional robustness on
//! small matrices.

use crate::eigen::SymmetricEigen;
use crate::matrix::Matrix;

/// Maximum number of full sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the full eigendecomposition of a real symmetric matrix using
/// cyclic Jacobi rotations.
///
/// Eigenvalues are returned in descending order, matching
/// [`crate::eigen::symmetric_eigen`].
///
/// # Panics
///
/// Panics if `a` is not square or the sweep limit is exceeded (practically
/// unreachable: Jacobi converges quadratically for symmetric input).
#[must_use]
pub fn jacobi_eigen(a: &Matrix) -> SymmetricEigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition requires a square matrix"
    );
    let n = a.rows();
    if n == 0 {
        return SymmetricEigen {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        };
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let mut sweeps = 0;
    loop {
        let off: f64 = off_diagonal_norm(&m);
        if off < 1e-13 * (1.0 + m.frobenius_norm()) {
            break;
        }
        sweeps += 1;
        assert!(sweeps <= MAX_SWEEPS, "Jacobi failed to converge");
        for p in 0..n - 1 {
            for q in p + 1..n {
                rotate(&mut m, &mut v, p, q);
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }
    SymmetricEigen { values, vectors }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for r in 0..n {
        for c in r + 1..n {
            s += 2.0 * m[(r, c)] * m[(r, c)];
        }
    }
    s.sqrt()
}

/// Applies one Jacobi rotation annihilating `m[(p, q)]`.
fn rotate(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    if apq.abs() < 1e-300 {
        return;
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let theta = (aqq - app) / (2.0 * apq);
    // Choose the smaller rotation for stability.
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    let n = m.rows();

    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = c * mkp - s * mkq;
        m[(k, q)] = s * mkp + c * mkq;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = c * mpk - s * mqk;
        m[(q, k)] = s * mpk + c * mqk;
    }
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::jacobi_eigen;
    use crate::eigen::symmetric_eigen;
    use crate::matrix::Matrix;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..=r {
                let v = next();
                m[(r, c)] = v;
                m[(c, r)] = v;
            }
        }
        m
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = jacobi_eigen(&a);
        assert!((eig.values[0] - 3.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn residuals_small() {
        for (n, seed) in [(3usize, 11u64), (6, 12), (12, 13), (20, 14)] {
            let a = random_symmetric(n, seed);
            let eig = jacobi_eigen(&a);
            assert!(eig.max_residual(&a) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn agrees_with_householder_ql() {
        for (n, seed) in [(4usize, 21u64), (9, 22), (16, 23)] {
            let a = random_symmetric(n, seed);
            let e1 = jacobi_eigen(&a);
            let e2 = symmetric_eigen(&a);
            for (v1, v2) in e1.values.iter().zip(e2.values.iter()) {
                assert!((v1 - v2).abs() < 1e-8, "n={n}: {v1} vs {v2}");
            }
            // Eigenvectors agree up to sign.
            for i in 0..n {
                let u = e1.vectors.col(i);
                let w = e2.vectors.col(i);
                let d: f64 = u.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
                assert!(
                    (d.abs() - 1.0).abs() < 1e-6,
                    "n={n} vec {i}: |<u,w>| = {}",
                    d.abs()
                );
            }
        }
    }

    #[test]
    fn zero_matrix() {
        let eig = jacobi_eigen(&Matrix::zeros(4, 4));
        for &v in &eig.values {
            assert_eq!(v, 0.0);
        }
    }
}
