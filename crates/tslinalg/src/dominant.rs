//! Dominant eigenpair of a symmetric PSD matrix via Lanczos iteration.
//!
//! Shape extraction (paper Section 3.2, `Eig(M, 1)`) needs exactly one
//! eigenpair — the largest — of a positive semi-definite Gram matrix, but
//! the full Householder + QL solver ([`crate::eigen::try_symmetric_eigen`])
//! pays O(n³) for all `n` of them. For the Gram matrices k-Shape produces
//! (cluster members are variants of one shape, so the spectrum is strongly
//! dominated by its first eigenvalue) a Lanczos iteration with full
//! reorthogonalization converges to machine-precision residuals in a
//! handful of matrix–vector products: O(n² · steps) with `steps` typically
//! 10–25. This is the same strategy LAPACK's `dsyevx` family uses for
//! "give me the top eigenpair" queries.
//!
//! The solver is deterministic (fixed start vector, fixed reduction order)
//! and *validated*: convergence is declared only when the Ritz residual
//! `‖A·v − θ·v‖ = |β_k · s_k|` drops below `tol · θ`. If the budget runs
//! out first — pathological spectra, near-degenerate gaps — it falls back
//! to the exact full decomposition, so callers never observe a low-quality
//! eigenvector.

use crate::eigen::try_symmetric_eigen;
use crate::matrix::{dot_unrolled, Matrix};
use tserror::{TsError, TsResult};

/// Dominant eigenpair returned by [`try_dominant_symmetric_eigen`].
#[derive(Debug, Clone)]
pub struct DominantEigen {
    /// The largest eigenvalue.
    pub value: f64,
    /// Unit-norm eigenvector for [`value`](Self::value).
    pub vector: Vec<f64>,
    /// Lanczos steps performed; 0 when the dense fallback path answered.
    pub steps: usize,
}

/// Matrices at or below this order go straight to the dense solver: the
/// O(n³) cost is negligible and the dense path has no convergence budget.
const DENSE_CUTOFF: usize = 32;

/// Lanczos step budget; on exhaustion the dense solver takes over.
const MAX_STEPS: usize = 64;

/// Relative Ritz-residual tolerance declaring convergence.
const RESIDUAL_TOL: f64 = 1e-12;

/// Computes the dominant eigenpair of a real symmetric PSD matrix.
///
/// Intended for positive semi-definite matrices (Gram matrices), where the
/// largest eigenvalue is also the largest in magnitude. The result matches
/// [`crate::eigen::try_symmetric_eigen`]'s dominant pair to the residual
/// tolerance (`‖A·v − λ·v‖ ≤ 1e-12·λ`); only the floating-point rounding of
/// the two algorithms differs.
///
/// # Errors
///
/// * [`TsError::LengthMismatch`] for a non-square matrix,
/// * [`TsError::NonFinite`] at the first NaN/infinite entry,
/// * [`TsError::NumericalFailure`] only if the dense fallback itself fails
///   to converge (practically unreachable for symmetric input).
pub fn try_dominant_symmetric_eigen(a: &Matrix) -> TsResult<DominantEigen> {
    if a.rows() != a.cols() {
        return Err(TsError::LengthMismatch {
            expected: a.rows(),
            found: a.cols(),
            series: 0,
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(DominantEigen {
            value: 0.0,
            vector: Vec::new(),
            steps: 0,
        });
    }
    if let Some(flat) = a.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(TsError::NonFinite {
            series: flat / n,
            index: flat % n,
        });
    }
    if n <= DENSE_CUTOFF {
        return dense_dominant(a);
    }
    match lanczos_dominant(a) {
        Some(result) => Ok(result),
        None => dense_dominant(a),
    }
}

/// Dense fallback: full decomposition, keep the top pair.
fn dense_dominant(a: &Matrix) -> TsResult<DominantEigen> {
    let eig = try_symmetric_eigen(a)?;
    Ok(DominantEigen {
        value: eig.values[0],
        vector: eig.dominant_vector(),
        steps: 0,
    })
}

/// Lanczos with full reorthogonalization; `None` when the step budget runs
/// out before the Ritz residual meets [`RESIDUAL_TOL`].
fn lanczos_dominant(a: &Matrix) -> Option<DominantEigen> {
    let n = a.rows();
    let max_steps = MAX_STEPS.min(n);

    // Deterministic non-degenerate start vector (same scheme as power
    // iteration): exact orthogonality to the dominant eigenvector is
    // measure-zero, and rounding noise re-seeds the component anyway.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64 * 0.7391).sin() * 0.5)
        .collect();
    let norm = dot_unrolled(&v, &v).sqrt();
    for x in &mut v {
        *x /= norm;
    }

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(max_steps);
    let mut alphas: Vec<f64> = Vec::with_capacity(max_steps);
    let mut betas: Vec<f64> = Vec::with_capacity(max_steps);

    for step in 1..=max_steps {
        let mut w = a.matvec(&v);
        alphas.push(dot_unrolled(&w, &v));
        basis.push(std::mem::take(&mut v));

        // Full reorthogonalization, two classical Gram–Schmidt passes:
        // enough to keep the basis orthogonal to working precision.
        for _ in 0..2 {
            for q in &basis {
                let coef = dot_unrolled(&w, q);
                for (wi, qi) in w.iter_mut().zip(q.iter()) {
                    *wi -= coef * qi;
                }
            }
        }
        let beta = dot_unrolled(&w, &w).sqrt();

        // Ritz pair of the current tridiagonal T_k.
        let k = alphas.len();
        let mut t = Matrix::zeros(k, k);
        for i in 0..k {
            t[(i, i)] = alphas[i];
            if i + 1 < k {
                t[(i, i + 1)] = betas[i];
                t[(i + 1, i)] = betas[i];
            }
        }
        let te = try_symmetric_eigen(&t).ok()?;
        let theta = te.values[0];
        let s = te.vectors.col(0);

        // Residual of the Ritz pair in the original space: |β_k · s_k|.
        let residual = (beta * s[k - 1]).abs();
        let converged = residual <= RESIDUAL_TOL * theta.abs().max(f64::MIN_POSITIVE);
        // β = 0 means an exact invariant subspace: T_k already holds the
        // dominant eigenvalue of A restricted to the reachable subspace.
        if converged || beta == 0.0 {
            let mut y = vec![0.0; n];
            for (coef, q) in s.iter().zip(basis.iter()) {
                for (yi, qi) in y.iter_mut().zip(q.iter()) {
                    *yi += coef * qi;
                }
            }
            let nrm = dot_unrolled(&y, &y).sqrt();
            if nrm == 0.0 || !nrm.is_finite() {
                return None;
            }
            for yi in &mut y {
                *yi /= nrm;
            }
            return Some(DominantEigen {
                value: theta,
                vector: y,
                steps: step,
            });
        }

        betas.push(beta);
        v = w;
        for x in &mut v {
            *x /= beta;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::{try_dominant_symmetric_eigen, DENSE_CUTOFF};
    use crate::eigen::symmetric_eigen;
    use crate::matrix::Matrix;
    use tserror::TsError;

    fn gram(n: usize, rank: usize, seed: u64) -> Matrix {
        let mut g = Matrix::zeros(n, n);
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..rank {
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            g.rank_one_update(&x, 1.0);
        }
        g
    }

    fn assert_matches_full(a: &Matrix, tol: f64) {
        let fast = try_dominant_symmetric_eigen(a).expect("clean input");
        let full = symmetric_eigen(a);
        assert!(
            (fast.value - full.values[0]).abs() <= tol * full.values[0].abs().max(1.0),
            "value {} vs {}",
            fast.value,
            full.values[0]
        );
        let dv = full.dominant_vector();
        let dot: f64 = dv.iter().zip(fast.vector.iter()).map(|(x, y)| x * y).sum();
        assert!(
            (dot.abs() - 1.0).abs() < tol,
            "|<u,v>| = {} (n={})",
            dot.abs(),
            a.rows()
        );
        // Residual check straight against A.
        let av = a.matvec(&fast.vector);
        let worst = av
            .iter()
            .zip(fast.vector.iter())
            .map(|(x, y)| (x - fast.value * y).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst <= 1e-9 * fast.value.abs().max(1.0),
            "residual {worst}"
        );
    }

    #[test]
    fn empty_matrix() {
        let r = try_dominant_symmetric_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(r.vector.is_empty());
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn small_matrices_use_dense_path() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let r = try_dominant_symmetric_eigen(&a).unwrap();
        assert_eq!(r.steps, 0, "small input must take the dense path");
        assert!((r.value - 3.0).abs() < 1e-10);
    }

    #[test]
    fn matches_full_solver_on_gram_matrices() {
        for (n, rank, seed) in [(40, 8, 1u64), (64, 64, 2), (100, 30, 3), (150, 150, 4)] {
            assert_matches_full(&gram(n, rank, seed), 1e-9);
        }
    }

    #[test]
    fn large_inputs_take_the_lanczos_path() {
        let a = gram(DENSE_CUTOFF + 20, 10, 9);
        let r = try_dominant_symmetric_eigen(&a).unwrap();
        assert!(r.steps > 0, "expected Lanczos, got dense fallback");
        assert!(r.steps <= DENSE_CUTOFF + 20);
    }

    #[test]
    fn zero_matrix_yields_zero_value() {
        let r = try_dominant_symmetric_eigen(&Matrix::zeros(50, 50)).unwrap();
        assert_eq!(r.value, 0.0);
        let norm: f64 = r.vector.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12, "vector must stay unit norm");
    }

    #[test]
    fn identity_with_repeated_eigenvalues() {
        let a = Matrix::identity(80);
        let r = try_dominant_symmetric_eigen(&a).unwrap();
        assert!((r.value - 1.0).abs() < 1e-10);
    }

    #[test]
    fn near_degenerate_gap_still_converges() {
        // Two leading eigenvalues 1e-6 apart: slow for power iteration,
        // routine for Lanczos (and the dense fallback backstops it).
        let n = 60;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 1.0 / (i + 1) as f64;
        }
        a[(1, 1)] = 1.0 - 1e-6;
        assert_matches_full(&a, 1e-6);
    }

    #[test]
    fn deterministic_across_calls() {
        let a = gram(90, 25, 7);
        let r1 = try_dominant_symmetric_eigen(&a).unwrap();
        let r2 = try_dominant_symmetric_eigen(&a).unwrap();
        assert_eq!(r1.value.to_bits(), r2.value.to_bits());
        let b1: Vec<u64> = r1.vector.iter().map(|v| v.to_bits()).collect();
        let b2: Vec<u64> = r2.vector.iter().map(|v| v.to_bits()).collect();
        assert_eq!(b1, b2);
    }

    #[test]
    fn rejects_rectangular_and_non_finite() {
        assert!(matches!(
            try_dominant_symmetric_eigen(&Matrix::zeros(2, 3)),
            Err(TsError::LengthMismatch { .. })
        ));
        let mut a = Matrix::zeros(40, 40);
        a[(3, 5)] = f64::NAN;
        assert!(matches!(
            try_dominant_symmetric_eigen(&a),
            Err(TsError::NonFinite {
                series: 3,
                index: 5
            })
        ));
    }
}
