//! Dense matrices and symmetric eigensolvers.
//!
//! This crate is the linear-algebra substrate of the k-Shape reproduction.
//! k-Shape's shape extraction (Section 3.2 of the paper) maximizes a
//! Rayleigh quotient, which requires the dominant eigenvector of a real
//! symmetric matrix; spectral clustering and KSC need full symmetric
//! eigendecompositions. Everything here is implemented from scratch:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix,
//! * [`eigen::symmetric_eigen`] — Householder tridiagonalization followed by
//!   implicit-shift QL iteration (the workhorse solver),
//! * [`jacobi::jacobi_eigen`] — a cyclic Jacobi solver used as an
//!   independent cross-check,
//! * [`power::power_iteration`] — fast dominant-eigenvector extraction for
//!   positive semi-definite matrices,
//! * [`dominant::try_dominant_symmetric_eigen`] — validated Lanczos solver
//!   for the single dominant eigenpair with a dense fallback (the hot path
//!   of shape extraction).
//!
//! # Example
//!
//! ```
//! use tslinalg::{Matrix, eigen::symmetric_eigen};
//!
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
//! let eig = symmetric_eigen(&a);
//! // Eigenvalues of [[2,1],[1,2]] are 3 and 1, sorted descending.
//! assert!((eig.values[0] - 3.0).abs() < 1e-10);
//! assert!((eig.values[1] - 1.0).abs() < 1e-10);
//! ```

#![warn(missing_docs)]

pub mod dominant;
pub mod eigen;
pub mod jacobi;
pub mod matrix;
pub mod power;

pub use dominant::{try_dominant_symmetric_eigen, DominantEigen};
pub use eigen::{symmetric_eigen, try_symmetric_eigen, SymmetricEigen};
pub use matrix::Matrix;
pub use power::power_iteration;
