//! A row-major dense matrix of `f64`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense matrix stored in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer size must equal rows * cols"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns true if the matrix has no entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a slice.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Borrows the underlying row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Sets every element to `value` — lets long-lived accumulator
    /// matrices (streaming Gram updates) reset without reallocating.
    #[inline]
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Adds `alpha · x xᵀ` to the matrix (rank-one update).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the (square) dimension.
    pub fn rank_one_update(&mut self, x: &[f64], alpha: f64) {
        assert_eq!(
            self.rows, self.cols,
            "rank-one update requires a square matrix"
        );
        assert_eq!(x.len(), self.rows, "vector length must equal dimension");
        for r in 0..self.rows {
            let xr = alpha * x[r];
            let row = self.row_mut(r);
            for (o, &xc) in row.iter_mut().zip(x.iter()) {
                *o += xr * xc;
            }
        }
    }

    /// Returns the maximum absolute asymmetry `max |A_ij − A_ji|`.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for c in 0..r.min(self.cols) {
                worst = worst.max((self[(r, c)] - self[(c, r)]).abs());
            }
        }
        worst
    }

    /// Returns true when the matrix is square and symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.rows == self.cols && self.asymmetry() <= tol
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Euclidean norm of a vector.
#[inline]
#[must_use]
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Dot product with four independent accumulators.
///
/// Strict left-to-right summation (as in [`dot`]) forms a sequential
/// dependency chain that blocks both vectorization and instruction-level
/// parallelism; splitting the sum into four lanes breaks the chain and runs
/// ~3–4× faster on the long rows the Gram builds in shape extraction chew
/// through. The summation *order* differs from [`dot`], so results agree
/// only to rounding — hot paths that adopt this function change their
/// low-order bits, deterministically.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
#[must_use]
pub fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    let mut acc = [0.0f64; 4];
    let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
    let (b4, b_tail) = b.split_at(a4.len());
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail.iter()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Normalizes `v` to unit Euclidean norm in place. Leaves zero vectors
/// untouched and returns the original norm.
pub fn normalize(v: &mut [f64]) -> f64 {
    let n = norm2(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::{dot, dot_unrolled, norm2, normalize, Matrix};

    #[test]
    fn dot_unrolled_matches_dot_to_rounding() {
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for len in [0usize, 1, 3, 4, 7, 128, 129, 1000] {
            let a: Vec<f64> = (0..len).map(|_| next()).collect();
            let b: Vec<f64> = (0..len).map(|_| next()).collect();
            let strict = dot(&a, &b);
            let fast = dot_unrolled(&a, &b);
            assert!(
                (strict - fast).abs() <= 1e-12 * (1.0 + strict.abs()),
                "len {len}: {strict} vs {fast}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_unrolled_rejects_mismatch() {
        let _ = dot_unrolled(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn identity_matvec() {
        let i = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.matvec(&v), v);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], 7.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn rank_one_update_builds_gram_matrix() {
        let mut m = Matrix::zeros(3, 3);
        m.rank_one_update(&[1.0, 2.0, 3.0], 1.0);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m[(2, 2)], 9.0);
        assert!(m.is_symmetric(0.0));
        // Accumulation: adding 2·uuᵀ with u = (1, 0, −1) changes (0,2) by −2.
        m.rank_one_update(&[1.0, 0.0, -1.0], 2.0);
        assert_eq!(m[(0, 2)], 3.0 - 2.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn rank_one_update_matches_outer_product() {
        let x = [1.5, -2.0, 0.5];
        let mut m = Matrix::zeros(3, 3);
        m.rank_one_update(&x, 2.0);
        for r in 0..3 {
            for c in 0..3 {
                assert!((m[(r, c)] - 2.0 * x[r] * x[c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symmetry_detection() {
        let mut m = Matrix::identity(3);
        assert!(m.is_symmetric(0.0));
        m[(0, 2)] = 0.5;
        assert!(!m.is_symmetric(1e-9));
        assert!((m.asymmetry() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vector_helpers() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
        let mut v = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
