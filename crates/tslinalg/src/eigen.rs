//! Symmetric eigendecomposition via Householder tridiagonalization followed
//! by implicit-shift QL iteration.
//!
//! This is the classical `tred2` / `tqli` pair (Golub & Van Loan; Numerical
//! Recipes). It is O(n³), numerically robust for real symmetric input, and
//! returns all eigenpairs with eigenvectors accumulated through both stages.

use crate::matrix::Matrix;
use tserror::{TsError, TsResult};

/// A full symmetric eigendecomposition.
///
/// Eigenvalues are sorted in **descending** order; `vectors.col(i)` is the
/// unit-norm eigenvector for `values[i]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, largest first.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, in the same order as `values`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Returns the eigenvector for the largest eigenvalue.
    #[must_use]
    pub fn dominant_vector(&self) -> Vec<f64> {
        self.vectors.col(0)
    }

    /// Returns the eigenvector for the smallest eigenvalue.
    #[must_use]
    pub fn smallest_vector(&self) -> Vec<f64> {
        self.vectors.col(self.values.len() - 1)
    }

    /// Maximum residual `‖A v − λ v‖∞` over all eigenpairs; a quality check.
    #[must_use]
    pub fn max_residual(&self, a: &Matrix) -> f64 {
        let n = self.values.len();
        let mut worst = 0.0f64;
        for i in 0..n {
            let v = self.vectors.col(i);
            let av = a.matvec(&v);
            for (x, y) in av.iter().zip(v.iter()) {
                worst = worst.max((x - self.values[i] * y).abs());
            }
        }
        worst
    }
}

/// Computes the full eigendecomposition of a real symmetric matrix.
///
/// # Panics
///
/// Panics if `a` is not square, or if the QL iteration fails to converge
/// (more than 50 sweeps for one eigenvalue — practically unreachable for
/// symmetric input).
#[must_use]
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition requires a square matrix"
    );
    try_symmetric_eigen(a).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible eigendecomposition: validates the input once and reports a
/// typed error instead of panicking.
///
/// # Errors
///
/// * [`TsError::LengthMismatch`] for a non-square matrix,
/// * [`TsError::NonFinite`] at the first NaN/infinite entry (row as
///   `series`, column as `index`),
/// * [`TsError::NumericalFailure`] when the QL iteration fails to
///   converge within 50 sweeps for some eigenvalue — reachable only for
///   pathological (e.g. enormously ill-scaled) inputs, but a typed error
///   beats an abort when it happens.
pub fn try_symmetric_eigen(a: &Matrix) -> TsResult<SymmetricEigen> {
    if a.rows() != a.cols() {
        return Err(TsError::LengthMismatch {
            expected: a.rows(),
            found: a.cols(),
            series: 0,
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }
    if let Some(flat) = a.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(TsError::NonFinite {
            series: flat / n,
            index: flat % n,
        });
    }

    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    let converged = tqli(&mut d, &mut e, &mut z);
    if !converged {
        return Err(TsError::NumericalFailure {
            context: "QL iteration failed to converge".into(),
        });
    }

    // Sort eigenpairs by descending eigenvalue. The input was validated
    // finite, so `total_cmp` orders identically to `partial_cmp` here
    // while staying total by construction.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].total_cmp(&d[i]));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = z[(r, old_c)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
///
/// On exit, `d` holds the diagonal, `e` the sub-diagonal (with `e[0] = 0`),
/// and `z` the accumulated orthogonal transformation.
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in j + 1..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let upd = g * z[(k, i)];
                    z[(k, j)] -= upd;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// `sqrt(a² + b²)` without destructive overflow.
#[inline]
fn pythag(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

/// QL iteration with implicit shifts on a symmetric tridiagonal matrix,
/// accumulating the rotations into `z`.
///
/// Returns `false` when some eigenvalue fails to converge within 50
/// sweeps (the caller reports a typed error instead of aborting).
#[must_use]
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> bool {
    let n = d.len();
    if n <= 1 {
        return true;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return false;
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::symmetric_eigen;
    use crate::matrix::Matrix;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..=r {
                let v = next();
                m[(r, c)] = v;
                m[(c, r)] = v;
            }
        }
        m
    }

    #[test]
    fn empty_matrix() {
        let eig = symmetric_eigen(&Matrix::zeros(0, 0));
        assert!(eig.values.is_empty());
    }

    #[test]
    fn one_by_one() {
        let eig = symmetric_eigen(&Matrix::from_rows(&[&[4.5]]));
        assert!((eig.values[0] - 4.5).abs() < 1e-12);
        assert!((eig.vectors[(0, 0)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = symmetric_eigen(&a);
        assert!((eig.values[0] - 3.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        // Dominant eigenvector is (1,1)/√2 up to sign.
        let v = eig.dominant_vector();
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]);
        let eig = symmetric_eigen(&a);
        assert!((eig.values[0] - 5.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        assert!((eig.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residuals_small_on_random_matrices() {
        for (n, seed) in [(2, 1u64), (3, 2), (5, 3), (10, 4), (25, 5), (50, 6)] {
            let a = random_symmetric(n, seed);
            let eig = symmetric_eigen(&a);
            let res = eig.max_residual(&a);
            assert!(res < 1e-9 * (n as f64), "n={n}: residual {res}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(12, 99);
        let eig = symmetric_eigen(&a);
        let n = 12;
        for i in 0..n {
            for j in 0..n {
                let vi = eig.vectors.col(i);
                let vj = eig.vectors.col(j);
                let d: f64 = vi.iter().zip(vj.iter()).map(|(a, b)| a * b).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-9, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(20, 7);
        let eig = symmetric_eigen(&a);
        let trace: f64 = (0..20).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn positive_semidefinite_gram_matrix() {
        // Gram matrices (as used by shape extraction) must have
        // non-negative eigenvalues.
        let mut g = Matrix::zeros(6, 6);
        let mut state = 5u64;
        for _ in 0..4 {
            let x: Vec<f64> = (0..6)
                .map(|_| {
                    state = state.wrapping_mul(48271).wrapping_add(11);
                    (state % 1000) as f64 / 500.0 - 1.0
                })
                .collect();
            g.rank_one_update(&x, 1.0);
        }
        let eig = symmetric_eigen(&g);
        for &v in &eig.values {
            assert!(v > -1e-9, "negative eigenvalue {v} for PSD matrix");
        }
        // Rank is at most 4, so the two smallest eigenvalues are ~0.
        assert!(eig.values[4].abs() < 1e-9);
        assert!(eig.values[5].abs() < 1e-9);
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        let a = Matrix::identity(5);
        let eig = symmetric_eigen(&a);
        for &v in &eig.values {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!(eig.max_residual(&a) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let _ = symmetric_eigen(&Matrix::zeros(2, 3));
    }
}
