//! Power iteration for the dominant eigenvector.
//!
//! Shape extraction (paper Section 3.2) only needs the eigenvector of the
//! largest eigenvalue of a positive semi-definite matrix `M = QᵀSQ`. Power
//! iteration finds it in O(n² · iters) instead of the O(n³) of a full
//! decomposition, and is exposed as a fast-path option the ablation bench
//! compares against the full solver.

use crate::matrix::{normalize, Matrix};

/// Result of a power-iteration run.
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Estimated dominant eigenvalue (Rayleigh quotient at convergence).
    pub value: f64,
    /// Unit-norm estimate of the dominant eigenvector.
    pub vector: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the convergence tolerance was met.
    pub converged: bool,
}

/// Runs power iteration on a square matrix.
///
/// Intended for positive semi-definite matrices, where the dominant
/// eigenvalue is also the largest in magnitude. For general symmetric
/// matrices a large negative eigenvalue would win instead; callers that
/// cannot guarantee PSD input should use [`crate::eigen::symmetric_eigen`].
///
/// # Panics
///
/// Panics if `a` is not square or is empty.
#[must_use]
pub fn power_iteration(a: &Matrix, max_iter: usize, tol: f64) -> PowerResult {
    assert_eq!(
        a.rows(),
        a.cols(),
        "power iteration requires a square matrix"
    );
    let n = a.rows();
    assert!(n > 0, "power iteration requires a non-empty matrix");

    // Deterministic non-degenerate start vector.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64 * 0.7391).sin() * 0.5)
        .collect();
    normalize(&mut v);

    let mut value = 0.0;
    for it in 1..=max_iter {
        let mut w = a.matvec(&v);
        let norm = normalize(&mut w);
        if norm == 0.0 {
            // v is in the null space; the dominant eigenvalue is 0 (PSD).
            return PowerResult {
                value: 0.0,
                vector: v,
                iterations: it,
                converged: true,
            };
        }
        // Rayleigh quotient λ = vᵀAv for the normalized iterate.
        let av = a.matvec(&w);
        value = w.iter().zip(av.iter()).map(|(x, y)| x * y).sum();
        // Convergence: direction change below tolerance (sign-insensitive).
        let dot: f64 = v.iter().zip(w.iter()).map(|(x, y)| x * y).sum();
        let delta = 1.0 - dot.abs();
        v = w;
        if delta < tol {
            return PowerResult {
                value,
                vector: v,
                iterations: it,
                converged: true,
            };
        }
    }
    PowerResult {
        value,
        vector: v,
        iterations: max_iter,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::power_iteration;
    use crate::eigen::symmetric_eigen;
    use crate::matrix::Matrix;

    #[test]
    fn diagonal_dominant_eigenpair() {
        let a = Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[0.0, 2.0, 0.0], &[0.0, 0.0, 1.0]]);
        let r = power_iteration(&a, 500, 1e-14);
        assert!(r.converged);
        assert!((r.value - 5.0).abs() < 1e-8);
        assert!((r.vector[0].abs() - 1.0).abs() < 1e-6);
        assert!(r.vector[1].abs() < 1e-6);
    }

    #[test]
    fn matches_full_solver_on_gram_matrix() {
        // Build a PSD Gram matrix from a few random vectors.
        let mut g = Matrix::zeros(8, 8);
        let mut state = 3u64;
        for _ in 0..5 {
            let x: Vec<f64> = (0..8)
                .map(|_| {
                    state = state
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(3037000493);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            g.rank_one_update(&x, 1.0);
        }
        let full = symmetric_eigen(&g);
        let fast = power_iteration(&g, 2000, 1e-14);
        assert!(fast.converged);
        assert!((fast.value - full.values[0]).abs() < 1e-6);
        let dv = full.dominant_vector();
        let dot: f64 = dv.iter().zip(fast.vector.iter()).map(|(a, b)| a * b).sum();
        assert!((dot.abs() - 1.0).abs() < 1e-5, "|<u,v>| = {}", dot.abs());
    }

    #[test]
    fn zero_matrix_converges_to_zero_eigenvalue() {
        let a = Matrix::zeros(4, 4);
        let r = power_iteration(&a, 10, 1e-12);
        assert!(r.converged);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn reports_nonconvergence_with_tiny_budget() {
        // Two nearly equal eigenvalues converge slowly.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.999999]]);
        let r = power_iteration(&a, 1, 1e-16);
        assert_eq!(r.iterations, 1);
        // value is still a sensible Rayleigh quotient.
        assert!(r.value > 0.9 && r.value <= 1.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_matrix() {
        let _ = power_iteration(&Matrix::zeros(0, 0), 10, 1e-12);
    }
}
