//! Minimal property-testing harness for the workspace.
//!
//! A hermetic, ~300-line replacement for the subset of `proptest` the
//! workspace used: run a predicate over many pseudo-randomly generated
//! cases, and on failure report a **replay seed** that reproduces the
//! exact failing case. There is no shrinking — cases here are small
//! enough (vectors of ≤ 128 floats) that replaying the failing seed under
//! a debugger is the faster workflow, and dropping shrinking removes the
//! one genuinely hairy part of a property-testing engine.
//!
//! # Usage
//!
//! ```
//! tscheck::props! {
//!     #[cases(64)]
//!     fn addition_commutes(g) {
//!         let a = g.f64_in(-1e6..1e6);
//!         let b = g.f64_in(-1e6..1e6);
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Each generated function is a regular `#[test]`. Inside the body, `g`
//! is a [`Gen`]: it implements [`tsrand::Rng`] (so it can be handed to
//! any workspace API expecting a generator) and adds vector/scalar
//! helpers. Failures are ordinary panics (`assert!`, `assert_eq!`, ...);
//! the harness catches them and re-panics with the case number and
//! replay seed. Use [`assume!`] to discard degenerate cases.
//!
//! # Reproducing failures
//!
//! A failure prints `replay with TSCHECK_SEED=0x…`. Running the same
//! test binary with that environment variable set executes *only* the
//! failing case:
//!
//! ```text
//! TSCHECK_SEED=0xdeadbeef cargo test -p tsfft fft_roundtrip
//! ```
//!
//! `TSCHECK_CASES=n` globally overrides the per-property case count
//! (e.g. a nightly job may crank it to 10 000).
//!
//! # Determinism
//!
//! The base seed of every property is the FNV-1a hash of its name, so
//! runs are identical across machines and invocations — a red test stays
//! red. Case seeds are drawn from a [`tsrand::SplitMix64`] stream over
//! the base seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tsrand::{Rng, SampleRange, SplitMix64, StdRng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases (overridable via `TSCHECK_CASES`).
    pub cases: u32,
    /// Base seed; `None` derives it from the property name.
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            seed: None,
        }
    }
}

/// The per-case value source handed to property bodies.
///
/// Implements [`tsrand::Rng`], so it can be passed directly to workspace
/// APIs that take `&mut R where R: Rng`.
pub struct Gen {
    rng: StdRng,
    case_seed: u64,
}

impl Gen {
    /// Builds the generator for a single case seed (exposed for replay
    /// tooling; property bodies receive a ready-made `Gen`).
    #[must_use]
    pub fn from_case_seed(case_seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(case_seed),
            case_seed,
        }
    }

    /// The seed that reproduces this case.
    #[must_use]
    pub fn case_seed(&self) -> u64 {
        self.case_seed
    }

    /// Uniform `f64` in the given range.
    pub fn f64_in<S: SampleRange<f64>>(&mut self, range: S) -> f64 {
        self.rng.gen_range(range)
    }

    /// Uniform `usize` in the given range.
    pub fn usize_in<S: SampleRange<usize>>(&mut self, range: S) -> usize {
        self.rng.gen_range(range)
    }

    /// Uniform `isize` in the given range.
    pub fn isize_in<S: SampleRange<isize>>(&mut self, range: S) -> isize {
        self.rng.gen_range(range)
    }

    /// Uniform `u64` in the given range.
    pub fn u64_in<S: SampleRange<u64>>(&mut self, range: S) -> u64 {
        self.rng.gen_range(range)
    }

    /// A vector of uniform `f64`s; length drawn from `len`, values from
    /// `vals`.
    pub fn vec_f64<L, V>(&mut self, len: L, vals: V) -> Vec<f64>
    where
        L: SampleRange<usize>,
        V: SampleRange<f64> + Clone,
    {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| self.rng.gen_range(vals.clone())).collect()
    }

    /// A vector of uniform `usize`s (e.g. cluster labelings); length drawn
    /// from `len`, values from `vals`.
    pub fn vec_usize<L, V>(&mut self, len: L, vals: V) -> Vec<usize>
    where
        L: SampleRange<usize>,
        V: SampleRange<usize> + Clone,
    {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| self.rng.gen_range(vals.clone())).collect()
    }

    /// Two equal-length vectors of uniform `f64`s — the ubiquitous
    /// "pair of series" fixture.
    pub fn pair_f64<L, V>(&mut self, len: L, vals: V) -> (Vec<f64>, Vec<f64>)
    where
        L: SampleRange<usize>,
        V: SampleRange<f64> + Clone,
    {
        let n = self.rng.gen_range(len);
        let a = (0..n).map(|_| self.rng.gen_range(vals.clone())).collect();
        let b = (0..n).map(|_| self.rng.gen_range(vals.clone())).collect();
        (a, b)
    }
}

impl Rng for Gen {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// FNV-1a over the property name: a stable, platform-independent base
/// seed.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("could not parse {var}={raw} as a u64"),
    }
}

/// Runs `body` over `config.cases` generated cases, panicking with a
/// replay seed on the first failure. This is the engine behind
/// [`props!`]; call it directly for programmatic properties.
pub fn run<F>(name: &str, config: Config, body: F)
where
    F: Fn(&mut Gen),
{
    // Replay mode: run exactly one case.
    if let Some(case_seed) = env_u64("TSCHECK_SEED") {
        let mut g = Gen::from_case_seed(case_seed);
        body(&mut g);
        return;
    }

    let cases = env_u64("TSCHECK_CASES")
        .map(|c| u32::try_from(c).expect("TSCHECK_CASES too large"))
        .unwrap_or(config.cases);
    let base = config.seed.unwrap_or_else(|| seed_from_name(name));
    let mut seeder = SplitMix64::new(base);

    for case in 0..cases {
        let case_seed = seeder.next_u64();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_case_seed(case_seed);
            body(&mut g);
        }));
        if let Err(payload) = outcome {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!(
                "property `{name}` failed at case {case}/{cases}: {detail}\n\
                 replay with TSCHECK_SEED={case_seed:#x}"
            );
        }
    }
}

/// Declares property tests. Each item becomes a `#[test]` function whose
/// body runs once per generated case with `g: &mut Gen` in scope.
///
/// ```
/// tscheck::props! {
///     /// Optional doc comment.
///     #[cases(32)]
///     fn length_is_respected(g) {
///         let v = g.vec_f64(1..=16, -1.0..1.0);
///         assert!((1..=16).contains(&v.len()));
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    () => {};
    (
        $(#[doc = $doc:expr])*
        #[cases($cases:expr)]
        fn $name:ident($g:ident) $body:block
        $($rest:tt)*
    ) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            $crate::run(
                stringify!($name),
                $crate::Config { cases: $cases, ..Default::default() },
                |$g: &mut $crate::Gen| $body,
            );
        }
        $crate::props! { $($rest)* }
    };
    (
        $(#[doc = $doc:expr])*
        fn $name:ident($g:ident) $body:block
        $($rest:tt)*
    ) => {
        $crate::props! {
            $(#[doc = $doc])*
            #[cases($crate::DEFAULT_CASES)]
            fn $name($g) $body
            $($rest)*
        }
    };
}

/// Discards the current case when a precondition fails (the `prop_assume!`
/// analogue): the case simply returns without testing anything.
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::{run, seed_from_name, Config, Gen};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use tsrand::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        // Count via interior mutability through a Cell-free trick: Fn is
        // required, so use an atomic.
        let counter = std::sync::atomic::AtomicU32::new(0);
        run(
            "counting",
            Config {
                cases: 17,
                seed: Some(1),
            },
            |_g| {
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            },
        );
        count += counter.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_reports_replay_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run(
                "always_fails",
                Config {
                    cases: 5,
                    seed: Some(2),
                },
                |_g| panic!("boom"),
            );
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("TSCHECK_SEED=0x"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let collect = |name: &str| {
            let seeds = std::sync::Mutex::new(Vec::new());
            run(
                name,
                Config {
                    cases: 4,
                    seed: None,
                },
                |g| {
                    seeds.lock().unwrap().push(g.case_seed());
                },
            );
            seeds.into_inner().unwrap()
        };
        assert_eq!(collect("prop_a"), collect("prop_a"));
        assert_ne!(collect("prop_a"), collect("prop_b"));
    }

    #[test]
    fn gen_helpers_respect_bounds() {
        let mut g = Gen::from_case_seed(42);
        for _ in 0..200 {
            let v = g.vec_f64(2..=8, -3.0..3.0);
            assert!((2..=8).contains(&v.len()));
            assert!(v.iter().all(|x| (-3.0..3.0).contains(x)));
            let (a, b) = g.pair_f64(4..=4, 0.0..1.0);
            assert_eq!(a.len(), 4);
            assert_eq!(b.len(), 4);
            let ls = g.vec_usize(1..=5, 0..3);
            assert!(ls.iter().all(|&l| l < 3));
        }
    }

    #[test]
    fn gen_is_an_rng() {
        let mut g = Gen::from_case_seed(7);
        let x = g.next_u64();
        let mut g2 = Gen::from_case_seed(7);
        assert_eq!(x, g2.next_u64());
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so property base seeds never drift silently.
        assert_eq!(seed_from_name(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(seed_from_name("a"), 0xaf63_dc4c_8601_ec8c);
    }

    props! {
        fn macro_declared_property(g) {
            let n = g.usize_in(1..10);
            crate::assume!(n > 1);
            assert!((2..10).contains(&n));
        }

        #[cases(8)]
        fn macro_with_case_count(g) {
            let v = g.f64_in(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
