//! Thread-matrix determinism probe for CI.
//!
//! Runs one k-Shape fit on the bench harness's CBF workload with the
//! worker count left to `KSHAPE_THREADS` (via `resolve_threads(0)`), and
//! prints labels, per-centroid bit hashes, and the inertia bit pattern.
//! CI runs this under `KSHAPE_THREADS=1` and `KSHAPE_THREADS=4` and
//! diffs the outputs: the parallel sweep's determinism contract
//! (DESIGN.md §4b) says they must be byte-identical.

use kshape::{KShape, KShapeOptions};

/// FNV-1a over the exact bit patterns of a float slice.
fn hash_f64s(xs: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn main() {
    let series = bench::cbf_series(300, 128, 5);
    let opts = KShapeOptions::new(3).with_seed(1).with_max_iter(10);
    let fit = KShape::fit_with(&series, &opts).expect("CBF workload is clean");
    println!("iterations {}", fit.iterations);
    println!(
        "labels {}",
        fit.labels
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    for (j, c) in fit.centroids.iter().enumerate() {
        println!("centroid {j} {:016x}", hash_f64s(c));
    }
    println!("inertia {:016x}", fit.inertia.to_bits());
}
