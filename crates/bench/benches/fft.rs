//! FFT substrate microbenchmarks: radix-2 vs Bluestein vs naive DFT, and
//! the three cross-correlation strategies of Section 3.1.
//!
//! Quantifies the paper's claims that the convolution-theorem path turns
//! O(m²) correlation into O(m log m), and that power-of-two padding beats
//! an exact-size transform.

use bench::random_series;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tsfft::bluestein::BluesteinFft;
use tsfft::complex::Complex;
use tsfft::correlate::{cross_correlate_bluestein, cross_correlate_fft, cross_correlate_naive};
use tsfft::dft::dft;
use tsfft::fft::Radix2Fft;

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_transform");
    for &n in &[256usize, 1024, 4096] {
        let signal: Vec<Complex> = random_series(n, 7)
            .into_iter()
            .map(Complex::from_real)
            .collect();
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            let plan = Radix2Fft::new(n);
            b.iter(|| plan.forward_vec(black_box(signal.clone())))
        });
        // Bluestein at the awkward size n - 1 (never a power of two here).
        let odd: Vec<Complex> = signal[..n - 1].to_vec();
        group.bench_with_input(BenchmarkId::new("bluestein", n - 1), &n, |b, _| {
            let plan = BluesteinFft::new(n - 1);
            b.iter(|| plan.forward(black_box(&odd)))
        });
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("naive_dft", n), &n, |b, _| {
                b.iter(|| dft(black_box(&signal)))
            });
        }
    }
    group.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_correlation");
    for &m in &[64usize, 256, 1024] {
        let x = random_series(m, 1);
        let y = random_series(m, 2);
        group.bench_with_input(BenchmarkId::new("fft_pow2", m), &m, |b, _| {
            b.iter(|| cross_correlate_fft(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("bluestein_exact", m), &m, |b, _| {
            b.iter(|| cross_correlate_bluestein(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| cross_correlate_naive(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("length_reduction");
    for &m in &[512usize, 2048] {
        let x = random_series(m, 19);
        group.bench_with_input(BenchmarkId::new("paa_to_128", m), &m, |b, _| {
            b.iter(|| tsdata::reduce::paa(black_box(&x), 128))
        });
        group.bench_with_input(BenchmarkId::new("haar_reduce_128", m), &m, |b, _| {
            b.iter(|| tsdata::reduce::haar_reduce(black_box(&x), 128))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_transforms, bench_correlation, bench_reduction
}
criterion_main!(benches);
