//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * initialization — random assignment (the paper) vs k-shape++ seeding,
//! * centroid refinements per k-DBA iteration — 1 (the paper's default)
//!   vs 5 (its footnote 8 reports +4% Rand for +30% runtime),
//! * LB_Keogh cascading for cDTW 1-NN search on/off.

use bench::ecg_dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kshape::init::InitStrategy;
use kshape::{KShape, KShapeConfig};
use tscluster::dba::{kdba, KDbaConfig};
use tsdata::collection::split_alternating;
use tsdata::dataset::Dataset;
use tsdist::dtw::Dtw;
use tsdist::nn::{one_nn_accuracy, one_nn_accuracy_lb};

fn bench_init(c: &mut Criterion) {
    let (series, _) = ecg_dataset(30, 128, 33);
    let mut group = c.benchmark_group("ablation_init");
    group.bench_function("random_init", |b| {
        b.iter(|| {
            KShape::new(KShapeConfig {
                k: 2,
                max_iter: 30,
                seed: 2,
                init: InitStrategy::Random,
                ..Default::default()
            })
            .fit(black_box(&series))
        })
    });
    group.bench_function("plus_plus_init", |b| {
        b.iter(|| {
            KShape::new(KShapeConfig {
                k: 2,
                max_iter: 30,
                seed: 2,
                init: InitStrategy::PlusPlus,
                ..Default::default()
            })
            .fit(black_box(&series))
        })
    });
    group.finish();
}

fn bench_dba_refinements(c: &mut Criterion) {
    let (series, _) = ecg_dataset(20, 96, 34);
    let mut group = c.benchmark_group("ablation_dba_refinements");
    group.sample_size(10);
    for refinements in [1usize, 5] {
        group.bench_function(format!("refinements_{refinements}"), |b| {
            b.iter(|| {
                kdba(
                    black_box(&series),
                    &KDbaConfig {
                        k: 2,
                        max_iter: 15,
                        seed: 3,
                        refinements_per_iter: refinements,
                        window: None,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_lb_cascade(c: &mut Criterion) {
    let (series, labels) = ecg_dataset(30, 128, 35);
    let data = Dataset::new("bench", series, labels);
    let split = split_alternating(data);
    let w = 6;
    let mut group = c.benchmark_group("ablation_lb_keogh");
    group.bench_function("cdtw_plain", |b| {
        b.iter(|| one_nn_accuracy(&Dtw::with_window(w), black_box(&split.train), &split.test))
    });
    group.bench_function("cdtw_lb_cascade", |b| {
        b.iter(|| one_nn_accuracy_lb(Some(w), black_box(&split.train), &split.test))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_init, bench_dba_refinements, bench_lb_cascade
}
criterion_main!(benches);
