//! Table 3 runtime column, as a benchmark: full clustering runs of each
//! scalable method on a fixed ECG-like dataset.
//!
//! Paper expectations: k-AVG+ED fastest; k-Shape within roughly an order
//! of magnitude; KSC slower; k-DBA (full DTW paths every iteration) and
//! anything assigning with unconstrained DTW slowest.

use bench::ecg_dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kshape::{KShape, KShapeConfig};
use tscluster::dba::{kdba, KDbaConfig};
use tscluster::kmeans::{kmeans, KMeansConfig};
use tscluster::ksc::{ksc, KscConfig};
use tscluster::matrix::DissimilarityMatrix;
use tscluster::pam::pam;
use tsdist::dtw::Dtw;
use tsdist::EuclideanDistance;

fn bench_clustering(c: &mut Criterion) {
    let (series, _) = ecg_dataset(30, 128, 21);
    let max_iter = 20;

    let mut group = c.benchmark_group("clustering_full_fit");
    group.bench_function("k-AVG+ED", |b| {
        b.iter(|| {
            kmeans(
                black_box(&series),
                &EuclideanDistance,
                &KMeansConfig {
                    k: 2,
                    max_iter,
                    seed: 1,
                },
            )
        })
    });
    group.bench_function("k-Shape", |b| {
        b.iter(|| {
            KShape::new(KShapeConfig {
                k: 2,
                max_iter,
                seed: 1,
                ..Default::default()
            })
            .fit(black_box(&series))
        })
    });
    group.bench_function("KSC", |b| {
        b.iter(|| {
            ksc(
                black_box(&series),
                &KscConfig {
                    k: 2,
                    max_iter,
                    seed: 1,
                },
            )
        })
    });
    group.bench_function("k-DBA", |b| {
        b.iter(|| {
            kdba(
                black_box(&series),
                &KDbaConfig {
                    k: 2,
                    max_iter,
                    seed: 1,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("PAM+cDTW(matrix+swap)", |b| {
        // The paper's point about PAM: the dissimilarity matrix dominates.
        b.iter(|| {
            let matrix = DissimilarityMatrix::compute(black_box(&series), &Dtw::with_window(6));
            pam(&matrix, 2, max_iter)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_clustering
}
criterion_main!(benches);
