//! Table 2 runtime column, as a microbenchmark: per-pair cost of each
//! distance measure across series lengths.
//!
//! Paper expectations: ED fastest; SBD a small factor slower; SBD-NoPow2
//! slower than SBD; SBD-NoFFT and DTW quadratic (their gap to SBD widens
//! with `m`); cDTW between ED and DTW.

use bench::random_series;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kshape::sbd::{sbd_with, CorrMethod, SbdPlan};
use tsdist::dtw::dtw_distance;
use tsdist::ed::euclidean;
use tsdist::erp::erp_distance;
use tsdist::lcss::lcss_length;
use tsdist::msm::msm_distance;

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_per_pair");
    for &m in &[64usize, 256, 1024] {
        let x = random_series(m, 1);
        let y = random_series(m, 2);

        group.bench_with_input(BenchmarkId::new("ED", m), &m, |b, _| {
            b.iter(|| euclidean(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("SBD", m), &m, |b, _| {
            b.iter(|| sbd_with(black_box(&x), black_box(&y), CorrMethod::FftPow2).dist)
        });
        group.bench_with_input(BenchmarkId::new("SBD-planned", m), &m, |b, _| {
            // The hot-path variant used inside k-Shape: plan + reference
            // spectrum amortized.
            let plan = SbdPlan::new(m);
            let prepared = plan.prepare(&x);
            b.iter(|| plan.sbd_prepared(black_box(&prepared), black_box(&y)).dist)
        });
        group.bench_with_input(BenchmarkId::new("SBD-NoPow2", m), &m, |b, _| {
            b.iter(|| sbd_with(black_box(&x), black_box(&y), CorrMethod::FftExact).dist)
        });
        group.bench_with_input(BenchmarkId::new("SBD-NoFFT", m), &m, |b, _| {
            b.iter(|| sbd_with(black_box(&x), black_box(&y), CorrMethod::Naive).dist)
        });
        group.bench_with_input(BenchmarkId::new("cDTW-5", m), &m, |b, _| {
            let w = (0.05 * m as f64).round() as usize;
            b.iter(|| dtw_distance(black_box(&x), black_box(&y), Some(w)))
        });
        if m <= 256 {
            group.bench_with_input(BenchmarkId::new("DTW", m), &m, |b, _| {
                b.iter(|| dtw_distance(black_box(&x), black_box(&y), None))
            });
            // Elastic extensions share DTW's quadratic DP shape.
            group.bench_with_input(BenchmarkId::new("ERP", m), &m, |b, _| {
                b.iter(|| erp_distance(black_box(&x), black_box(&y), 0.0))
            });
            group.bench_with_input(BenchmarkId::new("MSM", m), &m, |b, _| {
                b.iter(|| msm_distance(black_box(&x), black_box(&y), 0.5))
            });
            group.bench_with_input(BenchmarkId::new("LCSS", m), &m, |b, _| {
                b.iter(|| lcss_length(black_box(&x), black_box(&y), 0.25, None))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_distances
}
criterion_main!(benches);
