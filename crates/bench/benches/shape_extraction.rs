//! Shape-extraction ablation bench (DESIGN.md design-choice list): the
//! full Householder+QL eigensolver vs power iteration as the
//! dominant-eigenvector backend, across cluster sizes and series lengths.
//!
//! Both backends return the same centroid (tested in `kshape`); this bench
//! quantifies the speed difference, including the dual-space shortcut that
//! kicks in when a cluster has fewer members than time points.

use bench::cbf_series;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kshape::extraction::{shape_extraction, EigenMethod};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape_extraction");
    for &(n, m) in &[(10usize, 128usize), (50, 128), (10, 512), (200, 128)] {
        let series = cbf_series(n, m, 11);
        let members: Vec<&[f64]> = series.iter().map(Vec::as_slice).collect();
        let reference = series[0].clone();
        group.bench_with_input(
            BenchmarkId::new("full_eigen", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    shape_extraction(
                        black_box(&members),
                        black_box(&reference),
                        EigenMethod::Full,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("power_iteration", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    shape_extraction(
                        black_box(&members),
                        black_box(&reference),
                        EigenMethod::Power,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_extraction
}
criterion_main!(benches);
