//! Eigensolver microbenchmarks: Householder+QL vs cyclic Jacobi vs power
//! iteration on random symmetric matrices.
//!
//! Shape extraction needs only the dominant eigenpair of a PSD matrix, so
//! power iteration's advantage over the full solvers is the headroom the
//! `EigenMethod::Power` fast path exploits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tslinalg::eigen::symmetric_eigen;
use tslinalg::jacobi::jacobi_eigen;
use tslinalg::matrix::Matrix;
use tslinalg::power::power_iteration;

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..=r {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            m[(r, c)] = v;
            m[(c, r)] = v;
        }
    }
    m
}

/// A PSD Gram matrix (the shape-extraction case).
fn random_psd(n: usize, rank: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut m = Matrix::zeros(n, n);
    for _ in 0..rank {
        let x: Vec<f64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        m.rank_one_update(&x, 1.0);
    }
    m
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_eigen");
    for &n in &[16usize, 64, 128] {
        let a = random_symmetric(n, 3);
        group.bench_with_input(BenchmarkId::new("householder_ql", n), &n, |b, _| {
            b.iter(|| symmetric_eigen(black_box(&a)))
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("jacobi", n), &n, |b, _| {
                b.iter(|| jacobi_eigen(black_box(&a)))
            });
        }
        let psd = random_psd(n, 8, 4);
        group.bench_with_input(BenchmarkId::new("power_iteration_psd", n), &n, |b, _| {
            b.iter(|| power_iteration(black_box(&psd), 200, 1e-12))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_eigen
}
criterion_main!(benches);
