//! Figure 12 as a benchmark: k-Shape and k-AVG+ED full fits on CBF while
//! (a) the number of series `n` grows at fixed `m = 128`, and (b) the
//! series length `m` grows at fixed `n`.
//!
//! Paper expectations: both methods linear in `n`; k-Shape's refinement is
//! O(m²)/O(m³) so its `m`-scaling is steeper.

use bench::cbf_series;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kshape::{KShape, KShapeConfig};
use tscluster::kmeans::{kmeans, KMeansConfig};
use tsdist::EuclideanDistance;

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_vs_n_m128");
    for &n in &[150usize, 300, 600, 1200] {
        let series = cbf_series(n, 128, 5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("k-Shape", n), &n, |b, _| {
            b.iter(|| {
                KShape::new(KShapeConfig {
                    k: 3,
                    max_iter: 10,
                    seed: 1,
                    ..Default::default()
                })
                .fit(black_box(&series))
            })
        });
        group.bench_with_input(BenchmarkId::new("k-AVG+ED", n), &n, |b, _| {
            b.iter(|| {
                kmeans(
                    black_box(&series),
                    &EuclideanDistance,
                    &KMeansConfig {
                        k: 3,
                        max_iter: 10,
                        seed: 1,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_vs_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_vs_m_n300");
    for &m in &[64usize, 128, 256, 512] {
        let series = cbf_series(300, m, 5);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("k-Shape", m), &m, |b, _| {
            b.iter(|| {
                KShape::new(KShapeConfig {
                    k: 3,
                    max_iter: 10,
                    seed: 1,
                    ..Default::default()
                })
                .fit(black_box(&series))
            })
        });
        group.bench_with_input(BenchmarkId::new("k-AVG+ED", m), &m, |b, _| {
            b.iter(|| {
                kmeans(
                    black_box(&series),
                    &EuclideanDistance,
                    &KMeansConfig {
                        k: 3,
                        max_iter: 10,
                        seed: 1,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vs_n, bench_vs_m
}
criterion_main!(benches);
