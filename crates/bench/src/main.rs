//! The `bench` binary: runs tsbench groups and writes `BENCH_<group>.json`.
//!
//! ```text
//! cargo run -p bench --release -- <group>... [--quick] [--out <dir>]
//! cargo run -p bench --release -- all
//! cargo run -p bench --release -- --list
//! ```
//!
//! Groups: distances, fft, eigen, shape_extraction, clustering,
//! scalability, ablation, kshape. JSON files land in `--out` (default:
//! the current directory) with one file per group, schema:
//!
//! ```json
//! { "group": "...", "samples": 30, "warmup_batches": 3,
//!   "benchmarks": [ { "name": "...", "batch": 1, "median_ns": 0.0,
//!                     "p95_ns": 0.0, "mean_ns": 0.0, "min_ns": 0.0 } ] }
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bench::groups::{run_group, GROUP_NAMES};

// Counting pass-through allocator so the `scale` group can report
// allocations-per-fit. Binary only: library tests stay on the system
// allocator and the counters read zero there.
#[global_allocator]
static GLOBAL: bench::alloc_stats::CountingAlloc = bench::alloc_stats::CountingAlloc;

fn usage() -> String {
    format!(
        "usage: bench <group>... [--quick] [--out <dir>]\n\
         groups: {} | all",
        GROUP_NAMES.join(" | ")
    )
}

fn main() -> ExitCode {
    let mut groups: Vec<String> = Vec::new();
    let mut quick = false;
    let mut out_dir = PathBuf::from(".");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for name in GROUP_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "all" => groups.extend(GROUP_NAMES.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            other => groups.push(other.to_string()),
        }
    }

    if groups.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    groups.dedup();

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output directory {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    #[cfg(debug_assertions)]
    eprintln!("warning: running benchmarks without --release; timings will be misleading");

    for name in &groups {
        println!("group {name}{}", if quick { " (quick)" } else { "" });
        let Some(group) = run_group(name, quick) else {
            eprintln!("unknown group `{name}`\n{}", usage());
            return ExitCode::FAILURE;
        };
        match group.write_json(&out_dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write JSON for {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
