//! A counting [`GlobalAlloc`] shim for the bench binary.
//!
//! The `scale` group reports allocations-per-fit for the in-memory
//! nested-`Vec` path versus the contiguous [`tsdata::store::SeriesStore`]
//! data plane. Counting happens in the allocator itself, so the numbers
//! include every transitive allocation a fit performs — spectra, scratch
//! buffers, centroid clones — not just the ones the caller can see.
//!
//! Only the `bench` *binary* installs this allocator (via
//! `#[global_allocator]` in `main.rs`); library unit tests run on the
//! system allocator and [`allocation_count`] stays at zero there, which
//! the group treats as "counter not installed" rather than an error.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Pass-through allocator that counts `alloc`/`realloc` calls.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`, adding only a relaxed
// atomic increment; layout contracts are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

/// Total `alloc`/`alloc_zeroed`/`realloc` calls since process start, or
/// zero when the counting allocator is not installed.
#[must_use]
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
