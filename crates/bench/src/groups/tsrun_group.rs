//! The `tsrun` group — cancellation-poll overhead on the hot loops.
//!
//! The execution-control layer promises "pay only when armed": options
//! objects without a budget or cancel token build a passive
//! `RunControl` whose poll points are a single branch, and even an
//! *armed* control reads the wall clock only once per
//! `DEFAULT_CLOCK_STRIDE` cost units (CAS-elected, so one syscall per
//! stride window even under contention). This group pins the promise as
//! numbers in `BENCH_tsrun.json`:
//!
//! * `kshape_fit_plain` vs `kshape_fit_armed` — a full k-Shape fit with
//!   the passive control vs one with a far-future deadline, a live
//!   cancel token, and cost accounting all armed. **Target: armed stays
//!   within 2% of plain** (the ISSUE acceptance bar for poll overhead on
//!   the k-Shape hot loop); regressions here mean a poll point landed in
//!   an inner loop it should not have.
//! * `charge_passive_x1024` / `charge_armed_x1024` — the raw per-poll
//!   cost of 1024 `charge()` calls on each path.

use std::hint::black_box;
use std::time::Duration;

use tsbench::Group;
use tsrun::{Budget, CancelToken, RunControl};

use crate::cbf_series;
use kshape::{KShape, KShapeConfig, KShapeOptions};

/// A budget that will never actually trip: hour-long deadline, huge
/// cost quota. Combined with a live (un-fired) cancel token it arms
/// every poll point's slow path; nothing stops.
fn armed_budget() -> Budget {
    Budget::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_cost_cap(u64::MAX / 2)
        .with_iteration_cap(usize::MAX)
}

/// Runs the `tsrun` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("tsrun").with_config(super::macro_config(quick));

    // Poll overhead on the k-Shape hot loop (assignment distances +
    // refinement), measured end-to-end on a CBF workload.
    let (n, m) = if quick { (30, 48) } else { (90, 128) };
    let series = cbf_series(n, m, 5);
    let config = KShapeConfig {
        k: 3,
        max_iter: if quick { 3 } else { 10 },
        seed: 1,
        ..Default::default()
    };
    let plain_opts = KShapeOptions::from(config);
    g.bench(&format!("kshape_fit_plain/n{n}_m{m}"), || {
        KShape::fit_with(black_box(&series), &plain_opts).map(|r| r.iterations)
    });
    let armed_opts = KShapeOptions::from(config)
        .with_budget(armed_budget())
        .with_cancel(CancelToken::new());
    g.bench(&format!("kshape_fit_armed/n{n}_m{m}"), || {
        KShape::fit_with(black_box(&series), &armed_opts).map(|r| r.iterations)
    });

    // Raw per-poll cost: 1024 charges on the passive vs the armed path.
    let passive = RunControl::unlimited();
    g.bench("charge_passive_x1024", || {
        let mut ok = 0u64;
        for i in 0..1024u64 {
            if passive.charge(black_box(i & 7)).is_ok() {
                ok += 1;
            }
        }
        ok
    });
    let armed = RunControl::new(armed_budget(), Some(CancelToken::new()));
    g.bench("charge_armed_x1024", || {
        let mut ok = 0u64;
        for i in 0..1024u64 {
            if armed.charge(black_box(i & 7)).is_ok() {
                ok += 1;
            }
        }
        ok
    });

    g
}
