//! tsbench benchmark groups, one per former Criterion bench target plus
//! the `kshape` headline group that seeds the repo's perf trajectory.
//!
//! Every group is a function `run(quick: bool) -> tsbench::Group`; the
//! `bench` binary dispatches on the group name and writes
//! `BENCH_<group>.json`. `quick` trims workload sizes and sample counts
//! so the full suite can double as a smoke test.

pub mod ablation;
pub mod clustering;
pub mod distances;
pub mod eigen;
pub mod fft;
pub mod kshape_group;
pub mod scalability;
pub mod scale_group;
pub mod serve_group;
pub mod shape_extraction;
pub mod stream_group;
pub mod tsobs_group;
pub mod tsrun_group;

use tsbench::{Config, Group};

/// All group names, in suggested run order.
pub const GROUP_NAMES: &[&str] = &[
    "distances",
    "fft",
    "eigen",
    "shape_extraction",
    "clustering",
    "scalability",
    "scale",
    "ablation",
    "kshape",
    "tsrun",
    "tsobs",
    "serve",
    "stream",
];

/// Dispatches a group by name.
#[must_use]
pub fn run_group(name: &str, quick: bool) -> Option<Group> {
    match name {
        "distances" => Some(distances::run(quick)),
        "fft" => Some(fft::run(quick)),
        "eigen" => Some(eigen::run(quick)),
        "shape_extraction" => Some(shape_extraction::run(quick)),
        "clustering" => Some(clustering::run(quick)),
        "scalability" => Some(scalability::run(quick)),
        "scale" => Some(scale_group::run(quick)),
        "ablation" => Some(ablation::run(quick)),
        "kshape" => Some(kshape_group::run(quick)),
        "tsrun" => Some(tsrun_group::run(quick)),
        "tsobs" => Some(tsobs_group::run(quick)),
        "serve" => Some(serve_group::run(quick)),
        "stream" => Some(stream_group::run(quick)),
        _ => None,
    }
}

/// Config for micro-benchmarks (sub-microsecond bodies): auto-batched.
pub(crate) fn micro_config(quick: bool) -> Config {
    if quick {
        Config::quick()
    } else {
        Config::default()
    }
}

/// Config for macro-benchmarks (full clustering fits): one fit per
/// sample, fewer samples.
pub(crate) fn macro_config(quick: bool) -> Config {
    if quick {
        Config {
            samples: 2,
            warmup_batches: 0,
            min_batch_ns: 0,
        }
    } else {
        Config {
            samples: 10,
            warmup_batches: 1,
            min_batch_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{run_group, GROUP_NAMES};

    #[test]
    fn unknown_group_is_none() {
        assert!(run_group("nope", true).is_none());
    }

    #[test]
    fn every_listed_group_dispatches_quick() {
        // Smoke: every group runs end-to-end in quick mode and yields
        // at least one record with positive timings.
        for name in GROUP_NAMES {
            let g = run_group(name, true).expect(name);
            assert!(!g.records().is_empty(), "group {name} recorded nothing");
            for r in g.records() {
                // Scalar records (unit in the name, e.g. a shed *rate*,
                // or the `scale` group's allocation counters, which read
                // zero unless the bench binary's counting allocator is
                // installed) may legitimately be zero; timings must not be.
                let scalar = r.name.ends_with("_rate")
                    || r.name.ends_with("_rps")
                    || r.name.ends_with("_ratio")
                    || r.name.ends_with("_allocs");
                if scalar {
                    assert!(r.median_ns >= 0.0, "{name}/{} is negative", r.name);
                } else {
                    assert!(r.median_ns > 0.0, "{name}/{} has zero median", r.name);
                }
                assert!(r.p95_ns >= r.median_ns);
            }
        }
    }
}
