//! Scale group: the contiguous data plane versus the nested-`Vec` idiom.
//!
//! Two comparisons back the PR-9 data-plane claim:
//!
//! * **Assignment throughput** — one cold assignment sweep (3 shape
//!   centroids over z-normalized CBF) through the streaming
//!   [`kshape::assign_store`] row-view path, against the pre-store
//!   nested-`Vec` idiom of a [`SbdPlan::sbd_prepared`] sweep that
//!   re-FFTs each row once per centroid and allocates an alignment
//!   buffer per pair. `assign_speedup_ratio` is the baseline/streaming
//!   median ratio; CI gates it at ≥ 1.2× on the `n10000_m128` cell.
//! * **Allocator pressure** — allocations for one full k-Shape fit via
//!   the in-memory `KShape::fit_with` versus the out-of-core
//!   [`kshape::fit_store`] over a resident [`SeriesStore`], measured by
//!   the counting allocator the bench binary installs
//!   (`crate::alloc_stats`). Under `cargo test` the counter is not
//!   installed and both `_allocs` records legitimately read zero.

use std::hint::black_box;

use tsbench::{Group, Record};

use crate::alloc_stats::allocation_count;
use crate::cbf_series;
use kshape::sbd::{PreparedSeries, SbdPlan};
use kshape::{assign_store, fit_store, KShape, KShapeOptions};
use tsdata::store::{ElemType, SeriesStore};

/// The pre-store assignment idiom: prepared centroid spectra, raw rows,
/// one `sbd_prepared` kernel (row FFT + alignment allocation) per pair.
fn nested_vec_assign(
    plan: &SbdPlan,
    cents: &[PreparedSeries],
    series: &[Vec<f64>],
    labels: &mut [usize],
    dists: &mut [f64],
) {
    for (i, row) in series.iter().enumerate() {
        let mut best = f64::INFINITY;
        let mut best_j = 0usize;
        for (j, c) in cents.iter().enumerate() {
            let d = plan.sbd_prepared(c, row).dist;
            if d < best {
                best = d;
                best_j = j;
            }
        }
        labels[i] = best_j;
        dists[i] = best;
    }
}

/// Runs the `scale` group.
///
/// # Panics
///
/// Panics if the deterministic CBF workload fails to fit or assign —
/// the bench inputs are clean by construction.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("scale").with_config(super::macro_config(quick));
    let (n, m) = if quick { (300, 64) } else { (10_000, 128) };
    let cell = format!("n{n}_m{m}");

    let series = cbf_series(n, m, 5);
    let store = SeriesStore::from_rows(&series, ElemType::F64).expect("resident store");

    // Realistic centroids: a short k-Shape fit on a prefix of the data.
    let seed_rows = &series[..n.min(300)];
    let opts = KShapeOptions::new(3).with_seed(1).with_max_iter(5);
    let centroids = KShape::fit_with(seed_rows, &opts)
        .expect("seed fit on clean CBF")
        .centroids;

    let plan = SbdPlan::new(m);
    let cents: Vec<PreparedSeries> = centroids.iter().map(|c| plan.prepare(c)).collect();
    let mut labels = vec![0usize; n];
    let mut dists = vec![0.0f64; n];

    // Both paths must agree exactly before we time them: same kernels,
    // same strict-< first-minimum tie rule.
    nested_vec_assign(&plan, &cents, &series, &mut labels, &mut dists);
    let truth = labels.clone();
    assign_store(&store, &centroids, &mut labels, &mut dists).expect("streaming assign");
    assert_eq!(truth, labels, "assignment paths disagree");

    g.bench(&format!("assign/nested_vec/{cell}"), || {
        nested_vec_assign(
            &plan,
            black_box(&cents),
            black_box(&series),
            &mut labels,
            &mut dists,
        );
        labels[0]
    });
    g.bench(&format!("assign/series_store/{cell}"), || {
        assign_store(
            black_box(&store),
            black_box(&centroids),
            &mut labels,
            &mut dists,
        )
        .expect("streaming assign")
    });

    let median = |name: &str| {
        g.records()
            .iter()
            .find(|r| r.name.contains(name))
            .map_or(0.0, |r| r.median_ns)
    };
    let (base, stream) = (median("nested_vec"), median("series_store"));
    let ratio = if stream > 0.0 { base / stream } else { 0.0 };
    g.push_record(Record::from_scalar("assign_speedup_ratio", ratio));

    // Allocator pressure: one full fit per path on a smaller cell so the
    // counter deltas reflect steady-state hot-loop behavior, not the
    // one-time dataset build.
    let (fit_n, fit_m) = if quick { (60, 48) } else { (600, 128) };
    let fit_series = cbf_series(fit_n, fit_m, 5);
    let fit_store_data = SeriesStore::from_rows(&fit_series, ElemType::F64).expect("fit store");
    let fit_opts = KShapeOptions::new(3).with_seed(1).with_max_iter(10);

    let before = allocation_count();
    let r1 = KShape::fit_with(&fit_series, &fit_opts).expect("in-memory fit");
    let in_memory_allocs = allocation_count() - before;
    let before = allocation_count();
    let r2 = fit_store(&fit_store_data, &fit_opts).expect("streaming fit");
    let store_allocs = allocation_count() - before;
    black_box((r1.iterations, r2.iterations));

    g.push_record(Record::from_scalar(
        "in_memory_fit_allocs",
        in_memory_allocs as f64,
    ));
    g.push_record(Record::from_scalar(
        "series_store_fit_allocs",
        store_allocs as f64,
    ));
    g
}
