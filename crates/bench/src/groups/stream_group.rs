//! The `stream` group — hot-path timings for the online k-Shape engine,
//! committed to `BENCH_stream.json` and gated in CI.
//!
//! Three paths matter for an unbounded feed:
//!
//! * `push_latency/<k>x<m>` — the steady-state assign path (z-normalize,
//!   cached-spectra SBD against every centroid, running-stats fold).
//!   This is per-arrival cost, so it bounds sustainable feed rate.
//! * `quarantine_latency/<k>x<m>` — the rejection path for invalidating
//!   faults. Quarantine must be *cheaper* than an assign: a dirty feed
//!   should not be able to slow the engine down.
//! * `stream_drift_recovery` — wall-clock from the first post-regime-
//!   change arrival until the drift-triggered reseed completes (median
//!   detection + evidence countdown + windowed refit). Each sample is
//!   one full injected-drift episode on a fresh engine.
//!
//! Scalar (unit in the name, per the tsbench convention):
//!
//! * `push_throughput_rps` — steady-state arrivals/s from the same
//!   samples that built `push_latency`.

use std::time::Instant;

use kshape::{DriftConfig, PushOutcome, StreamConfig, StreamKShape};
use tsbench::{Group, Record};
use tsdata::corrupt::{corrupt_stream_series, FaultKind, StreamFault};
use tsrand::{Rng, StdRng};

/// A clean arrival whose frequency identifies its class; random phase
/// exercises SBD shift alignment on every push.
fn sine_arrival(class: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
    let freq = (3 * class + 2) as f64;
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    (0..m)
        .map(|t| {
            let x = std::f64::consts::TAU * freq * t as f64 / m as f64 + phase;
            x.sin() + 0.05 * rng.gen_range(-1.0..1.0)
        })
        .collect()
}

/// The post-drift regime: a square wave at a shifted frequency, far from
/// both sine classes in SBD.
fn square_arrival(class: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
    let freq = (4 * class + 3) as f64;
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    (0..m)
        .map(|t| {
            let x = std::f64::consts::TAU * freq * t as f64 / m as f64 + phase;
            let base = if x.sin() >= 0.0 { 1.0 } else { -1.0 };
            base + 0.05 * rng.gen_range(-1.0..1.0)
        })
        .collect()
}

/// Builds a bootstrapped engine fed with clean arrivals.
fn bootstrapped_engine(k: usize, m: usize, seed: u64, rng: &mut StdRng) -> StreamKShape {
    let config = StreamConfig::new(k, m)
        .with_seed(seed)
        .with_warmup(8 * k)
        .with_refresh_every(32);
    let mut engine = StreamKShape::new(config).expect("valid stream config");
    for i in 0..8 * k {
        engine.push(&sine_arrival(i % k, m, rng));
    }
    assert!(
        engine.stats().bootstrapped,
        "bench engine failed to bootstrap"
    );
    engine
}

/// Runs the `stream` group.
///
/// # Panics
///
/// Panics when the engine fails to bootstrap or an injected drift
/// episode never triggers a reseed — a broken detector must fail the
/// bench run loudly rather than record a vacuous timing.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("stream");

    let (k, m) = if quick { (2, 32) } else { (3, 64) };
    let pushes = if quick { 200 } else { 2_000 };
    let mut rng = StdRng::seed_from_u64(0x5EED_57BE);

    // Steady-state assign path. Arrivals are pre-generated so the timed
    // region is the engine alone, not the generator.
    let mut engine = bootstrapped_engine(k, m, 42, &mut rng);
    let arrivals: Vec<Vec<f64>> = (0..pushes)
        .map(|i| sine_arrival(i % k, m, &mut rng))
        .collect();
    let mut push_ns = Vec::with_capacity(pushes);
    let t0 = Instant::now();
    for x in &arrivals {
        let t = Instant::now();
        let outcome = engine.push(x);
        push_ns.push(t.elapsed().as_nanos() as f64);
        assert!(
            matches!(outcome, PushOutcome::Assigned(_)),
            "clean steady-state arrival was not assigned"
        );
    }
    let total_secs = t0.elapsed().as_secs_f64();
    g.push_record(Record::from_latency_samples(
        &format!("push_latency/{k}x{m}"),
        push_ns,
    ));
    g.push_record(Record::from_scalar(
        "push_throughput_rps",
        pushes as f64 / total_secs,
    ));

    // Quarantine path: invalidating faults must be rejected quickly.
    let faults = [
        StreamFault::Series(FaultKind::NanRun),
        StreamFault::Series(FaultKind::MissingGap),
        StreamFault::Series(FaultKind::Truncate),
    ];
    let corrupted: Vec<Vec<f64>> = (0..pushes.min(500))
        .map(|i| {
            let mut x = sine_arrival(i % k, m, &mut rng);
            corrupt_stream_series(&mut x, faults[i % faults.len()], &mut rng);
            x
        })
        .collect();
    let mut quarantine_ns = Vec::with_capacity(corrupted.len());
    for x in &corrupted {
        let t = Instant::now();
        let outcome = engine.push(x);
        quarantine_ns.push(t.elapsed().as_nanos() as f64);
        assert!(
            matches!(outcome, PushOutcome::Quarantined(_)),
            "invalidating fault was not quarantined"
        );
    }
    g.push_record(Record::from_latency_samples(
        &format!("quarantine_latency/{k}x{m}"),
        quarantine_ns,
    ));

    // Drift recovery: one sample per injected-drift episode. The clock
    // starts at the first post-change arrival and stops when the assign
    // that carried the reseed returns.
    let episodes = if quick { 2 } else { 5 };
    let mut recovery_ns = Vec::with_capacity(episodes);
    for ep in 0..episodes {
        let mut config = StreamConfig::new(2, m)
            .with_seed(1_000 + ep as u64)
            .with_warmup(32)
            .with_window_capacity(160)
            .with_refresh_every(8);
        config.drift = DriftConfig {
            short_window: 32,
            long_window: 128,
            threshold: 4.0,
            cooldown: 10_000,
        };
        let mut engine = StreamKShape::new(config).expect("valid drift config");
        for i in 0..200 {
            engine.push(&sine_arrival(i % 2, m, &mut rng));
        }
        assert!(engine.stats().bootstrapped);
        let t = Instant::now();
        let mut reseeded = false;
        for i in 0..600 {
            if let PushOutcome::Assigned(a) = engine.push(&square_arrival(i % 2, m, &mut rng)) {
                if a.reseeded {
                    reseeded = true;
                    break;
                }
            }
        }
        assert!(reseeded, "drift episode {ep} never triggered a reseed");
        recovery_ns.push(t.elapsed().as_nanos() as f64);
    }
    g.push_record(Record::from_latency_samples(
        "stream_drift_recovery",
        recovery_ns,
    ));

    g
}
