//! Table 2 runtime column, as a microbenchmark: per-pair cost of each
//! distance measure across series lengths.
//!
//! Paper expectations: ED fastest; SBD a small factor slower; SBD-NoPow2
//! slower than SBD; SBD-NoFFT and DTW quadratic (their gap to SBD widens
//! with `m`); cDTW between ED and DTW.

use std::hint::black_box;
use tsbench::Group;

use crate::random_series;
use kshape::sbd::{sbd_with, CorrMethod, SbdPlan};
use tsdist::dtw::dtw_distance;
use tsdist::ed::euclidean;
use tsdist::erp::erp_distance;
use tsdist::lcss::lcss_length;
use tsdist::msm::msm_distance;

/// Runs the `distances` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("distances").with_config(super::micro_config(quick));
    let lengths: &[usize] = if quick { &[64] } else { &[64, 256, 1024] };
    for &m in lengths {
        let x = random_series(m, 1);
        let y = random_series(m, 2);

        g.bench(&format!("ED/{m}"), || {
            euclidean(black_box(&x), black_box(&y))
        });
        g.bench(&format!("SBD/{m}"), || {
            sbd_with(black_box(&x), black_box(&y), CorrMethod::FftPow2).dist
        });
        {
            // The hot-path variant used inside k-Shape: plan + reference
            // spectrum amortized.
            let plan = SbdPlan::new(m);
            let prepared = plan.prepare(&x);
            g.bench(&format!("SBD-planned/{m}"), || {
                plan.sbd_prepared(black_box(&prepared), black_box(&y)).dist
            });
        }
        g.bench(&format!("SBD-NoPow2/{m}"), || {
            sbd_with(black_box(&x), black_box(&y), CorrMethod::FftExact).dist
        });
        g.bench(&format!("SBD-NoFFT/{m}"), || {
            sbd_with(black_box(&x), black_box(&y), CorrMethod::Naive).dist
        });
        let w = (0.05 * m as f64).round() as usize;
        g.bench(&format!("cDTW-5/{m}"), || {
            dtw_distance(black_box(&x), black_box(&y), Some(w))
        });
        if m <= 256 {
            g.bench(&format!("DTW/{m}"), || {
                dtw_distance(black_box(&x), black_box(&y), None)
            });
            // Elastic extensions share DTW's quadratic DP shape.
            g.bench(&format!("ERP/{m}"), || {
                erp_distance(black_box(&x), black_box(&y), 0.0)
            });
            g.bench(&format!("MSM/{m}"), || {
                msm_distance(black_box(&x), black_box(&y), 0.5)
            });
            g.bench(&format!("LCSS/{m}"), || {
                lcss_length(black_box(&x), black_box(&y), 0.25, None)
            });
        }
    }
    g
}
