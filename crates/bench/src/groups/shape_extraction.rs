//! Shape-extraction bench: the full Householder+QL eigensolver vs power
//! iteration as the dominant-eigenvector backend, across cluster sizes
//! and series lengths.
//!
//! Both backends return the same centroid (tested in `kshape`); this
//! bench quantifies the speed difference, including the dual-space
//! shortcut that kicks in when a cluster has fewer members than time
//! points.

use std::hint::black_box;
use tsbench::Group;

use crate::cbf_series;
use kshape::extraction::{shape_extraction, EigenMethod};

/// Runs the `shape_extraction` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("shape_extraction").with_config(super::macro_config(quick));
    let shapes: &[(usize, usize)] = if quick {
        &[(10, 64)]
    } else {
        &[(10, 128), (50, 128), (10, 512), (200, 128)]
    };
    for &(n, m) in shapes {
        let series = cbf_series(n, m, 11);
        let members: Vec<&[f64]> = series.iter().map(Vec::as_slice).collect();
        let reference = series[0].clone();
        g.bench(&format!("full_eigen/n{n}_m{m}"), || {
            shape_extraction(
                black_box(&members),
                black_box(&reference),
                EigenMethod::Full,
            )
        });
        g.bench(&format!("power_iteration/n{n}_m{m}"), || {
            shape_extraction(
                black_box(&members),
                black_box(&reference),
                EigenMethod::Power,
            )
        });
    }
    g
}
