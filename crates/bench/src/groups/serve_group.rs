//! The `serve` group — end-to-end latency, throughput, and shedding
//! behaviour of the `tsserve` clustering server, committed to
//! `BENCH_serve.json` and gated in CI.
//!
//! Unlike the micro groups this one measures whole HTTP round trips
//! over loopback: the in-process server is booted once, a model is
//! fitted, and the load generator drives it with concurrent clients.
//! Latency records are built from per-request samples
//! ([`tsbench::Record::from_latency_samples`]) so `p99_ns` is a true
//! per-event percentile — the CI gate reads exactly that field.
//!
//! Scalars (unit in the name, per the tsbench convention):
//!
//! * `assign_throughput_rps` — completed assigns/s under 4 clients,
//! * `overload_shed_rate` — fraction of a deliberate burst shed with
//!   503 by the 1-worker overload server (must be > 0: proof the
//!   bounded queue rejects instead of buffering),
//! * `overload_error_rate` — non-shed failures during that burst
//!   (gated near zero in CI).

use std::time::Duration;

use tsbench::{Group, Record};
use tsserve::loadgen::{self, http_request, LoadSpec};
use tsserve::{ServeConfig, Server};

/// Serializes a two-cluster series payload.
fn series_rows(n_per: usize, m: usize) -> String {
    let mut rows = Vec::new();
    for i in 0..n_per {
        let phase = 0.2 * i as f64;
        let sine: Vec<String> = (0..m)
            .map(|t| format!("{:?}", (t as f64 * 0.3 + phase).sin()))
            .collect();
        rows.push(format!("[{}]", sine.join(",")));
        let pulse: Vec<String> = (0..m)
            .map(|t| {
                let x = if (t + i) % 8 < 2 { 3.0 } else { -0.5 };
                format!("{x:?}")
            })
            .collect();
        rows.push(format!("[{}]", pulse.join(",")));
    }
    rows.join(",")
}

const TIMEOUT: Duration = Duration::from_secs(30);

/// Runs the `serve` group.
///
/// # Panics
///
/// Panics when the server fails to bind or the warm-up fit fails —
/// a broken server must fail the bench run loudly.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("serve");

    let (n_per, m) = if quick { (6, 32) } else { (12, 64) };
    let (clients, reqs) = if quick { (2, 15) } else { (4, 60) };

    let server = Server::bind(ServeConfig::default()).expect("bind").spawn();
    let addr = server.addr();

    // Warm-up fit: the model every assign below runs against.
    let fit_body = format!(
        "{{\"series\":[{}],\"k\":2,\"seed\":7,\"deadline_ms\":20000}}",
        series_rows(n_per, m)
    );
    let (status, body) = http_request(addr, "POST", "/v1/models/bench/fit", &fit_body, TIMEOUT)
        .expect("fit round trip");
    assert_eq!(status, 200, "warm-up fit failed: {body}");

    // Assign latency + throughput: concurrent clients, small batches —
    // the serving hot path (parse, z-normalize, cached-spectra SBD).
    let assign_body = format!("{{\"series\":[{}]}}", series_rows(2, m));
    let assign = loadgen::drive(&LoadSpec {
        addr,
        clients,
        requests_per_client: reqs,
        method: "POST".into(),
        path: "/v1/models/bench/assign".into(),
        body: assign_body,
        timeout: TIMEOUT,
    });
    assert_eq!(assign.error_rate(), 0.0, "assign errors: {assign:?}");
    g.push_record(Record::from_latency_samples(
        &format!("assign_latency/4x{m}"),
        assign.latencies_ns.clone(),
    ));
    g.push_record(Record::from_scalar(
        "assign_throughput_rps",
        assign.throughput_rps(),
    ));

    // Health-endpoint latency: the floor of the HTTP stack itself.
    let health = loadgen::drive(&LoadSpec {
        addr,
        clients,
        requests_per_client: reqs,
        method: "GET".into(),
        path: "/healthz".into(),
        body: String::new(),
        timeout: TIMEOUT,
    });
    g.push_record(Record::from_latency_samples(
        "healthz_latency",
        health.latencies_ns.clone(),
    ));

    // Fit latency: sequential, few samples — each is a real cluster.
    let fit_samples: Vec<f64> = (0..if quick { 3 } else { 8 })
        .map(|i| {
            let t0 = std::time::Instant::now();
            let path = format!("/v1/models/bench_fit_{i}/fit");
            let (status, _) = http_request(addr, "POST", &path, &fit_body, TIMEOUT).unwrap();
            assert_eq!(status, 200);
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    g.push_record(Record::from_latency_samples(
        &format!("fit_latency/{}x{m}", 2 * n_per),
        fit_samples,
    ));
    server.drain_and_join().expect("drain");

    // Overload behaviour: a deliberately tiny server (1 worker, queue
    // of 2) hit by a wide burst. The bounded queue must shed rather
    // than buffer: shed_rate > 0, and everything not shed succeeds.
    let small = Server::bind(ServeConfig {
        workers: 1,
        queue_depth: 2,
        ..ServeConfig::default()
    })
    .expect("bind overload server")
    .spawn();
    let burst = loadgen::drive(&LoadSpec {
        addr: small.addr(),
        clients: if quick { 8 } else { 16 },
        requests_per_client: if quick { 5 } else { 10 },
        method: "GET".into(),
        path: "/healthz".into(),
        body: String::new(),
        timeout: TIMEOUT,
    });
    g.push_record(Record::from_scalar("overload_shed_rate", burst.shed_rate()));
    g.push_record(Record::from_scalar(
        "overload_error_rate",
        burst.error_rate(),
    ));
    small.drain_and_join().expect("drain overload server");

    g
}
