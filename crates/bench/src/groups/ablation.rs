//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * initialization — random assignment (the paper) vs k-shape++ seeding,
//! * centroid refinements per k-DBA iteration — 1 (the paper's default)
//!   vs 5 (its footnote 8 reports +4% Rand for +30% runtime),
//! * LB_Keogh cascading for cDTW 1-NN search on/off.

use std::hint::black_box;
use tsbench::Group;

use crate::ecg_dataset;
use kshape::init::InitStrategy;
use kshape::{KShape, KShapeOptions};
use tscluster::dba::KDbaConfig;
use tscluster::{kdba_with, KDbaOptions};
use tsdata::collection::split_alternating;
use tsdata::dataset::Dataset;
use tsdist::dtw::Dtw;
use tsdist::nn::{one_nn_accuracy, one_nn_accuracy_lb};

/// Runs the `ablation` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("ablation").with_config(super::macro_config(quick));

    // Initialization strategies.
    let (n_per_class, m, max_iter) = if quick { (8, 48, 6) } else { (30, 128, 30) };
    let (series, _) = ecg_dataset(n_per_class, m, 33);
    for (name, init) in [
        ("init/random", InitStrategy::Random),
        ("init/plus_plus", InitStrategy::PlusPlus),
    ] {
        let opts = KShapeOptions::new(2)
            .with_seed(2)
            .with_max_iter(max_iter)
            .with_init(init);
        g.bench(name, || {
            KShape::fit_with(black_box(&series), &opts).map(|r| r.iterations)
        });
    }

    // DBA refinements per iteration.
    let (dba_series, _) = if quick {
        ecg_dataset(5, 32, 34)
    } else {
        ecg_dataset(20, 96, 34)
    };
    let dba_iter = if quick { 3 } else { 15 };
    for refinements in [1usize, 5] {
        let opts = KDbaOptions::from(KDbaConfig {
            k: 2,
            max_iter: dba_iter,
            seed: 3,
            refinements_per_iter: refinements,
            window: None,
        });
        g.bench(&format!("dba_refinements/{refinements}"), || {
            kdba_with(black_box(&dba_series), &opts).map(|r| r.iterations)
        });
    }

    // LB_Keogh cascade for cDTW 1-NN.
    let (nn_series, nn_labels) = if quick {
        ecg_dataset(8, 48, 35)
    } else {
        ecg_dataset(30, 128, 35)
    };
    let data = Dataset::new("bench", nn_series, nn_labels);
    let split = split_alternating(data);
    let w = 6;
    g.bench("lb_keogh/cdtw_plain", || {
        one_nn_accuracy(&Dtw::with_window(w), black_box(&split.train), &split.test)
    });
    g.bench("lb_keogh/cdtw_lb_cascade", || {
        one_nn_accuracy_lb(Some(w), black_box(&split.train), &split.test)
    });
    g
}
