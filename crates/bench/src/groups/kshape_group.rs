//! The `kshape` headline group — the repo's perf trajectory anchor.
//!
//! Two claims from the paper, tracked as timings in `BENCH_kshape.json`
//! from this PR onward:
//!
//! * **SBD vs naive NCC** (Section 3.1): the convolution-theorem SBD with
//!   power-of-two padding vs the O(m²) naive cross-correlation, at the
//!   paper's canonical lengths. The ratio is the speedup Figure 4 plots.
//! * **k-Shape fit** (Algorithm 3): a full fit on a CBF workload, the
//!   end-to-end number every future optimization PR must not regress.

use std::hint::black_box;
use tsbench::Group;

use crate::{cbf_series, random_series};
use kshape::ncc::{ncc_max_prepared, NccVariant};
use kshape::sbd::{sbd_with, CorrMethod, SbdPlan, SbdScratch};
use kshape::{KShape, KShapeOptions};

/// Runs the `kshape` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("kshape").with_config(super::macro_config(quick));

    // SBD (FFT, pow2 padding) vs naive NCC, per pair.
    let lengths: &[usize] = if quick { &[64] } else { &[128, 512, 1024] };
    for &m in lengths {
        let x = random_series(m, 1);
        let y = random_series(m, 2);
        g.bench(&format!("sbd_fft/{m}"), || {
            sbd_with(black_box(&x), black_box(&y), CorrMethod::FftPow2).dist
        });
        {
            let plan = SbdPlan::new(m);
            let prepared = plan.prepare(&x);
            g.bench(&format!("sbd_planned/{m}"), || {
                plan.sbd_prepared(black_box(&prepared), black_box(&y)).dist
            });
        }
        {
            // The batched-sweep kernel: both spectra cached, no forward
            // transforms — the per-pair cost inside assignment and the
            // dissimilarity matrix.
            let plan = SbdPlan::new(m);
            let px = plan.prepare(&x);
            let py = plan.prepare(&y);
            let mut scratch = SbdScratch::default();
            g.bench(&format!("sbd_batched/{m}"), move || {
                plan.sbd_spectra(black_box(&px), black_box(&py), &mut scratch)
                    .0
            });
        }
        g.bench(&format!("ncc_naive/{m}"), || {
            sbd_with(black_box(&x), black_box(&y), CorrMethod::Naive).dist
        });
        {
            // Planned NCC over cached spectra, the batched counterpart of
            // ncc_naive: the ncc_naive/ncc_planned ratio is the Figure 4
            // speedup computable from this one file.
            let plan = SbdPlan::new(m);
            let px = plan.prepare(&x);
            let py = plan.prepare(&y);
            let mut scratch = SbdScratch::default();
            g.bench(&format!("ncc_planned/{m}"), move || {
                ncc_max_prepared(
                    &plan,
                    black_box(&px),
                    black_box(&py),
                    NccVariant::Coefficient,
                    &mut scratch,
                )
                .0
            });
        }
    }

    // Full k-Shape fits.
    let fits: &[(usize, usize)] = if quick {
        &[(30, 48)]
    } else {
        &[(90, 128), (300, 128)]
    };
    let max_iter = if quick { 3 } else { 10 };
    for &(n, m) in fits {
        let series = cbf_series(n, m, 5);
        let opts = KShapeOptions::new(3).with_seed(1).with_max_iter(max_iter);
        g.bench(&format!("kshape_fit/n{n}_m{m}"), move || {
            KShape::fit_with(black_box(&series), &opts).map(|r| r.iterations)
        });
        // The same fit with a 4-worker thread pool: on multi-core hosts
        // this tracks the scaling of the deterministic parallel sweep; on
        // single-core CI it doubles as a thread-overhead regression check.
        let series = cbf_series(n, m, 5);
        let opts = KShapeOptions::new(3)
            .with_seed(1)
            .with_max_iter(max_iter)
            .with_threads(4);
        g.bench(&format!("kshape_fit_parallel/n{n}_m{m}"), move || {
            KShape::fit_with(black_box(&series), &opts).map(|r| r.iterations)
        });
    }
    g
}
