//! Table 3 runtime column, as a benchmark: full clustering runs of each
//! scalable method on a fixed ECG-like dataset.
//!
//! Paper expectations: k-AVG+ED fastest; k-Shape within roughly an order
//! of magnitude; KSC slower; k-DBA (full DTW paths every iteration) and
//! anything assigning with unconstrained DTW slowest.

use std::hint::black_box;
use tsbench::Group;

use crate::ecg_dataset;
use kshape::{KShape, KShapeOptions};
use tscluster::{
    kdba_with, kmeans_with, ksc_with, pam_with, DissimilarityMatrix, KDbaOptions, KMeansOptions,
    KscOptions, PamOptions,
};
use tsdist::dtw::Dtw;
use tsdist::EuclideanDistance;

/// Runs the `clustering` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("clustering").with_config(super::macro_config(quick));
    let (n_per_class, m, max_iter) = if quick { (8, 48, 5) } else { (30, 128, 20) };
    let (series, _) = ecg_dataset(n_per_class, m, 21);

    let kmeans_opts = KMeansOptions::new(2).with_seed(1).with_max_iter(max_iter);
    g.bench("k-AVG+ED", || {
        kmeans_with(black_box(&series), &EuclideanDistance, &kmeans_opts).map(|r| r.iterations)
    });
    let kshape_opts = KShapeOptions::new(2).with_seed(1).with_max_iter(max_iter);
    g.bench("k-Shape", || {
        KShape::fit_with(black_box(&series), &kshape_opts).map(|r| r.iterations)
    });
    let ksc_opts = KscOptions::new(2).with_seed(1).with_max_iter(max_iter);
    g.bench("KSC", || {
        ksc_with(black_box(&series), &ksc_opts).map(|r| r.iterations)
    });
    let kdba_opts = KDbaOptions::new(2).with_seed(1).with_max_iter(max_iter);
    g.bench("k-DBA", || {
        kdba_with(black_box(&series), &kdba_opts).map(|r| r.iterations)
    });
    let pam_opts = PamOptions::new(2).with_max_iter(max_iter);
    g.bench("PAM+cDTW(matrix+swap)", || {
        // The paper's point about PAM: the dissimilarity matrix dominates.
        let matrix = DissimilarityMatrix::compute(black_box(&series), &Dtw::with_window(6));
        pam_with(&matrix, &pam_opts).map(|r| r.labels.len())
    });
    g
}
