//! Table 3 runtime column, as a benchmark: full clustering runs of each
//! scalable method on a fixed ECG-like dataset.
//!
//! Paper expectations: k-AVG+ED fastest; k-Shape within roughly an order
//! of magnitude; KSC slower; k-DBA (full DTW paths every iteration) and
//! anything assigning with unconstrained DTW slowest.

use std::hint::black_box;
use tsbench::Group;

use crate::ecg_dataset;
use kshape::{KShape, KShapeConfig};
use tscluster::dba::{kdba, KDbaConfig};
use tscluster::kmeans::{kmeans, KMeansConfig};
use tscluster::ksc::{ksc, KscConfig};
use tscluster::matrix::DissimilarityMatrix;
use tscluster::pam::pam;
use tsdist::dtw::Dtw;
use tsdist::EuclideanDistance;

/// Runs the `clustering` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("clustering").with_config(super::macro_config(quick));
    let (n_per_class, m, max_iter) = if quick { (8, 48, 5) } else { (30, 128, 20) };
    let (series, _) = ecg_dataset(n_per_class, m, 21);

    g.bench("k-AVG+ED", || {
        kmeans(
            black_box(&series),
            &EuclideanDistance,
            &KMeansConfig {
                k: 2,
                max_iter,
                seed: 1,
            },
        )
    });
    g.bench("k-Shape", || {
        KShape::new(KShapeConfig {
            k: 2,
            max_iter,
            seed: 1,
            ..Default::default()
        })
        .fit(black_box(&series))
    });
    g.bench("KSC", || {
        ksc(
            black_box(&series),
            &KscConfig {
                k: 2,
                max_iter,
                seed: 1,
            },
        )
    });
    g.bench("k-DBA", || {
        kdba(
            black_box(&series),
            &KDbaConfig {
                k: 2,
                max_iter,
                seed: 1,
                ..Default::default()
            },
        )
    });
    g.bench("PAM+cDTW(matrix+swap)", || {
        // The paper's point about PAM: the dissimilarity matrix dominates.
        let matrix = DissimilarityMatrix::compute(black_box(&series), &Dtw::with_window(6));
        pam(&matrix, 2, max_iter)
    });
    g
}
