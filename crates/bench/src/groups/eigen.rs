//! Eigensolver microbenchmarks: Householder+QL vs cyclic Jacobi vs power
//! iteration on random symmetric matrices.
//!
//! Shape extraction needs only the dominant eigenpair of a PSD matrix, so
//! power iteration's advantage over the full solvers is the headroom the
//! `EigenMethod::Power` fast path exploits.

use std::hint::black_box;
use tsbench::Group;

use tslinalg::eigen::symmetric_eigen;
use tslinalg::jacobi::jacobi_eigen;
use tslinalg::matrix::Matrix;
use tslinalg::power::power_iteration;
use tsrand::{Rng, StdRng};

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..=r {
            let v = rng.gen_range(-1.0..1.0);
            m[(r, c)] = v;
            m[(c, r)] = v;
        }
    }
    m
}

/// A PSD Gram matrix (the shape-extraction case).
fn random_psd(n: usize, rank: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for _ in 0..rank {
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        m.rank_one_update(&x, 1.0);
    }
    m
}

/// Runs the `eigen` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("eigen").with_config(super::micro_config(quick));
    let sizes: &[usize] = if quick { &[16] } else { &[16, 64, 128] };
    for &n in sizes {
        let a = random_symmetric(n, 3);
        g.bench(&format!("householder_ql/{n}"), || {
            symmetric_eigen(black_box(&a))
        });
        if n <= 64 {
            g.bench(&format!("jacobi/{n}"), || jacobi_eigen(black_box(&a)));
        }
        let psd = random_psd(n, 8, 4);
        g.bench(&format!("power_iteration_psd/{n}"), || {
            power_iteration(black_box(&psd), 200, 1e-12)
        });
    }
    g
}
