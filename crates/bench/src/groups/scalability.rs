//! Figure 12 as a benchmark: k-Shape and k-AVG+ED full fits on CBF while
//! (a) the number of series `n` grows at fixed `m = 128`, and (b) the
//! series length `m` grows at fixed `n`.
//!
//! Paper expectations: both methods linear in `n`; k-Shape's refinement is
//! O(m²)/O(m³) so its `m`-scaling is steeper.

use std::hint::black_box;
use tsbench::Group;

use crate::cbf_series;
use kshape::{KShape, KShapeOptions};
use tscluster::{kmeans_with, KMeansOptions};
use tsdist::EuclideanDistance;

fn fit_kshape(series: &[Vec<f64>], max_iter: usize) -> usize {
    let opts = KShapeOptions::new(3).with_seed(1).with_max_iter(max_iter);
    KShape::fit_with(series, &opts)
        .expect("bench series are clean")
        .iterations
}

/// Runs the `scalability` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("scalability").with_config(super::macro_config(quick));
    let max_iter = if quick { 3 } else { 10 };

    let n_sizes: &[usize] = if quick { &[60] } else { &[150, 300, 600, 1200] };
    for &n in n_sizes {
        let series = cbf_series(n, if quick { 48 } else { 128 }, 5);
        g.bench(&format!("vs_n/k-Shape/n{n}"), || {
            fit_kshape(black_box(&series), max_iter)
        });
        let opts = KMeansOptions::new(3).with_seed(1).with_max_iter(max_iter);
        g.bench(&format!("vs_n/k-AVG+ED/n{n}"), move || {
            kmeans_with(black_box(&series), &EuclideanDistance, &opts).map(|r| r.iterations)
        });
    }

    let m_sizes: &[usize] = if quick { &[64] } else { &[64, 128, 256, 512] };
    let n_fixed = if quick { 60 } else { 300 };
    for &m in m_sizes {
        let series = cbf_series(n_fixed, m, 5);
        g.bench(&format!("vs_m/k-Shape/m{m}"), || {
            fit_kshape(black_box(&series), max_iter)
        });
        let opts = KMeansOptions::new(3).with_seed(1).with_max_iter(max_iter);
        g.bench(&format!("vs_m/k-AVG+ED/m{m}"), move || {
            kmeans_with(black_box(&series), &EuclideanDistance, &opts).map(|r| r.iterations)
        });
    }
    g
}
