//! The `tsobs` group — observability overhead on the k-Shape hot loop.
//!
//! The telemetry layer promises "pay only when armed": an options object
//! without a recorder hands the fit a disarmed [`tsobs::Obs`] handle
//! whose every call is a single `Option` branch — no clock reads, no
//! allocation, no formatting. This group pins that promise as numbers in
//! `BENCH_tsobs.json`:
//!
//! * `kshape_fit_disarmed` — the baseline: a full fit with no recorder.
//! * `kshape_fit_null_recorder` — armed through dynamic dispatch into a
//!   recorder that discards everything; isolates the arming cost itself.
//! * `kshape_fit_memory_sink` / `kshape_fit_jsonl_sink` — armed into the
//!   two real sinks (aggregating in-memory, and JSONL serialization into
//!   `std::io::sink()`); what a profiling run actually pays.
//! * `counter_disarmed_x1024` / `counter_armed_x1024` — raw per-call
//!   cost of the hottest telemetry primitive on each path. **Target:
//!   the disarmed call costs a few ns at most**, which at the observed
//!   call-site density (one counter per refinement iteration, one span
//!   per fit) keeps disarmed overhead under 1% of any fit — the ISSUE
//!   acceptance bar, gated in CI.
//! * `span_armed_x1024` — per-call cost of an armed span open/close pair
//!   (two `Instant` reads plus one event).

use std::hint::black_box;

use tsbench::Group;
use tsobs::{JsonlSink, MemorySink, NullRecorder, Obs, Recorder};

use crate::cbf_series;
use kshape::{KShape, KShapeConfig, KShapeOptions};

/// Runs the `tsobs` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("tsobs").with_config(super::macro_config(quick));

    // Observability overhead on a full k-Shape fit, measured end-to-end
    // on the same CBF workload as the `tsrun` group.
    let (n, m) = if quick { (30, 48) } else { (90, 128) };
    let series = cbf_series(n, m, 5);
    let config = KShapeConfig {
        k: 3,
        max_iter: if quick { 3 } else { 10 },
        seed: 1,
        ..Default::default()
    };

    let disarmed = KShapeOptions::from(config);
    g.bench(&format!("kshape_fit_disarmed/n{n}_m{m}"), || {
        KShape::fit_with(black_box(&series), &disarmed).map(|r| r.iterations)
    });

    let null = NullRecorder;
    let armed_null = KShapeOptions::from(config).with_recorder(&null);
    g.bench(&format!("kshape_fit_null_recorder/n{n}_m{m}"), || {
        KShape::fit_with(black_box(&series), &armed_null).map(|r| r.iterations)
    });

    let memory = MemorySink::new();
    let armed_memory = KShapeOptions::from(config).with_recorder(&memory);
    g.bench(&format!("kshape_fit_memory_sink/n{n}_m{m}"), || {
        KShape::fit_with(black_box(&series), &armed_memory).map(|r| r.iterations)
    });

    let jsonl = JsonlSink::new(Box::new(std::io::sink()));
    let armed_jsonl = KShapeOptions::from(config).with_recorder(&jsonl);
    g.bench(&format!("kshape_fit_jsonl_sink/n{n}_m{m}"), || {
        KShape::fit_with(black_box(&series), &armed_jsonl).map(|r| r.iterations)
    });

    // Raw per-call cost of the hottest primitive: 1024 counter bumps on
    // the disarmed vs the armed path.
    let none = Obs::none();
    g.bench("counter_disarmed_x1024", || {
        for i in 0..1024u64 {
            none.counter(black_box("bench.counter"), black_box(i & 7));
        }
        none.is_armed()
    });
    let sink = MemorySink::new();
    let armed = Obs::from_option(Some(&sink as &dyn Recorder));
    g.bench("counter_armed_x1024", || {
        for i in 0..1024u64 {
            armed.counter(black_box("bench.counter"), black_box(i & 7));
        }
        armed.is_armed()
    });

    // Armed span open/close: two clock reads plus one event per pair.
    g.bench("span_armed_x1024", || {
        for _ in 0..1024u32 {
            armed.span(black_box("bench.span")).end();
        }
        armed.is_armed()
    });

    g
}
