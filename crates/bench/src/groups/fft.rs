//! FFT substrate microbenchmarks: radix-2 vs Bluestein vs naive DFT, the
//! three cross-correlation strategies of Section 3.1, and length
//! reduction.
//!
//! Quantifies the paper's claims that the convolution-theorem path turns
//! O(m²) correlation into O(m log m), and that power-of-two padding beats
//! an exact-size transform.

use std::hint::black_box;
use tsbench::Group;

use crate::random_series;
use tsfft::bluestein::BluesteinFft;
use tsfft::complex::Complex;
use tsfft::correlate::{cross_correlate_bluestein, cross_correlate_fft, cross_correlate_naive};
use tsfft::dft::dft;
use tsfft::fft::Radix2Fft;

/// Runs the `fft` group.
#[must_use]
pub fn run(quick: bool) -> Group {
    let mut g = Group::new("fft").with_config(super::micro_config(quick));

    let transform_sizes: &[usize] = if quick { &[256] } else { &[256, 1024, 4096] };
    for &n in transform_sizes {
        let signal: Vec<Complex> = random_series(n, 7)
            .into_iter()
            .map(Complex::from_real)
            .collect();
        {
            let plan = Radix2Fft::new(n);
            g.bench(&format!("transform/radix2/{n}"), || {
                plan.forward_vec(black_box(signal.clone()))
            });
        }
        // Bluestein at the awkward size n - 1 (never a power of two here).
        let odd: Vec<Complex> = signal[..n - 1].to_vec();
        {
            let plan = BluesteinFft::new(n - 1);
            g.bench(&format!("transform/bluestein/{}", n - 1), || {
                plan.forward(black_box(&odd))
            });
        }
        if n <= 1024 {
            g.bench(&format!("transform/naive_dft/{n}"), || {
                dft(black_box(&signal))
            });
        }
    }

    let corr_sizes: &[usize] = if quick { &[64] } else { &[64, 256, 1024] };
    for &m in corr_sizes {
        let x = random_series(m, 1);
        let y = random_series(m, 2);
        g.bench(&format!("correlation/fft_pow2/{m}"), || {
            cross_correlate_fft(black_box(&x), black_box(&y))
        });
        g.bench(&format!("correlation/bluestein_exact/{m}"), || {
            cross_correlate_bluestein(black_box(&x), black_box(&y))
        });
        g.bench(&format!("correlation/naive/{m}"), || {
            cross_correlate_naive(black_box(&x), black_box(&y))
        });
    }

    let reduce_sizes: &[usize] = if quick { &[512] } else { &[512, 2048] };
    for &m in reduce_sizes {
        let x = random_series(m, 19);
        g.bench(&format!("reduction/paa_to_128/{m}"), || {
            tsdata::reduce::paa(black_box(&x), 128)
        });
        g.bench(&format!("reduction/haar_reduce_128/{m}"), || {
            tsdata::reduce::haar_reduce(black_box(&x), 128)
        });
    }
    g
}
