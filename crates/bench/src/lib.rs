//! Shared fixtures for the tsbench benchmark groups.

use tsdata::generators::{cbf, GenParams};
use tsdata::normalize::z_normalize_in_place;
use tsrand::StdRng;

pub mod alloc_stats;
pub mod groups;

/// A deterministic z-normalized pseudo-random series of length `m`.
#[must_use]
pub fn random_series(m: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut s: Vec<f64> = (0..m)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
        .collect();
    z_normalize_in_place(&mut s);
    s
}

/// A z-normalized CBF dataset: `n` series of length `m` over 3 classes.
#[must_use]
pub fn cbf_series(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut s = cbf::generate_one(i % 3, m, &mut rng);
        z_normalize_in_place(&mut s);
        out.push(s);
    }
    out
}

/// An ECG-like two-class dataset, z-normalized, for clustering benches.
#[must_use]
pub fn ecg_dataset(n_per_class: usize, m: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let params = GenParams {
        n_per_class,
        len: m,
        noise: 0.25,
        max_shift_frac: 0.2,
        amp_jitter: 1.3,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = tsdata::generators::ecg::generate(&params, &mut rng);
    d.z_normalize();
    (d.series, d.labels)
}

#[cfg(test)]
mod tests {
    use super::{cbf_series, ecg_dataset, random_series};

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(random_series(32, 1), random_series(32, 1));
        assert_eq!(cbf_series(6, 64, 2), cbf_series(6, 64, 2));
        let (a, la) = ecg_dataset(4, 64, 3);
        let (b, lb) = ecg_dataset(4, 64, 3);
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn fixtures_have_requested_shapes() {
        assert_eq!(random_series(100, 5).len(), 100);
        let series = cbf_series(10, 48, 1);
        assert_eq!(series.len(), 10);
        assert!(series.iter().all(|s| s.len() == 48));
        let (s, l) = ecg_dataset(5, 32, 1);
        assert_eq!(s.len(), 10);
        assert_eq!(l.len(), 10);
    }
}
