//! A minimal JSON parser and the JSONL telemetry-schema validator.
//!
//! The workspace is hermetic (no serde), so the validator binary and the
//! schema tests carry their own ~150-line recursive-descent parser. It
//! accepts exactly RFC 8259 JSON values; numbers are parsed as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are rejected).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when it is one exactly.
    #[must_use]
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(63) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos -= usize::from(self.pos > 0);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_literal("null", JsonValue::Null),
            Some(b't') => self.expect_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.expect_literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not needed by our emitter;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input
                    // was a &str, so the bytes are valid UTF-8.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(JsonValue::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one JSON document; trailing content is an error.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first problem.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after value"));
    }
    Ok(v)
}

fn require_uint(obj: &JsonValue, key: &str) -> Result<(), String> {
    obj.get(key)
        .ok_or_else(|| format!("missing field \"{key}\""))?
        .as_uint()
        .map(|_| ())
        .ok_or_else(|| format!("field \"{key}\" must be a non-negative integer"))
}

fn require_str(obj: &JsonValue, key: &str) -> Result<(), String> {
    obj.get(key)
        .ok_or_else(|| format!("missing field \"{key}\""))?
        .as_str()
        .map(|_| ())
        .ok_or_else(|| format!("field \"{key}\" must be a string"))
}

fn require_num_or_null(obj: &JsonValue, key: &str) -> Result<(), String> {
    match obj.get(key) {
        None => Err(format!("missing field \"{key}\"")),
        Some(JsonValue::Null | JsonValue::Num(_)) => Ok(()),
        Some(_) => Err(format!("field \"{key}\" must be a number or null")),
    }
}

fn require_exact_fields(obj: &JsonValue, expected: &[&str]) -> Result<(), String> {
    if let JsonValue::Obj(fields) = obj {
        for (k, _) in fields {
            if !expected.contains(&k.as_str()) {
                return Err(format!("unexpected field \"{k}\""));
            }
        }
        Ok(())
    } else {
        Err("event must be a JSON object".into())
    }
}

/// Validates one JSONL telemetry line against the event schema
/// (DESIGN.md §7).
///
/// # Errors
///
/// A message describing the first schema violation.
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let v = parse_json(line)?;
    let ty = v
        .get("type")
        .ok_or_else(|| "missing field \"type\"".to_string())?
        .as_str()
        .ok_or_else(|| "field \"type\" must be a string".to_string())?
        .to_owned();
    match ty.as_str() {
        "counter" => {
            require_exact_fields(&v, &["type", "name", "delta"])?;
            require_str(&v, "name")?;
            require_uint(&v, "delta")
        }
        "histogram" => {
            require_exact_fields(&v, &["type", "name", "value", "bucket"])?;
            require_str(&v, "name")?;
            require_uint(&v, "value")?;
            require_uint(&v, "bucket")?;
            let value = v.get("value").and_then(JsonValue::as_uint).unwrap_or(0);
            let bucket = v.get("bucket").and_then(JsonValue::as_uint).unwrap_or(0);
            if bucket != crate::log2_bucket(value) as u64 {
                return Err(format!(
                    "bucket {bucket} does not match log2_bucket({value}) = {}",
                    crate::log2_bucket(value)
                ));
            }
            Ok(())
        }
        "span" => {
            require_exact_fields(&v, &["type", "name", "ns"])?;
            require_str(&v, "name")?;
            require_uint(&v, "ns")
        }
        "iteration" => {
            require_exact_fields(
                &v,
                &[
                    "type",
                    "algorithm",
                    "iter",
                    "inertia",
                    "moved",
                    "centroid_shift",
                ],
            )?;
            require_str(&v, "algorithm")?;
            require_uint(&v, "iter")?;
            require_uint(&v, "moved")?;
            require_num_or_null(&v, "inertia")?;
            require_num_or_null(&v, "centroid_shift")
        }
        other => Err(format!("unknown event type \"{other}\"")),
    }
}

/// Validates a whole JSONL document (one event per non-empty line).
///
/// Returns the number of validated events.
///
/// # Errors
///
/// The 1-based line number and message of the first invalid line.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_event_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        count += 1;
    }
    Ok(count)
}

/// Zeroes the timing payload of every span event in a JSONL document so
/// two captures of the same seeded run can be compared byte-for-byte.
///
/// `ns` is the schema's only wall-clock field; counters, histograms and
/// iteration events are required to be deterministic as-is.
#[must_use]
pub fn strip_timing(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if line.trim().is_empty() {
            out.push('\n');
            continue;
        }
        match find_ns_payload(line) {
            Some((start, end)) => {
                out.push_str(&line[..start]);
                out.push('0');
                out.push_str(&line[end..]);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// Locates the digits of a `"ns":<digits>` payload in a canonical span
/// line, returning their byte range. `None` for non-span events.
fn find_ns_payload(line: &str) -> Option<(usize, usize)> {
    if parse_json(line).ok()?.get("type")?.as_str()? != "span" {
        return None;
    }
    let key = "\"ns\":";
    let at = line.find(key)?;
    let start = at + key.len();
    let end = start + line[start..].bytes().take_while(u8::is_ascii_digit).count();
    Some((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null"), Ok(JsonValue::Null));
        assert_eq!(parse_json("true"), Ok(JsonValue::Bool(true)));
        assert_eq!(parse_json("false"), Ok(JsonValue::Bool(false)));
        assert_eq!(parse_json("3.5"), Ok(JsonValue::Num(3.5)));
        assert_eq!(parse_json("-2e3"), Ok(JsonValue::Num(-2000.0)));
        assert_eq!(parse_json("\"hi\""), Ok(JsonValue::Str("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\ny\"}").expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| match a {
                JsonValue::Arr(items) => items.first().cloned(),
                _ => None,
            }),
            Some(JsonValue::Num(1.0))
        );
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x\ny"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse_json("\"\\u0041\\t\\\"\\\\ é\"").expect("parses");
        assert_eq!(v.as_str(), Some("A\t\"\\ é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":1,\"a\":2}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validates_all_event_shapes() {
        for good in [
            "{\"type\":\"counter\",\"name\":\"c\",\"delta\":1}",
            "{\"type\":\"histogram\",\"name\":\"h\",\"value\":1024,\"bucket\":11}",
            "{\"type\":\"span\",\"name\":\"s\",\"ns\":0}",
            "{\"type\":\"iteration\",\"algorithm\":\"kshape\",\"iter\":0,\
             \"inertia\":1.5,\"moved\":2,\"centroid_shift\":null}",
        ] {
            validate_event_line(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn rejects_schema_violations() {
        for bad in [
            "{\"type\":\"counter\",\"name\":\"c\"}", // missing delta
            "{\"type\":\"counter\",\"name\":\"c\",\"delta\":-1}", // negative
            "{\"type\":\"counter\",\"name\":\"c\",\"delta\":1,\"x\":2}", // extra field
            "{\"type\":\"histogram\",\"name\":\"h\",\"value\":1024,\"bucket\":3}", // wrong bucket
            "{\"type\":\"span\",\"name\":\"s\",\"ns\":1.5}", // fractional ns
            "{\"type\":\"iteration\",\"algorithm\":\"a\",\"iter\":0,\
             \"inertia\":\"x\",\"moved\":0,\"centroid_shift\":0}", // string inertia
            "{\"type\":\"nope\"}",                   // unknown type
            "{\"name\":\"c\",\"delta\":1}",          // no type
            "[1,2,3]",                               // not an object
        ] {
            assert!(validate_event_line(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn validates_whole_documents_with_line_numbers() {
        let good = "{\"type\":\"span\",\"name\":\"s\",\"ns\":5}\n\n\
                    {\"type\":\"counter\",\"name\":\"c\",\"delta\":1}\n";
        assert_eq!(validate_jsonl(good), Ok(2));
        let bad = "{\"type\":\"span\",\"name\":\"s\",\"ns\":5}\nnot json\n";
        let err = validate_jsonl(bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn strip_timing_zeroes_only_span_ns() {
        let doc = "{\"type\":\"span\",\"name\":\"s\",\"ns\":123456}\n\
                   {\"type\":\"counter\",\"name\":\"ns\",\"delta\":7}\n";
        let stripped = strip_timing(doc);
        assert!(stripped.contains("\"ns\":0"), "{stripped}");
        assert!(stripped.contains("\"delta\":7"), "{stripped}");
        // Two captures differing only in span timing strip identically.
        let other = "{\"type\":\"span\",\"name\":\"s\",\"ns\":999}\n\
                     {\"type\":\"counter\",\"name\":\"ns\",\"delta\":7}\n";
        assert_eq!(stripped, strip_timing(other));
        // The stripped document still validates.
        assert_eq!(validate_jsonl(&stripped), Ok(2));
    }
}
