//! Log2-bucketed histogram: fixed memory, no allocation per sample.
//!
//! Bucket `b` holds samples whose value has bit length `b` — i.e.
//! bucket 0 is exactly `{0}`, bucket 1 is `{1}`, bucket 2 is `{2, 3}`,
//! bucket 11 is `{1024..=2047}`, and so on up to bucket 64 for the top
//! of the `u64` range. That gives a ~2x relative-error summary of span
//! durations or cost magnitudes at 65 words of state, which is all the
//! convergence-telemetry use cases need.

/// Number of buckets in a [`Histogram`] (bit lengths 0..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket index for a value: its bit length.
#[must_use]
pub fn log2_bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A fixed-size log2 histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[log2_bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of samples in bucket `bucket` (see [`log2_bucket`]).
    ///
    /// # Panics
    ///
    /// When `bucket >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// The buckets as a slice, index = bit length of the sample.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn record_and_summary() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.bucket_count(11), 1);
        assert_eq!(h.buckets().iter().sum::<u64>(), 5);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(7);
        let mut b = Histogram::new();
        b.record(9);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.bucket_count(3), 1); // 7
        assert_eq!(a.bucket_count(4), 1); // 9
        assert_eq!(a.bucket_count(64), 1);
    }

    #[test]
    fn saturating_sum_does_not_wrap() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }
}
