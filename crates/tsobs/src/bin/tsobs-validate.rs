//! JSONL telemetry-schema validator.
//!
//! Reads one or more JSONL run artifacts (or stdin when no paths are
//! given), validates every line against the tsobs event schema
//! (DESIGN.md §7), and exits non-zero on the first violation. CI replays
//! a captured run through this binary so schema drift is caught before
//! any downstream tooling parses a broken artifact.
//!
//! Usage: `tsobs-validate [FILE ...]`

use std::io::Read;
use std::process::ExitCode;

fn validate_source(name: &str, text: &str) -> Result<usize, String> {
    tsobs::validate_jsonl(text).map_err(|e| format!("{name}: {e}"))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    let mut total = 0usize;

    if paths.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("tsobs-validate: stdin: {e}");
            return ExitCode::FAILURE;
        }
        match validate_source("<stdin>", &text) {
            Ok(n) => total += n,
            Err(e) => {
                eprintln!("tsobs-validate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tsobs-validate: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_source(path, &text) {
            Ok(n) => total += n,
            Err(e) => {
                eprintln!("tsobs-validate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("tsobs-validate: {total} events OK");
    ExitCode::SUCCESS
}
