//! Structured observability for the k-Shape workspace.
//!
//! The paper's headline claim is *efficiency* — rank-1 accuracy at an
//! order of magnitude less compute than k-DBA (PAPER §6) — yet wall-clock
//! benches only observe that from the outside. This crate records what
//! happens *inside* the hot loops: per-iteration convergence telemetry,
//! scoped timers around refinement vs. assignment, plan-cache hit rates,
//! and where execution-control cost units are actually charged.
//!
//! Three pieces:
//!
//! * [`Recorder`] — the object-safe sink trait. Implementations receive
//!   monotonic counter increments, log2-bucketable histogram samples,
//!   span durations, and typed [`IterationEvent`]s. All methods take
//!   `&self` and the trait requires `Sync`, so one recorder can be shared
//!   by the parallel dissimilarity-matrix workers.
//! * [`Obs`] — a `Copy` handle over `Option<&dyn Recorder>` that hot
//!   loops thread through their cores. Disarmed ([`Obs::none`]) every
//!   method is a single branch on a `None`; no clock is read, no
//!   allocation happens, no virtual call is made. The `tsobs` bench
//!   group and CI gate pin this at < 1% overhead on the k-Shape fit.
//! * Sinks — [`NullRecorder`] (explicit no-op), [`MemorySink`] (buffers
//!   typed [`Event`]s for tests), and [`JsonlSink`] (streams one JSON
//!   object per line for the experiment harness; schema in DESIGN.md §7
//!   and enforced by the `tsobs-validate` binary).
//!
//! # Determinism contract
//!
//! Recording is strictly read-only with respect to the algorithms: an
//! armed recorder must never change labels, centroids, iteration counts,
//! or any other result bit. `tests/determinism.rs` and
//! `tests/observability.rs` in the workspace root enforce this by
//! comparing golden hashes with and without a live JSONL sink, and by
//! diffing two identically seeded event streams modulo timing fields
//! (see [`strip_timing`]).

#![warn(missing_docs)]

mod histogram;
mod json;
mod sinks;

pub use histogram::{log2_bucket, Histogram, HISTOGRAM_BUCKETS};
pub use json::{parse_json, strip_timing, validate_event_line, validate_jsonl, JsonValue};
pub use sinks::{Event, JsonlSink, MemorySink, NullRecorder, SharedBuf};

use std::time::Instant;

/// One outer refinement iteration of a clustering algorithm.
///
/// Every iterative clusterer in the workspace (k-Shape, k-means, k-DBA,
/// KSC, PAM, spectral's embedded k-means, fuzzy c-means) emits one of
/// these per outer iteration; CONTRIBUTING.md makes that a rule for new
/// loops. Fields that a given algorithm cannot compute cheaply without
/// perturbing its arithmetic are reported as `f64::NAN` (serialized as
/// JSON `null` by the JSONL sink).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// Algorithm identifier, e.g. `"kshape"`, `"kmeans"`, `"pam"`.
    pub algorithm: &'static str,
    /// Zero-based outer iteration index.
    pub iter: usize,
    /// Sum of (squared) assignment distances after this iteration, or
    /// NaN when the algorithm does not track it.
    pub inertia: f64,
    /// Number of series that changed cluster membership this iteration.
    pub moved: usize,
    /// Aggregate L2 shift of the centroids/medoids relative to the
    /// previous iteration, or NaN when not applicable.
    pub centroid_shift: f64,
}

/// Object-safe telemetry sink.
///
/// All methods take `&self`: sinks serialize internally (atomics or a
/// mutex), which lets a single recorder be shared across the scoped
/// threads of a parallel matrix build. Names are plain `&str` so call
/// sites may use either static labels (`"kshape.assignment"`) or
/// formatted ones (`"cell.k-Shape.synthetic-00"`); sinks own any copies
/// they keep.
pub trait Recorder: Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&self, name: &str, delta: u64);
    /// Records one sample into the histogram `name`. Sinks bucket by
    /// [`log2_bucket`]; the raw value is also retained where the sink
    /// format allows.
    fn histogram(&self, name: &str, value: u64);
    /// Records a completed span `name` that took `nanos` nanoseconds.
    fn span(&self, name: &str, nanos: u64);
    /// Records one typed per-iteration convergence event.
    fn iteration(&self, event: &IterationEvent);
}

/// Copyable handle the hot loops carry: either disarmed (`None`, the
/// default everywhere) or armed with a borrowed [`Recorder`].
///
/// The disarmed fast path is a branch on a `None` option — no clock
/// read, no virtual dispatch. See the `tsobs` bench group for the
/// measured cost on the k-Shape fit loop.
#[derive(Clone, Copy, Default)]
pub struct Obs<'a> {
    recorder: Option<&'a dyn Recorder>,
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("armed", &self.is_armed())
            .finish()
    }
}

impl<'a> Obs<'a> {
    /// A disarmed handle: every recording method is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Obs { recorder: None }
    }

    /// Arms the handle with a recorder.
    #[must_use]
    pub fn new(recorder: &'a dyn Recorder) -> Self {
        Obs {
            recorder: Some(recorder),
        }
    }

    /// Arms the handle when `recorder` is `Some`, mirroring the
    /// `recorder: Option<&dyn Recorder>` field of the options structs.
    #[must_use]
    pub fn from_option(recorder: Option<&'a dyn Recorder>) -> Self {
        Obs { recorder }
    }

    /// Whether a recorder is attached.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.recorder.is_some()
    }

    /// Adds `delta` to counter `name` (no-op when disarmed).
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(r) = self.recorder {
            r.counter(name, delta);
        }
    }

    /// Records a histogram sample (no-op when disarmed).
    #[inline]
    pub fn histogram(&self, name: &str, value: u64) {
        if let Some(r) = self.recorder {
            r.histogram(name, value);
        }
    }

    /// Emits a per-iteration convergence event (no-op when disarmed).
    #[inline]
    pub fn iteration(&self, event: &IterationEvent) {
        if let Some(r) = self.recorder {
            r.iteration(event);
        }
    }

    /// Opens a scoped timer that records a span on drop.
    ///
    /// Disarmed, the returned guard holds nothing and the clock is never
    /// read. `name` is borrowed for the guard's lifetime so formatted
    /// names need only outlive the scope they time.
    #[inline]
    #[must_use]
    pub fn span<'n>(&self, name: &'n str) -> SpanGuard<'a, 'n> {
        SpanGuard {
            inner: self.recorder.map(|r| (r, name, Instant::now())),
        }
    }

    /// Runs `f` only when armed — for telemetry whose *computation* (not
    /// just its recording) should stay off the disarmed path, e.g. the
    /// per-iteration centroid-shift norm in the k-Shape loop.
    #[inline]
    pub fn when_armed(&self, f: impl FnOnce(&dyn Recorder)) {
        if let Some(r) = self.recorder {
            f(r);
        }
    }
}

/// Guard returned by [`Obs::span`]; records the elapsed nanoseconds into
/// the recorder when dropped (armed handles only).
pub struct SpanGuard<'a, 'n> {
    inner: Option<(&'a dyn Recorder, &'n str, Instant)>,
}

impl SpanGuard<'_, '_> {
    /// Ends the span early, recording its duration now instead of at
    /// scope exit.
    pub fn end(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some((recorder, name, started)) = self.inner.take() {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            recorder.span(name, nanos);
        }
    }
}

impl Drop for SpanGuard<'_, '_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_obs_is_inert() {
        let obs = Obs::none();
        assert!(!obs.is_armed());
        obs.counter("c", 1);
        obs.histogram("h", 2);
        obs.iteration(&IterationEvent {
            algorithm: "t",
            iter: 0,
            inertia: 0.0,
            moved: 0,
            centroid_shift: 0.0,
        });
        let span = obs.span("s");
        drop(span);
        let mut ran = false;
        obs.when_armed(|_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn armed_obs_routes_to_recorder() {
        let sink = MemorySink::new();
        let obs = Obs::new(&sink);
        assert!(obs.is_armed());
        obs.counter("c", 3);
        obs.counter("c", 4);
        obs.histogram("h", 1024);
        {
            let _g = obs.span("s");
        }
        obs.span("early").end();
        obs.iteration(&IterationEvent {
            algorithm: "t",
            iter: 1,
            inertia: 2.5,
            moved: 3,
            centroid_shift: 0.5,
        });
        let mut ran = false;
        obs.when_armed(|_| ran = true);
        assert!(ran);

        assert_eq!(sink.counter_total("c"), 7);
        assert_eq!(sink.counter_total("missing"), 0);
        let spans: Vec<Event> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::Span { .. }))
            .collect();
        assert_eq!(spans.len(), 2);
        let iters = sink.iteration_events();
        assert_eq!(iters.len(), 1);
        assert_eq!(iters[0].moved, 3);
    }

    #[test]
    fn from_option_matches_armed_state() {
        let sink = MemorySink::new();
        assert!(Obs::from_option(Some(&sink as &dyn Recorder)).is_armed());
        assert!(!Obs::from_option(None).is_armed());
        assert!(!Obs::default().is_armed());
    }

    #[test]
    fn debug_formats_armed_state() {
        let sink = MemorySink::new();
        assert_eq!(format!("{:?}", Obs::new(&sink)), "Obs { armed: true }");
        assert_eq!(format!("{:?}", Obs::none()), "Obs { armed: false }");
    }
}
