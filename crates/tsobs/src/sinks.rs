//! Recorder implementations: no-op, in-memory (tests), and JSONL
//! (experiment harness).

use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{Histogram, IterationEvent, Recorder};

/// Recovers a usable guard from a poisoned mutex: telemetry state is
/// plain data, so observing a panicking thread's partial write is
/// strictly better than cascading the poison into every later record.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Escapes `s` as the body of a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Writes an f64 as a JSON value: finite numbers verbatim, everything
/// else (`NaN`, infinities — "not tracked" markers in events) as `null`.
fn push_json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's Display for f64 is a shortest round-trip decimal,
        // which is a valid JSON number.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// One recorded telemetry event, as buffered by [`MemorySink`] and
/// serialized by [`JsonlSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A monotonic counter increment.
    Counter {
        /// Counter name.
        name: String,
        /// Increment amount.
        delta: u64,
    },
    /// A histogram sample.
    Histogram {
        /// Histogram name.
        name: String,
        /// Raw sample value.
        value: u64,
        /// Its [`crate::log2_bucket`] index.
        bucket: usize,
    },
    /// A completed scoped timer.
    Span {
        /// Span name.
        name: String,
        /// Wall-clock duration in nanoseconds. This is the only timing
        /// field in the schema; [`crate::strip_timing`] zeroes it for
        /// determinism comparisons.
        ns: u64,
    },
    /// A typed per-iteration convergence event.
    Iteration(IterationEvent),
}

impl Event {
    /// Serializes the event as one JSONL line (no trailing newline).
    ///
    /// Schema (DESIGN.md §7, enforced by [`crate::validate_event_line`]):
    ///
    /// ```json
    /// {"type":"counter","name":"...","delta":N}
    /// {"type":"histogram","name":"...","value":N,"bucket":B}
    /// {"type":"span","name":"...","ns":N}
    /// {"type":"iteration","algorithm":"...","iter":N,"inertia":F|null,
    ///  "moved":N,"centroid_shift":F|null}
    /// ```
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            Event::Counter { name, delta } => {
                out.push_str("{\"type\":\"counter\",\"name\":\"");
                escape_json(name, &mut out);
                out.push_str(&format!("\",\"delta\":{delta}}}"));
            }
            Event::Histogram {
                name,
                value,
                bucket,
            } => {
                out.push_str("{\"type\":\"histogram\",\"name\":\"");
                escape_json(name, &mut out);
                out.push_str(&format!("\",\"value\":{value},\"bucket\":{bucket}}}"));
            }
            Event::Span { name, ns } => {
                out.push_str("{\"type\":\"span\",\"name\":\"");
                escape_json(name, &mut out);
                out.push_str(&format!("\",\"ns\":{ns}}}"));
            }
            Event::Iteration(ev) => {
                out.push_str("{\"type\":\"iteration\",\"algorithm\":\"");
                escape_json(ev.algorithm, &mut out);
                out.push_str(&format!("\",\"iter\":{},\"inertia\":", ev.iter));
                push_json_f64(ev.inertia, &mut out);
                out.push_str(&format!(",\"moved\":{},\"centroid_shift\":", ev.moved));
                push_json_f64(ev.centroid_shift, &mut out);
                out.push('}');
            }
        }
        out
    }
}

/// The explicit no-op recorder: every method does nothing.
///
/// Prefer [`crate::Obs::none`] in APIs — a disarmed handle skips even
/// the virtual call — but a `NullRecorder` is useful where a concrete
/// `&dyn Recorder` is required.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn histogram(&self, _name: &str, _value: u64) {}
    fn span(&self, _name: &str, _nanos: u64) {}
    fn iteration(&self, _event: &IterationEvent) {}
}

/// Buffers every event in memory, in arrival order. The test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// All recorded events, in arrival order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.events).len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        lock_unpoisoned(&self.events).clear();
    }

    /// Sum of all increments to counter `name`.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        lock_unpoisoned(&self.events)
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, delta } if n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// All [`IterationEvent`]s, in arrival order.
    #[must_use]
    pub fn iteration_events(&self) -> Vec<IterationEvent> {
        lock_unpoisoned(&self.events)
            .iter()
            .filter_map(|e| match e {
                Event::Iteration(ev) => Some(*ev),
                _ => None,
            })
            .collect()
    }

    /// Aggregates every sample of histogram `name` into a [`Histogram`].
    #[must_use]
    pub fn histogram_of(&self, name: &str) -> Histogram {
        let mut h = Histogram::new();
        for e in lock_unpoisoned(&self.events).iter() {
            if let Event::Histogram { name: n, value, .. } = e {
                if n == name {
                    h.record(*value);
                }
            }
        }
        h
    }

    /// Total nanoseconds across all spans named `name`.
    #[must_use]
    pub fn span_total_ns(&self, name: &str) -> u64 {
        lock_unpoisoned(&self.events)
            .iter()
            .filter_map(|e| match e {
                Event::Span { name: n, ns } if n == name => Some(*ns),
                _ => None,
            })
            .sum()
    }

    /// Number of spans named `name`.
    #[must_use]
    pub fn span_count(&self, name: &str) -> usize {
        lock_unpoisoned(&self.events)
            .iter()
            .filter(|e| matches!(e, Event::Span { name: n, .. } if n == name))
            .count()
    }

    fn push(&self, event: Event) {
        lock_unpoisoned(&self.events).push(event);
    }
}

impl Recorder for MemorySink {
    fn counter(&self, name: &str, delta: u64) {
        self.push(Event::Counter {
            name: name.to_owned(),
            delta,
        });
    }

    fn histogram(&self, name: &str, value: u64) {
        self.push(Event::Histogram {
            name: name.to_owned(),
            value,
            bucket: crate::log2_bucket(value),
        });
    }

    fn span(&self, name: &str, nanos: u64) {
        self.push(Event::Span {
            name: name.to_owned(),
            ns: nanos,
        });
    }

    fn iteration(&self, event: &IterationEvent) {
        self.push(Event::Iteration(*event));
    }
}

/// A clonable in-memory byte buffer implementing [`Write`], for routing
/// a [`JsonlSink`] into memory (determinism tests compare two captured
/// streams).
#[derive(Debug, Default, Clone)]
pub struct SharedBuf {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// A copy of the bytes written so far.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        lock_unpoisoned(&self.bytes).clone()
    }

    /// The written bytes as UTF-8 (JSONL output always is).
    #[must_use]
    pub fn as_string(&self) -> String {
        String::from_utf8_lossy(&self.contents()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        lock_unpoisoned(&self.bytes).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams events as one JSON object per line to any `Write + Send`
/// destination — a file for the experiment harness, a [`SharedBuf`] for
/// tests, or [`std::io::sink`] for overhead benches.
///
/// Write errors never panic and never reach the algorithm being
/// observed; they are counted and exposed via
/// [`JsonlSink::dropped_writes`].
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("dropped_writes", &self.dropped_writes())
            .finish()
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) `path` and streams events to it, buffered.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn to_file<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(BufWriter::new(file))))
    }

    /// Streams into a [`SharedBuf`] whose handle the caller keeps.
    #[must_use]
    pub fn to_shared_buf(buf: &SharedBuf) -> Self {
        JsonlSink::new(Box::new(buf.clone()))
    }

    /// Number of events lost to write errors.
    #[must_use]
    pub fn dropped_writes(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the writer's flush.
    pub fn flush(&self) -> std::io::Result<()> {
        lock_unpoisoned(&self.out).flush()
    }

    fn write_line(&self, line: &str) {
        let mut out = lock_unpoisoned(&self.out);
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Recorder for JsonlSink {
    fn counter(&self, name: &str, delta: u64) {
        self.write_line(
            &Event::Counter {
                name: name.to_owned(),
                delta,
            }
            .to_json_line(),
        );
    }

    fn histogram(&self, name: &str, value: u64) {
        self.write_line(
            &Event::Histogram {
                name: name.to_owned(),
                value,
                bucket: crate::log2_bucket(value),
            }
            .to_json_line(),
        );
    }

    fn span(&self, name: &str, nanos: u64) {
        self.write_line(
            &Event::Span {
                name: name.to_owned(),
                ns: nanos,
            }
            .to_json_line(),
        );
    }

    fn iteration(&self, event: &IterationEvent) {
        self.write_line(&Event::Iteration(*event).to_json_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_iteration() -> IterationEvent {
        IterationEvent {
            algorithm: "kshape",
            iter: 2,
            inertia: 3.5,
            moved: 4,
            centroid_shift: 0.25,
        }
    }

    #[test]
    fn event_json_lines_are_stable() {
        assert_eq!(
            Event::Counter {
                name: "sbd.cache.hits".into(),
                delta: 3
            }
            .to_json_line(),
            "{\"type\":\"counter\",\"name\":\"sbd.cache.hits\",\"delta\":3}"
        );
        assert_eq!(
            Event::Histogram {
                name: "h".into(),
                value: 1024,
                bucket: 11
            }
            .to_json_line(),
            "{\"type\":\"histogram\",\"name\":\"h\",\"value\":1024,\"bucket\":11}"
        );
        assert_eq!(
            Event::Span {
                name: "kshape.fit".into(),
                ns: 42
            }
            .to_json_line(),
            "{\"type\":\"span\",\"name\":\"kshape.fit\",\"ns\":42}"
        );
        assert_eq!(
            Event::Iteration(sample_iteration()).to_json_line(),
            "{\"type\":\"iteration\",\"algorithm\":\"kshape\",\"iter\":2,\
             \"inertia\":3.5,\"moved\":4,\"centroid_shift\":0.25}"
        );
    }

    #[test]
    fn nan_serializes_as_null() {
        let line = Event::Iteration(IterationEvent {
            inertia: f64::NAN,
            centroid_shift: f64::INFINITY,
            ..sample_iteration()
        })
        .to_json_line();
        assert!(line.contains("\"inertia\":null"), "{line}");
        assert!(line.contains("\"centroid_shift\":null"), "{line}");
    }

    #[test]
    fn names_are_escaped() {
        let line = Event::Counter {
            name: "we\"ird\\n\name".into(),
            delta: 1,
        }
        .to_json_line();
        assert!(line.contains("we\\\"ird\\\\n\\name"), "{line}");
        crate::validate_event_line(&line).expect("escaped line validates");
    }

    #[test]
    fn memory_sink_aggregations() {
        let sink = MemorySink::new();
        sink.counter("c", 2);
        sink.counter("c", 3);
        sink.counter("other", 10);
        sink.histogram("h", 0);
        sink.histogram("h", 1024);
        sink.span("s", 5);
        sink.span("s", 7);
        sink.iteration(&sample_iteration());

        assert_eq!(sink.len(), 8);
        assert!(!sink.is_empty());
        assert_eq!(sink.counter_total("c"), 5);
        assert_eq!(sink.counter_total("other"), 10);
        assert_eq!(sink.span_total_ns("s"), 12);
        assert_eq!(sink.span_count("s"), 2);
        let h = sink.histogram_of("h");
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(11), 1);
        assert_eq!(sink.iteration_events(), vec![sample_iteration()]);

        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let buf = SharedBuf::new();
        let sink = JsonlSink::to_shared_buf(&buf);
        sink.counter("c", 1);
        sink.histogram("h", 3);
        sink.span("s", 9);
        sink.iteration(&sample_iteration());
        sink.flush().expect("flush in-memory");
        assert_eq!(sink.dropped_writes(), 0);

        let text = buf.as_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            crate::validate_event_line(line).expect("line validates");
        }
    }

    #[test]
    fn jsonl_sink_counts_dropped_writes() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(FailingWriter));
        sink.counter("c", 1);
        sink.span("s", 2);
        assert_eq!(sink.dropped_writes(), 2);
    }

    #[test]
    fn null_recorder_accepts_everything() {
        let r = NullRecorder;
        r.counter("c", 1);
        r.histogram("h", 2);
        r.span("s", 3);
        r.iteration(&sample_iteration());
    }
}
