//! Naive O(n²) discrete Fourier transform.
//!
//! Used as the correctness oracle for the fast transforms and for the
//! `SBD-NoFFT` ablation of Table 2. Implements Equations 10 and 11 of the
//! paper directly.

use crate::complex::Complex;

/// Computes the forward DFT of `input` by direct summation (Equation 10).
///
/// `F(x_k) = Σ_r x_r · e^{-2πi rk / n}`
#[must_use]
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    let step = -2.0 * std::f64::consts::PI / n as f64;
    for k in 0..n {
        let mut acc = Complex::ZERO;
        for (r, &x) in input.iter().enumerate() {
            // r * k can exceed n; reduce to keep the angle well conditioned.
            let phase = step * ((r * k) % n) as f64;
            acc += x * Complex::cis(phase);
        }
        out.push(acc);
    }
    out
}

/// Computes the inverse DFT of `input` by direct summation (Equation 11).
///
/// `F⁻¹(x_r) = (1/n) Σ_k X_k · e^{2πi rk / n}`
#[must_use]
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let step = 2.0 * std::f64::consts::PI / n as f64;
    let scale = 1.0 / n as f64;
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let mut acc = Complex::ZERO;
        for (k, &x) in input.iter().enumerate() {
            let phase = step * ((r * k) % n) as f64;
            acc += x * Complex::cis(phase);
        }
        out.push(acc.scale(scale));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{dft, idft};
    use crate::complex::Complex;

    fn reals(v: &[f64]) -> Vec<Complex> {
        v.iter().copied().map(Complex::from_real).collect()
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[]).is_empty());
        assert!(idft(&[]).is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let x = [Complex::new(3.0, -1.0)];
        assert_eq!(dft(&x)[0], x[0]);
        let y = idft(&x);
        assert!((y[0].re - 3.0).abs() < 1e-12 && (y[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn dc_component_is_sum() {
        let x = reals(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let spec = dft(&x);
        assert!((spec[0].re - 15.0).abs() < 1e-10);
        assert!(spec[0].im.abs() < 1e-10);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        for bin in dft(&x) {
            assert!((bin.re - 1.0).abs() < 1e-12);
            assert!(bin.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_hits_one_bin() {
        let n = 16;
        let freq = 3;
        let x: Vec<Complex> = (0..n)
            .map(|t| {
                Complex::from_real(
                    (2.0 * std::f64::consts::PI * freq as f64 * t as f64 / n as f64).cos(),
                )
            })
            .collect();
        let spec = dft(&x);
        for (k, bin) in spec.iter().enumerate() {
            let mag = bin.abs();
            if k == freq || k == n - freq {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {k}: {mag}");
            } else {
                assert!(mag < 1e-9, "bin {k}: {mag}");
            }
        }
    }

    #[test]
    fn roundtrip_non_power_of_two() {
        let x = reals(&[0.5, -1.25, 3.75, 2.0, -0.125, 7.5, -3.25]);
        let back = idft(&dft(&x));
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!(b.im.abs() < 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let x = reals(&[1.0, 2.0, 3.0, 4.0]);
        let y = reals(&[-2.0, 0.5, 1.5, -1.0]);
        let sum: Vec<Complex> = x.iter().zip(y.iter()).map(|(&a, &b)| a + b).collect();
        let fx = dft(&x);
        let fy = dft(&y);
        let fsum = dft(&sum);
        for i in 0..4 {
            let expect = fx[i] + fy[i];
            assert!((fsum[i].re - expect.re).abs() < 1e-10);
            assert!((fsum[i].im - expect.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_theorem() {
        let x = reals(&[1.0, -2.0, 3.5, 0.25, -4.75, 2.0]);
        let spec = dft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }
}
