//! Planned real-input FFT with packed half-spectra.
//!
//! The correlation kernels only ever transform *real* sequences, whose
//! spectra carry the conjugate symmetry `X[n−k] = conj(X[k])`. Storing the
//! full `n`-point complex spectrum is therefore redundant: the `n/2 + 1`
//! leading bins determine the rest. [`RealFftPlan`] exploits this twice:
//!
//! * the forward transform packs the even/odd samples of a real signal into
//!   a complex buffer of length `n/2` and runs a **half-size** [`Radix2Fft`],
//!   roughly halving the transform cost relative to a complex FFT of the
//!   padded signal;
//! * the half-spectrum representation halves the memory held by spectrum
//!   caches (one cached spectrum per series for a whole k-Shape fit).
//!
//! Cross-correlation stays closed over half-spectra: the product
//! `X·conj(Y)` of two conjugate-symmetric spectra is itself conjugate
//! symmetric, so the correlation sequence comes back through a single
//! half-size inverse transform ([`RealFftPlan::correlate_spectra_into`]).
//!
//! All methods take an explicit scratch buffer so a shared plan can be used
//! from many threads without interior mutability or per-call allocation.

use crate::complex::Complex;
use crate::fft::Radix2Fft;

/// A reusable plan for real-input FFTs of a fixed power-of-two size `n ≥ 2`.
///
/// The spectrum representation is the *packed half-spectrum*: the
/// `n/2 + 1` complex bins `X[0] ..= X[n/2]` of the full `n`-point DFT.
/// `X[0]` and `X[n/2]` are purely real for real input.
///
/// # Example
///
/// ```
/// use tsfft::RealFftPlan;
///
/// let plan = RealFftPlan::new(8);
/// let x = [1.0, -2.0, 3.0, 0.5, -1.5, 2.0, 0.0, 4.0];
/// let back = plan.irfft(&plan.rfft(&x));
/// for (a, b) in x.iter().zip(back.iter()) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    /// Complex plan of half size; does the actual O(n log n) work.
    half: Radix2Fft,
    /// Unpack twiddles `w[k] = e^{-2πik/n}` for `k in 0..n/2`.
    twiddles: Vec<Complex>,
}

impl RealFftPlan {
    /// Creates a plan for real transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n` is not a power of two.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "real FFT size must be a power of two >= 2, got {n}"
        );
        let h = n / 2;
        let step = -2.0 * std::f64::consts::PI / n as f64;
        let twiddles = (0..h).map(|k| Complex::cis(step * k as f64)).collect();
        RealFftPlan {
            n,
            half: Radix2Fft::new(h),
            twiddles,
        }
    }

    /// The real transform size `n` this plan was built for.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the plan size is zero (never, by construction).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of bins in the packed half-spectrum: `n/2 + 1`.
    #[inline]
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward real FFT of `signal` (zero-padded on the right to `n`) into
    /// the packed half-spectrum `out`.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > n` or `out.len() != n/2 + 1`.
    pub fn rfft_into(&self, signal: &[f64], out: &mut [Complex], scratch: &mut Vec<Complex>) {
        let h = self.n / 2;
        assert!(
            signal.len() <= self.n,
            "signal longer than the plan size: {} > {}",
            signal.len(),
            self.n
        );
        assert_eq!(out.len(), h + 1, "spectrum buffer must hold n/2 + 1 bins");

        // Pack even samples into the real lane, odd samples into the
        // imaginary lane of a half-length complex signal; the zero padding
        // beyond the signal becomes trailing zero bins.
        scratch.clear();
        scratch.extend(signal.chunks_exact(2).map(|p| Complex::new(p[0], p[1])));
        if signal.len() % 2 == 1 {
            scratch.push(Complex::new(signal[signal.len() - 1], 0.0));
        }
        scratch.resize(h, Complex::ZERO);
        self.half.forward(scratch);

        // Split the packed spectrum into even/odd subsequence spectra and
        // recombine with the decimation butterfly.
        let z0 = scratch[0];
        out[0] = Complex::new(z0.re + z0.im, 0.0);
        out[h] = Complex::new(z0.re - z0.im, 0.0);
        for k in 1..h {
            let a = scratch[k];
            let b = scratch[h - k].conj();
            let even = (a + b).scale(0.5);
            let odd = (a - b) * Complex::new(0.0, -0.5);
            out[k] = even + self.twiddles[k] * odd;
        }
    }

    /// Forward real FFT returning a freshly allocated packed half-spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > n`.
    #[must_use]
    pub fn rfft(&self, signal: &[f64]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.spectrum_len()];
        let mut scratch = Vec::with_capacity(self.n / 2);
        self.rfft_into(signal, &mut out, &mut scratch);
        out
    }

    /// Inverse real FFT: recovers the length-`n` real signal from a packed
    /// half-spectrum (including the `1/n` normalization).
    ///
    /// The imaginary parts of `spectrum[0]` and `spectrum[n/2]` are ignored
    /// (they are zero for any spectrum of a real signal).
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != n/2 + 1` or `out.len() != n`.
    pub fn irfft_into(&self, spectrum: &[Complex], out: &mut [f64], scratch: &mut Vec<Complex>) {
        let h = self.n / 2;
        assert_eq!(
            spectrum.len(),
            h + 1,
            "spectrum buffer must hold n/2 + 1 bins"
        );
        assert_eq!(out.len(), self.n, "output buffer must hold n samples");

        // Invert the unpack butterfly: rebuild the half-size spectrum
        // z[k] = E[k] + i·O[k] from X[k] = E[k] + w^k·O[k] and the
        // conjugate-symmetry identity X[k + n/2] = conj(X[n/2 − k]).
        //
        // The half-size inverse transform is inlined through the identity
        // `ifft(z) = conj(fft(conj(z))) / h`: the input conjugation is
        // folded into this rebuild (the imaginary lane is written negated)
        // and the output conjugation and `1/h` scale are folded into the
        // interleaved copy-out, saving two extra passes over the buffer.
        scratch.clear();
        scratch.push(repack_edges(spectrum[0], spectrum[h]));
        for k in 1..h {
            scratch.push(repack_bin(spectrum[k], spectrum[h - k], self.twiddles[k]));
        }
        self.finish_half_inverse(scratch, out);
    }

    /// Shared tail of the inverse paths: half-size transform of the
    /// conjugated rebuilt spectrum, then the conjugate-and-scale copy-out.
    fn finish_half_inverse(&self, scratch: &mut [Complex], out: &mut [f64]) {
        self.half.forward(scratch);
        let scale = 1.0 / (self.n / 2) as f64;
        for (pair, z) in out.chunks_exact_mut(2).zip(scratch.iter()) {
            pair[0] = z.re * scale;
            pair[1] = -z.im * scale;
        }
    }

    /// Inverse real FFT returning a freshly allocated signal.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != n/2 + 1`.
    #[must_use]
    pub fn irfft(&self, spectrum: &[Complex]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        let mut scratch = Vec::with_capacity(self.n / 2);
        self.irfft_into(spectrum, &mut out, &mut scratch);
        out
    }

    /// Circular cross-correlation from two packed half-spectra:
    /// `out[t] = Σ_l x[(l + t) mod n] · y[l]`, i.e. the inverse transform of
    /// `X·conj(Y)`.
    ///
    /// The conjugate product of two conjugate-symmetric spectra is itself
    /// conjugate symmetric, so a single half-size inverse transform
    /// suffices — this is the per-pair kernel of the batched SBD sweep.
    ///
    /// # Panics
    ///
    /// Panics if either spectrum is not `n/2 + 1` bins or `out.len() != n`.
    pub fn correlate_spectra_into(
        &self,
        x: &[Complex],
        y: &[Complex],
        out: &mut [f64],
        scratch: &mut Vec<Complex>,
    ) {
        let h = self.n / 2;
        assert_eq!(x.len(), h + 1, "x spectrum must hold n/2 + 1 bins");
        assert_eq!(y.len(), h + 1, "y spectrum must hold n/2 + 1 bins");
        assert_eq!(out.len(), self.n, "output buffer must hold n samples");

        // Fused product + inverse rebuild: each product bin
        // `P[k] = X[k]·conj(Y[k])` is consumed by exactly two rebuilt bins
        // (`k` and `n/2 − k`), so walking the symmetric pairs computes every
        // product once without materializing the product spectrum.
        scratch.clear();
        scratch.resize(h, Complex::ZERO);
        let s = &mut scratch[..h];
        s[0] = repack_edges(x[0] * y[0].conj(), x[h] * y[h].conj());
        if h >= 2 {
            // Walk the symmetric bin pairs (k, n/2 − k): each product bin
            // is computed exactly once and feeds both rebuilt bins.
            let mid = h / 2;
            for k in 1..mid {
                let pk = x[k] * y[k].conj();
                let pmk = x[h - k] * y[h - k].conj();
                s[k] = repack_bin(pk, pmk, self.twiddles[k]);
                s[h - k] = repack_bin(pmk, pk, self.twiddles[h - k]);
            }
            let pm = x[mid] * y[mid].conj();
            s[mid] = repack_bin(pm, pm, self.twiddles[mid]);
        }
        self.finish_half_inverse(s, out);
    }
}

/// Rebuilds (conjugated) bin `k` of the half-size spectrum from bins
/// `a = X[k]` and `b_src = X[n/2 − k]` of the packed half-spectrum, where
/// `w` is the unpack twiddle `e^{-2πik/n}`.
#[inline]
fn repack_bin(a: Complex, b_src: Complex, w: Complex) -> Complex {
    let b = b_src.conj();
    let even = (a + b).scale(0.5);
    let odd = (a - b).scale(0.5) * w.conj();
    // conj(z[k]) for z[k] = E[k] + i·O[k].
    Complex::new(even.re - odd.im, -(even.im + odd.re))
}

/// Rebuilds (conjugated) bin 0 of the half-size spectrum from the two
/// purely structural edge bins `X[0]` and `X[n/2]`.
#[inline]
fn repack_edges(sp0: Complex, sph: Complex) -> Complex {
    Complex::new(
        0.5 * (sp0.re + sph.re) - 0.5 * (sp0.im + sph.im),
        -(0.5 * (sp0.re - sph.re) + 0.5 * (sp0.im - sph.im)),
    )
}

#[cfg(test)]
mod tests {
    use super::RealFftPlan;
    use crate::complex::Complex;
    use crate::fft::Radix2Fft;
    use crate::real::pad_to_complex;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = RealFftPlan::new(6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_size_one() {
        let _ = RealFftPlan::new(1);
    }

    #[test]
    fn matches_full_complex_fft_on_leading_bins() {
        let mut next = lcg(11);
        for &n in &[2usize, 4, 8, 64, 256, 1024] {
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            let plan = RealFftPlan::new(n);
            let packed = plan.rfft(&x);
            assert_eq!(packed.len(), n / 2 + 1);
            let full = Radix2Fft::new(n).forward_vec(pad_to_complex(&x, n));
            for (k, (a, b)) in packed.iter().zip(full.iter()).enumerate() {
                assert!(
                    (a.re - b.re).abs() < 1e-9 * n as f64 && (a.im - b.im).abs() < 1e-9 * n as f64,
                    "n={n} bin {k}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn edge_bins_are_real() {
        let mut next = lcg(5);
        let x: Vec<f64> = (0..64).map(|_| next()).collect();
        let spec = RealFftPlan::new(64).rfft(&x);
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[32].im, 0.0);
    }

    #[test]
    fn roundtrip_across_sizes() {
        let mut next = lcg(23);
        for &n in &[2usize, 4, 16, 128, 512] {
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            let plan = RealFftPlan::new(n);
            let back = plan.irfft(&plan.rfft(&x));
            for (i, (a, b)) in x.iter().zip(back.iter()).enumerate() {
                assert!((a - b).abs() < 1e-10, "n={n} sample {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_pads_short_signals() {
        let plan = RealFftPlan::new(16);
        let spec_short = plan.rfft(&[1.0, -2.0, 3.0]);
        let spec_padded = plan.rfft(&[
            1.0, -2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
        ]);
        for (a, b) in spec_short.iter().zip(spec_padded.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn correlate_matches_complex_path() {
        let mut next = lcg(31);
        for &n in &[4usize, 16, 256] {
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            let plan = RealFftPlan::new(n);

            let (mut out, mut scratch) = (vec![0.0; n], Vec::new());
            plan.correlate_spectra_into(&plan.rfft(&x), &plan.rfft(&y), &mut out, &mut scratch);

            let full = Radix2Fft::new(n);
            let fx = full.forward_vec(pad_to_complex(&x, n));
            let fy = full.forward_vec(pad_to_complex(&y, n));
            let prod: Vec<Complex> = fx
                .iter()
                .zip(fy.iter())
                .map(|(a, b)| *a * b.conj())
                .collect();
            let c = full.inverse_vec(prod);
            for (t, (a, b)) in out.iter().zip(c.iter()).enumerate() {
                assert!((a - b.re).abs() < 1e-9, "n={n} t={t}: {a} vs {}", b.re);
            }
        }
    }

    #[test]
    fn plan_is_reusable_and_deterministic() {
        let plan = RealFftPlan::new(32);
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let a = plan.rfft(&x);
        let b = plan.rfft(&x);
        for (p, q) in a.iter().zip(b.iter()) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
            assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "signal longer")]
    fn rejects_oversized_signal() {
        let plan = RealFftPlan::new(4);
        let _ = plan.rfft(&[0.0; 5]);
    }
}
