//! Minimal double-precision complex arithmetic.
//!
//! Only the operations needed by the FFT and correlation kernels are
//! provided; this is deliberately not a general complex-number library.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Complex { re: cos, im: sin }
    }

    /// Returns the complex conjugate.
    #[inline]
    #[must_use]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the squared magnitude `re² + im²`.
    #[inline]
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `|z|`.
    #[inline]
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::Complex;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z + (-z), Complex::ZERO));
    }

    #[test]
    fn multiplication_and_division_roundtrip() {
        let a = Complex::new(1.5, 2.5);
        let b = Complex::new(-0.75, 4.0);
        let c = a * b;
        assert!(close(c / b, a));
        assert!(close(c / a, b));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(2.0, 7.0);
        assert!(close(z.conj().conj(), z));
        // z * conj(z) = |z|^2
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cis_unit_circle() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(close(z, Complex::I));
        let z = Complex::cis(std::f64::consts::PI);
        assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        // |cis θ| = 1 for arbitrary θ.
        for k in 0..16 {
            let theta = 0.39 * k as f64;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_matches_real_multiplication() {
        let z = Complex::new(-2.0, 6.0);
        assert!(close(z.scale(2.5), Complex::new(-5.0, 15.0)));
        assert!(close(z.scale(2.5), z * Complex::from_real(2.5)));
    }

    #[test]
    fn from_real_conversion() {
        let z: Complex = 4.25_f64.into();
        assert_eq!(z, Complex::new(4.25, 0.0));
    }
}
