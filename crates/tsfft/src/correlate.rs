//! Full cross-correlation sequences (Equations 6, 7, 12 of the paper).
//!
//! For two length-`m` sequences the cross-correlation sequence
//! `CC_w(x, y) = R_{w-m}(x, y)` has `2m − 1` entries indexed by the lag
//! `k = w − m ∈ [−(m−1), m−1]`:
//!
//! ```text
//! R_k(x, y) = Σ_{l=0}^{m-k-1} x[l + k] · y[l]   for k ≥ 0
//! R_k(x, y) = R_{-k}(y, x)                      for k < 0
//! ```
//!
//! Three implementations are provided, matching the SBD variants the paper
//! benchmarks in Table 2:
//!
//! * [`cross_correlate_naive`] — direct O(m²) summation (`SBD-NoFFT`),
//! * [`cross_correlate_fft`] — power-of-two padded FFT (`SBD`, Algorithm 1),
//! * [`cross_correlate_bluestein`] — FFT at exact length `2m − 1`
//!   (`SBD-NoPow2`).

use crate::bluestein::BluesteinFft;
use crate::complex::Complex;
use crate::next_pow2;
use crate::real::pad_to_complex;
use crate::real_plan::RealFftPlan;

/// Direct O(m²) cross-correlation (Equations 6 and 7).
///
/// Returns the `2m − 1` values `[R_{-(m-1)}, …, R_0, …, R_{m-1}]`; an empty
/// vector when either input is empty.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[must_use]
pub fn cross_correlate_naive(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sequences must have equal length");
    let m = x.len();
    if m == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(2 * m - 1);
    // Negative lags: R_{-k}(x, y) = R_k(y, x).
    for k in (1..m).rev() {
        let mut acc = 0.0;
        for l in 0..m - k {
            acc += y[l + k] * x[l];
        }
        out.push(acc);
    }
    // Non-negative lags.
    for k in 0..m {
        let mut acc = 0.0;
        for l in 0..m - k {
            acc += x[l + k] * y[l];
        }
        out.push(acc);
    }
    out
}

/// FFT-based cross-correlation padded to the next power of two after
/// `2m − 1` (Equation 12 plus the padding optimization of Section 3.1).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[must_use]
pub fn cross_correlate_fft(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sequences must have equal length");
    let m = x.len();
    if m == 0 {
        return Vec::new();
    }
    if m == 1 {
        return vec![x[0] * y[0]];
    }
    let n = next_pow2(2 * m - 1);
    let plan = RealFftPlan::new(n);
    let (mut c, mut scratch) = (vec![0.0; n], Vec::new());
    plan.correlate_spectra_into(&plan.rfft(x), &plan.rfft(y), &mut c, &mut scratch);
    unwrap_circular_real(&c, m, n)
}

/// FFT-based cross-correlation at exactly length `2m − 1` using the
/// Bluestein chirp-z transform (the `SBD-NoPow2` ablation).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[must_use]
pub fn cross_correlate_bluestein(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sequences must have equal length");
    let m = x.len();
    if m == 0 {
        return Vec::new();
    }
    let n = 2 * m - 1;
    let plan = BluesteinFft::new(n);
    let fx = plan.forward(&pad_to_complex(x, n));
    let fy = plan.forward(&pad_to_complex(y, n));
    let prod: Vec<Complex> = fx
        .iter()
        .zip(fy.iter())
        .map(|(a, b)| *a * b.conj())
        .collect();
    let c = plan.inverse(&prod);
    unwrap_circular(&c, m, n)
}

/// Reorders the circular correlation buffer `c` (length `n ≥ 2m − 1`) into
/// the linear lag order `[R_{-(m-1)}, …, R_{m-1}]`.
///
/// With zero padding, `c[k] = R_k` for `k ∈ [0, m-1]` and
/// `c[n − k] = R_{-k}` for `k ∈ [1, m-1]`.
fn unwrap_circular(c: &[Complex], m: usize, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * m - 1);
    out.extend((1..m).rev().map(|k| c[n - k].re));
    out.extend(c[..m].iter().map(|z| z.re));
    out
}

/// [`unwrap_circular`] for an already-real circular correlation buffer, as
/// produced by the half-spectrum path.
fn unwrap_circular_real(c: &[f64], m: usize, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * m - 1);
    out.extend((1..m).rev().map(|k| c[n - k]));
    out.extend(&c[..m]);
    out
}

/// Computes the inner product `R_0(x, x) = Σ x_i²` (the autocorrelation at
/// lag zero), used by the coefficient normalization of SBD.
#[inline]
#[must_use]
pub fn autocorr0(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

#[cfg(test)]
mod tests {
    use super::{autocorr0, cross_correlate_bluestein, cross_correlate_fft, cross_correlate_naive};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(cross_correlate_naive(&[], &[]).is_empty());
        assert!(cross_correlate_fft(&[], &[]).is_empty());
        assert!(cross_correlate_bluestein(&[], &[]).is_empty());
    }

    #[test]
    fn single_element() {
        let cc = cross_correlate_naive(&[3.0], &[4.0]);
        assert_eq!(cc, vec![12.0]);
        assert_close(&cross_correlate_fft(&[3.0], &[4.0]), &cc, 1e-12);
    }

    #[test]
    fn hand_computed_small_case() {
        // x = [1, 2], y = [3, 4]
        // R_{-1} = R_1(y, x) = y[1]*x[0] = 4
        // R_0 = 1*3 + 2*4 = 11
        // R_1 = x[1]*y[0] = 6
        let expect = vec![4.0, 11.0, 6.0];
        assert_close(
            &cross_correlate_naive(&[1.0, 2.0], &[3.0, 4.0]),
            &expect,
            1e-12,
        );
        assert_close(
            &cross_correlate_fft(&[1.0, 2.0], &[3.0, 4.0]),
            &expect,
            1e-9,
        );
        assert_close(
            &cross_correlate_bluestein(&[1.0, 2.0], &[3.0, 4.0]),
            &expect,
            1e-9,
        );
    }

    #[test]
    fn lag_zero_is_dot_product() {
        let x = [1.0, -2.0, 3.0, 0.5];
        let y = [0.25, 4.0, -1.0, 2.0];
        let cc = cross_correlate_naive(&x, &y);
        let dot: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        assert!((cc[x.len() - 1] - dot).abs() < 1e-12);
    }

    #[test]
    fn all_three_implementations_agree() {
        let mut state = 77_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for &m in &[2usize, 3, 7, 16, 33, 100, 128] {
            let x: Vec<f64> = (0..m).map(|_| next()).collect();
            let y: Vec<f64> = (0..m).map(|_| next()).collect();
            let a = cross_correlate_naive(&x, &y);
            let b = cross_correlate_fft(&x, &y);
            let c = cross_correlate_bluestein(&x, &y);
            assert_close(&a, &b, 1e-7 * m as f64);
            assert_close(&a, &c, 1e-7 * m as f64);
        }
    }

    #[test]
    fn shifted_identical_sequences_peak_at_shift() {
        // y is x delayed by 3 samples; the peak of CC must sit at lag +3
        // or -3 depending on orientation — verify it is at |lag| = 3.
        let m = 32;
        let base: Vec<f64> = (0..m)
            .map(|i| (-((i as f64 - 8.0) / 3.0).powi(2)).exp())
            .collect();
        let mut shifted = vec![0.0; m];
        shifted[3..m].copy_from_slice(&base[..m - 3]);
        let cc = cross_correlate_naive(&base, &shifted);
        let (arg, _) = cc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let lag = arg as isize - (m as isize - 1);
        assert_eq!(lag.unsigned_abs(), 3);
    }

    #[test]
    fn symmetric_in_argument_swap() {
        // CC(x, y) reversed equals CC(y, x).
        let x = [1.0, 4.0, -2.0, 0.5, 3.0];
        let y = [2.0, -1.0, 0.0, 5.0, 1.0];
        let a = cross_correlate_naive(&x, &y);
        let mut b = cross_correlate_naive(&y, &x);
        b.reverse();
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    fn autocorr0_is_energy() {
        assert!((autocorr0(&[3.0, 4.0]) - 25.0).abs() < 1e-12);
        assert_eq!(autocorr0(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = cross_correlate_fft(&[1.0, 2.0], &[1.0]);
    }
}
