//! Real-input FFT helpers.
//!
//! The cross-correlation kernel only ever transforms real sequences. A real
//! signal of even length `n` can be packed into a complex buffer of length
//! `n/2`, transformed, and unpacked — roughly halving the transform cost.
//! This module provides that optimization plus plain real→complex wrappers.

use crate::complex::Complex;
use crate::fft::Radix2Fft;

/// Computes the full `n`-point complex spectrum of a real signal.
///
/// For power-of-two `n >= 2` this uses the packed half-size transform; other
/// callers should pad first. The output has the conjugate symmetry
/// `X[n-k] = conj(X[k])`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `n < 2`.
#[must_use]
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "fft_real requires a power-of-two length >= 2"
    );
    let half = n / 2;

    // Pack even samples into the real lane and odd samples into the
    // imaginary lane of a half-length complex signal.
    let mut packed: Vec<Complex> = (0..half)
        .map(|i| Complex::new(signal[2 * i], signal[2 * i + 1]))
        .collect();
    let plan = Radix2Fft::new(half);
    plan.forward(&mut packed);

    // Unpack: split the packed spectrum into the spectra of the even (E) and
    // odd (O) subsequences, then combine with the usual decimation butterfly.
    let mut out = vec![Complex::ZERO; n];
    let step = -2.0 * std::f64::consts::PI / n as f64;
    for k in 0..half {
        let a = packed[k];
        let b = packed[(half - k) % half].conj();
        let even = (a + b).scale(0.5);
        let odd = (a - b) * Complex::new(0.0, -0.5);
        let w = Complex::cis(step * k as f64);
        out[k] = even + w * odd;
        // Second half from conjugate symmetry of a real signal:
        // X[k + n/2] = E[k] - w^k O[k].
        out[k + half] = even - w * odd;
    }
    out
}

/// Inverse of [`fft_real`]: recovers the real signal from a full spectrum.
///
/// Only the real parts of the inverse transform are returned; for a spectrum
/// with exact conjugate symmetry the imaginary parts are zero.
///
/// # Panics
///
/// Panics if the length is not a power of two.
#[must_use]
pub fn ifft_real(spectrum: &[Complex]) -> Vec<f64> {
    let n = spectrum.len();
    assert!(
        n.is_power_of_two(),
        "ifft_real requires a power-of-two length"
    );
    let plan = Radix2Fft::new(n);
    let time = plan.inverse_vec(spectrum.to_vec());
    time.into_iter().map(|z| z.re).collect()
}

/// Converts a real slice to a zero-imaginary complex buffer of length `len`,
/// zero-padding on the right.
///
/// # Panics
///
/// Panics if `len < signal.len()`.
#[must_use]
pub fn pad_to_complex(signal: &[f64], len: usize) -> Vec<Complex> {
    assert!(len >= signal.len(), "padded length shorter than signal");
    let mut out = Vec::with_capacity(len);
    out.extend(signal.iter().copied().map(Complex::from_real));
    out.resize(len, Complex::ZERO);
    out
}

#[cfg(test)]
mod tests {
    use super::{fft_real, ifft_real, pad_to_complex};
    use crate::complex::Complex;
    use crate::fft::Radix2Fft;

    #[test]
    fn matches_complex_fft() {
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.31).sin() + 0.2 * i as f64)
            .collect();
        let via_real = fft_real(&x);
        let via_complex = Radix2Fft::new(n).forward_vec(pad_to_complex(&x, n));
        for (a, b) in via_real.iter().zip(via_complex.iter()) {
            assert!((a.re - b.re).abs() < 1e-8, "{a:?} vs {b:?}");
            assert!((a.im - b.im).abs() < 1e-8, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn conjugate_symmetry() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let spec = fft_real(&x);
        let n = spec.len();
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip() {
        let x: Vec<f64> = (0..128)
            .map(|i| (i as f64).cos() * (i as f64 / 10.0))
            .collect();
        let back = ifft_real(&fft_real(&x));
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn pad_to_complex_pads_with_zeros() {
        let padded = pad_to_complex(&[1.0, 2.0], 8);
        assert_eq!(padded.len(), 8);
        assert_eq!(padded[0], Complex::from_real(1.0));
        assert_eq!(padded[1], Complex::from_real(2.0));
        for z in &padded[2..] {
            assert_eq!(*z, Complex::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "shorter than signal")]
    fn pad_rejects_truncation() {
        let _ = pad_to_complex(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn smallest_size() {
        let spec = fft_real(&[3.0, -1.0]);
        assert!((spec[0].re - 2.0).abs() < 1e-12);
        assert!((spec[1].re - 4.0).abs() < 1e-12);
    }
}
