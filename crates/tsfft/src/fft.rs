//! Iterative radix-2 Cooley–Tukey FFT with precomputed twiddle factors.
//!
//! The plan ([`Radix2Fft`]) is constructed once per size and reused across
//! transforms, mirroring the planner style of FFTW that the paper's MATLAB
//! implementation relies on. Transform cost is O(n log n); plan construction
//! is O(n).

use crate::complex::Complex;

/// A reusable plan for power-of-two FFTs of a fixed size.
///
/// # Example
///
/// ```
/// use tsfft::{Complex, Radix2Fft};
///
/// let plan = Radix2Fft::new(8);
/// let signal: Vec<Complex> = (0..8).map(|i| Complex::from_real(i as f64)).collect();
/// let back = plan.inverse_vec(plan.forward_vec(signal.clone()));
/// for (a, b) in signal.iter().zip(back.iter()) {
///     assert!((a.re - b.re).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Radix2Fft {
    n: usize,
    /// Forward twiddles: `w[k] = e^{-2πik/n}` for `k in 0..n/2`.
    twiddles: Vec<Complex>,
    /// Index pairs `(i, j)` with `i < j = bitrev(i)`: the swaps that
    /// realize the bit-reversal permutation, precomputed so the per-call
    /// pass is branch-free.
    swaps: Vec<(u32, u32)>,
}

impl Radix2Fft {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "radix-2 FFT size must be a power of two, got {n}"
        );
        let half = n / 2;
        let mut twiddles = Vec::with_capacity(half.max(1));
        let step = -2.0 * std::f64::consts::PI / n as f64;
        for k in 0..half.max(1) {
            twiddles.push(Complex::cis(step * k as f64));
        }
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        if bits > 0 {
            for i in 0..n as u32 {
                let j = i.reverse_bits() >> (32 - bits);
                if i < j {
                    swaps.push((i, j));
                }
            }
        }
        Radix2Fft { n, twiddles, swaps }
    }

    /// The transform size this plan was built for.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the plan size is zero (never, by construction).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        if self.n <= 1 {
            return;
        }
        self.permute(data);
        self.butterflies(data);
    }

    /// In-place inverse FFT, including the `1/n` normalization.
    ///
    /// Uses the conjugation identity `ifft(x) = conj(fft(conj(x))) / n`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        if self.n <= 1 {
            return;
        }
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.permute(data);
        self.butterflies(data);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj().scale(scale);
        }
    }

    /// Convenience: forward transform of an owned buffer.
    #[must_use]
    pub fn forward_vec(&self, mut data: Vec<Complex>) -> Vec<Complex> {
        self.forward(&mut data);
        data
    }

    /// Convenience: inverse transform of an owned buffer.
    #[must_use]
    pub fn inverse_vec(&self, mut data: Vec<Complex>) -> Vec<Complex> {
        self.inverse(&mut data);
        data
    }

    fn permute(&self, data: &mut [Complex]) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
    }

    fn butterflies(&self, data: &mut [Complex]) {
        let n = self.n;
        // First stage: every twiddle is unity, so it reduces to a plain
        // add/sub sweep over adjacent pairs.
        for pair in data.chunks_exact_mut(2) {
            let (a, b) = (pair[0], pair[1]);
            pair[0] = a + b;
            pair[1] = a - b;
        }
        let mut len = 4;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                // k = 0 carries the unity twiddle; skip the multiply. The
                // rest zips slices so the loop carries no bounds checks.
                let (a, b) = (lo[0], hi[0]);
                lo[0] = a + b;
                hi[0] = a - b;
                for k in 1..half {
                    let w = self.twiddles[k * stride];
                    let a = lo[k];
                    let b = hi[k] * w;
                    lo[k] = a + b;
                    hi[k] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Radix2Fft;
    use crate::complex::Complex;
    use crate::dft::{dft, idft};

    fn reals(v: &[f64]) -> Vec<Complex> {
        v.iter().copied().map(Complex::from_real).collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Radix2Fft::new(6);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = Radix2Fft::new(1);
        let mut x = [Complex::new(2.5, -1.0)];
        plan.forward(&mut x);
        assert_eq!(x[0], Complex::new(2.5, -1.0));
        plan.inverse(&mut x);
        assert_eq!(x[0], Complex::new(2.5, -1.0));
    }

    #[test]
    fn size_two() {
        let plan = Radix2Fft::new(2);
        let mut x = reals(&[1.0, 2.0]);
        plan.forward(&mut x);
        assert!((x[0].re - 3.0).abs() < 1e-12);
        assert!((x[1].re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for &n in &[2usize, 4, 8, 16, 64, 256] {
            let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let plan = Radix2Fft::new(n);
            let fast = plan.forward_vec(x.clone());
            let slow = dft(&x);
            assert_close(&fast, &slow, 1e-8 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_idft() {
        let x = reals(&[1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0]);
        let plan = Radix2Fft::new(8);
        let fast = plan.inverse_vec(x.clone());
        let slow = idft(&x);
        assert_close(&fast, &slow, 1e-10);
    }

    #[test]
    fn roundtrip_large() {
        let n = 4096;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let plan = Radix2Fft::new(n);
        let back = plan.inverse_vec(plan.forward_vec(x.clone()));
        assert_close(&back, &x, 1e-9);
    }

    #[test]
    fn parseval_holds() {
        let n = 512;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real(((i * i) % 97) as f64 / 97.0 - 0.5))
            .collect();
        let plan = Radix2Fft::new(n);
        let spec = plan.forward_vec(x.clone());
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((te - fe).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "match plan size")]
    fn rejects_wrong_buffer_length() {
        let plan = Radix2Fft::new(8);
        let mut x = reals(&[1.0; 4]);
        plan.forward(&mut x);
    }

    #[test]
    fn plan_is_reusable() {
        let plan = Radix2Fft::new(16);
        for trial in 0..4 {
            let x: Vec<Complex> = (0..16)
                .map(|i| Complex::from_real((i + trial) as f64))
                .collect();
            let back = plan.inverse_vec(plan.forward_vec(x.clone()));
            assert_close(&back, &x, 1e-10);
        }
    }
}
