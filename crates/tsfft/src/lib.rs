//! Fast Fourier transforms and FFT-based cross-correlation.
//!
//! This crate is the signal-processing substrate of the k-Shape reproduction
//! (Paparrizos & Gravano, SIGMOD 2015). It provides, with no external
//! dependencies:
//!
//! * [`Complex`] — a minimal double-precision complex number,
//! * [`Radix2Fft`] — an iterative, in-place radix-2 Cooley–Tukey FFT with a
//!   precomputed twiddle table (power-of-two sizes),
//! * [`BluesteinFft`] — an arbitrary-size FFT via the chirp-z transform,
//!   used by the `SBD-NoPow2` ablation of Table 2,
//! * [`real`] — a real-input FFT that halves the complex transform size,
//! * [`RealFftPlan`] — a *planned* real-input FFT over packed half-spectra,
//!   the per-pair kernel behind the batched SBD sweep in `kshape`,
//! * [`correlate`] — full cross-correlation sequences (Equation 6 of the
//!   paper) computed either naively in O(m²) or via the convolution theorem
//!   in O(m log m) (Equation 12),
//! * [`unequal`] — cross-correlation of different-length sequences (the
//!   paper's footnote 3).
//!
//! # Example
//!
//! ```
//! use tsfft::correlate::{cross_correlate_fft, cross_correlate_naive};
//!
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let y = [4.0, 3.0, 2.0, 1.0];
//! let fast = cross_correlate_fft(&x, &y);
//! let slow = cross_correlate_naive(&x, &y);
//! assert_eq!(fast.len(), 2 * x.len() - 1);
//! for (a, b) in fast.iter().zip(slow.iter()) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

#![warn(missing_docs)]

pub mod bluestein;
pub mod complex;
pub mod correlate;
pub mod dft;
pub mod fft;
pub mod real;
pub mod real_plan;
pub mod unequal;

pub use bluestein::BluesteinFft;
pub use complex::Complex;
pub use fft::Radix2Fft;
pub use real_plan::RealFftPlan;

/// Returns the smallest power of two that is greater than or equal to `n`.
///
/// `next_pow2(0)` is defined as 1 so the result is always a valid FFT size.
///
/// # Panics
///
/// Panics if the result would overflow `usize`.
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    n.max(1)
        .checked_next_power_of_two()
        .expect("FFT size overflow")
}

#[cfg(test)]
mod tests {
    use super::next_pow2;

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn next_pow2_matches_paper_padding() {
        // The paper pads to the next power of two after 2m - 1.
        let m = 1024;
        assert_eq!(next_pow2(2 * m - 1), 2048);
        let m = 60;
        assert_eq!(next_pow2(2 * m - 1), 128);
    }
}
