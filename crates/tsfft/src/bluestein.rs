//! Arbitrary-size FFT via Bluestein's chirp-z transform.
//!
//! The paper's `SBD-NoPow2` ablation (Table 2) computes the FFT at exactly
//! length `2m − 1` instead of padding to the next power of two. MATLAB/FFTW
//! support arbitrary sizes natively; we reproduce that capability with the
//! Bluestein algorithm, which reduces an arbitrary-size DFT to a circular
//! convolution of power-of-two size.

use crate::complex::Complex;
use crate::fft::Radix2Fft;
use crate::next_pow2;

/// A reusable plan for DFTs of arbitrary (not necessarily power-of-two) size.
#[derive(Debug, Clone)]
pub struct BluesteinFft {
    n: usize,
    /// Chirp factors `w[k] = e^{-iπ k² / n}`.
    chirp: Vec<Complex>,
    /// Pre-transformed conjugate-chirp filter of length `m`.
    filter_spec: Vec<Complex>,
    inner: Radix2Fft,
    m: usize,
}

impl BluesteinFft {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Bluestein FFT size must be positive");
        let m = next_pow2(2 * n - 1);
        let inner = Radix2Fft::new(m);

        // chirp[k] = e^{-iπ k² / n}; compute k² mod 2n to keep angles small.
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n {
            let k2 = (k * k) % (2 * n);
            chirp.push(Complex::cis(-std::f64::consts::PI * k2 as f64 / n as f64));
        }

        // The convolution filter is conj(chirp) wrapped circularly so that
        // index j and index m - j both hold b[j] for j in 1..n.
        let mut filter = vec![Complex::ZERO; m];
        for k in 0..n {
            let b = chirp[k].conj();
            filter[k] = b;
            if k > 0 {
                filter[m - k] = b;
            }
        }
        let filter_spec = inner.forward_vec(filter);

        BluesteinFft {
            n,
            chirp,
            filter_spec,
            inner,
            m,
        }
    }

    /// The transform size this plan was built for.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the plan size is zero (never, by construction).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT of `data` (length `n`), returning a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    #[must_use]
    pub fn forward(&self, data: &[Complex]) -> Vec<Complex> {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        let mut a = vec![Complex::ZERO; self.m];
        for k in 0..self.n {
            a[k] = data[k] * self.chirp[k];
        }
        self.inner.forward(&mut a);
        for (z, f) in a.iter_mut().zip(self.filter_spec.iter()) {
            *z *= *f;
        }
        self.inner.inverse(&mut a);
        (0..self.n).map(|k| a[k] * self.chirp[k]).collect()
    }

    /// Inverse DFT of `data` (length `n`), including `1/n` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    #[must_use]
    pub fn inverse(&self, data: &[Complex]) -> Vec<Complex> {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        let conj: Vec<Complex> = data.iter().map(|z| z.conj()).collect();
        let spec = self.forward(&conj);
        let scale = 1.0 / self.n as f64;
        spec.into_iter().map(|z| z.conj().scale(scale)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::BluesteinFft;
    use crate::complex::Complex;
    use crate::dft::dft;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_size() {
        let _ = BluesteinFft::new(0);
    }

    #[test]
    fn matches_naive_dft_on_awkward_sizes() {
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        // Primes, prime powers, highly composite, and 2m-1 style sizes.
        for &n in &[1usize, 2, 3, 5, 7, 9, 12, 17, 31, 60, 119, 127, 255] {
            let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let plan = BluesteinFft::new(n);
            let fast = plan.forward(&x);
            let slow = dft(&x);
            assert_close(&fast, &slow, 1e-7 * (n.max(8)) as f64);
        }
    }

    #[test]
    fn roundtrip_arbitrary_size() {
        for &n in &[3usize, 11, 23, 100, 121] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            let plan = BluesteinFft::new(n);
            let back = plan.inverse(&plan.forward(&x));
            assert_close(&back, &x, 1e-8);
        }
    }

    #[test]
    fn agrees_with_radix2_on_power_of_two() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64 * 0.2).sin()))
            .collect();
        let blue = BluesteinFft::new(n).forward(&x);
        let rad = crate::fft::Radix2Fft::new(n).forward_vec(x);
        assert_close(&blue, &rad, 1e-8);
    }

    #[test]
    fn dc_component_is_sum() {
        let n = 13;
        let x: Vec<Complex> = (0..n).map(|i| Complex::from_real(i as f64)).collect();
        let spec = BluesteinFft::new(n).forward(&x);
        let sum: f64 = (0..n).map(|i| i as f64).sum();
        assert!((spec[0].re - sum).abs() < 1e-8);
        assert!(spec[0].im.abs() < 1e-8);
    }
}
