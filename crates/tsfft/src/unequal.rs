//! Cross-correlation of sequences of *different* lengths.
//!
//! The paper computes SBD on equal-length sequences "for simplicity" but
//! notes (footnote 3) that "cross-correlation can be computed on sequences
//! of different length". For `|x| = nx` and `|y| = ny` the full sequence
//! covers lags `k ∈ [−(ny−1), nx−1]` (`nx + ny − 1` values):
//!
//! ```text
//! R_k(x, y) = Σ_l x[l + k] · y[l]   over all l with both indices valid
//! ```

use crate::next_pow2;
use crate::real_plan::RealFftPlan;

/// Direct O(nx·ny) cross-correlation of unequal-length sequences.
///
/// Returns `nx + ny − 1` values ordered from lag `−(ny−1)` to `nx−1`;
/// empty if either input is empty.
#[must_use]
pub fn cross_correlate_unequal_naive(x: &[f64], y: &[f64]) -> Vec<f64> {
    let (nx, ny) = (x.len(), y.len());
    if nx == 0 || ny == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(nx + ny - 1);
    for k in -(ny as isize - 1)..nx as isize {
        let mut acc = 0.0;
        for (l, &yv) in y.iter().enumerate() {
            let xi = l as isize + k;
            if (0..nx as isize).contains(&xi) {
                acc += x[xi as usize] * yv;
            }
        }
        out.push(acc);
    }
    out
}

/// FFT-based cross-correlation of unequal-length sequences, padded to the
/// next power of two after `nx + ny − 1`.
#[must_use]
pub fn cross_correlate_unequal_fft(x: &[f64], y: &[f64]) -> Vec<f64> {
    let (nx, ny) = (x.len(), y.len());
    if nx == 0 || ny == 0 {
        return Vec::new();
    }
    if nx == 1 && ny == 1 {
        return vec![x[0] * y[0]];
    }
    let n = next_pow2(nx + ny - 1);
    let plan = RealFftPlan::new(n);
    let (mut c, mut scratch) = (vec![0.0; n], Vec::new());
    plan.correlate_spectra_into(&plan.rfft(x), &plan.rfft(y), &mut c, &mut scratch);
    unwrap(&c, nx, ny, n)
}

/// Reorders the circular buffer into lag order `−(ny−1)..=(nx−1)`.
fn unwrap(c: &[f64], nx: usize, ny: usize, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(nx + ny - 1);
    out.extend((1..ny).rev().map(|k| c[n - k]));
    out.extend(&c[..nx]);
    out
}

#[cfg(test)]
mod tests {
    use super::{cross_correlate_unequal_fft, cross_correlate_unequal_naive};
    use crate::correlate::cross_correlate_naive;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn agrees_with_equal_length_path() {
        let x = [1.0, -2.0, 3.0, 0.5, 4.0];
        let y = [0.25, 4.0, -1.0, 2.0, 1.0];
        let equal = cross_correlate_naive(&x, &y);
        let unequal = cross_correlate_unequal_naive(&x, &y);
        assert_close(&equal, &unequal, 1e-12);
    }

    #[test]
    fn fft_matches_naive_on_unequal_lengths() {
        let mut state = 4u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for &(nx, ny) in &[(3usize, 7usize), (7, 3), (1, 5), (16, 9), (33, 64)] {
            let x: Vec<f64> = (0..nx).map(|_| next()).collect();
            let y: Vec<f64> = (0..ny).map(|_| next()).collect();
            let fast = cross_correlate_unequal_fft(&x, &y);
            let slow = cross_correlate_unequal_naive(&x, &y);
            assert_eq!(fast.len(), nx + ny - 1);
            assert_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn hand_computed_case() {
        // x = [1, 2, 3], y = [4, 5]: lags -1..=2.
        // R_{-1} = x[0]*y[1] = 5
        // R_0    = 1*4 + 2*5 = 14
        // R_1    = 2*4 + 3*5 = 23
        // R_2    = 3*4 = 12
        let cc = cross_correlate_unequal_naive(&[1.0, 2.0, 3.0], &[4.0, 5.0]);
        assert_close(&cc, &[5.0, 14.0, 23.0, 12.0], 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(cross_correlate_unequal_naive(&[], &[1.0]).is_empty());
        assert!(cross_correlate_unequal_fft(&[1.0], &[]).is_empty());
    }

    #[test]
    fn sub_sequence_peak_locates_the_match() {
        // y is a window of x starting at offset 6: the peak must sit at
        // lag +6.
        let x: Vec<f64> = (0..32)
            .map(|i| (-((i as f64 - 9.0) / 2.0).powi(2)).exp())
            .collect();
        let y = x[6..14].to_vec();
        let cc = cross_correlate_unequal_fft(&x, &y);
        let (arg, _) = cc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let lag = arg as isize - (y.len() as isize - 1);
        assert_eq!(lag, 6);
    }
}
