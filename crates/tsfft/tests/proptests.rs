//! Property-based tests for the FFT substrate (tscheck harness).

use tscheck::Gen;
use tsfft::complex::Complex;
use tsfft::correlate::{cross_correlate_fft, cross_correlate_naive};
use tsfft::fft::Radix2Fft;
use tsfft::next_pow2;
use tsfft::real_plan::RealFftPlan;

fn finite_signal(g: &mut Gen, max_len: usize) -> Vec<f64> {
    g.vec_f64(1..=max_len, -100.0..100.0)
}

fn same_len_pair(g: &mut Gen, max_len: usize) -> (Vec<f64>, Vec<f64>) {
    g.pair_f64(1..=max_len, -100.0..100.0)
}

tscheck::props! {
    #[cases(64)]
    fn fft_roundtrip_recovers_signal(g) {
        let sig = finite_signal(g, 64);
        let n = next_pow2(sig.len());
        let mut buf: Vec<Complex> = sig.iter().copied().map(Complex::from_real).collect();
        buf.resize(n, Complex::ZERO);
        let plan = Radix2Fft::new(n);
        let back = plan.inverse_vec(plan.forward_vec(buf.clone()));
        for (a, b) in buf.iter().zip(back.iter()) {
            assert!((a.re - b.re).abs() < 1e-6);
            assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[cases(64)]
    fn parseval_energy_conservation(g) {
        let sig = finite_signal(g, 64);
        let n = next_pow2(sig.len());
        let mut buf: Vec<Complex> = sig.iter().copied().map(Complex::from_real).collect();
        buf.resize(n, Complex::ZERO);
        let spec = Radix2Fft::new(n).forward_vec(buf.clone());
        let te: f64 = buf.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        let scale = te.abs().max(1.0);
        assert!((te - fe).abs() / scale < 1e-9);
    }

    #[cases(64)]
    fn fft_correlation_matches_naive(g) {
        let (x, y) = same_len_pair(g, 48);
        let fast = cross_correlate_fft(&x, &y);
        let slow = cross_correlate_naive(&x, &y);
        assert_eq!(fast.len(), 2 * x.len() - 1);
        let scale: f64 = slow.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() / scale < 1e-9);
        }
    }

    #[cases(64)]
    fn correlation_peak_bounded_by_cauchy_schwarz(g) {
        let (x, y) = same_len_pair(g, 48);
        let cc = cross_correlate_naive(&x, &y);
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        for &c in &cc {
            assert!(c.abs() <= nx * ny + 1e-7 * (1.0 + nx * ny));
        }
    }

    #[cases(64)]
    fn autocorrelation_peaks_at_zero_lag(g) {
        let x = finite_signal(g, 48);
        let cc = cross_correlate_naive(&x, &x);
        let mid = x.len() - 1;
        for &c in &cc {
            assert!(c <= cc[mid] + 1e-9 * (1.0 + cc[mid].abs()));
        }
    }

    #[cases(64)]
    fn rfft_roundtrip_recovers_signal_power_of_two(g) {
        // Exact power-of-two lengths: the plan size equals the signal
        // length, no padding involved.
        let exp = g.usize_in(1..8);
        let n = 1usize << exp;
        let sig = g.vec_f64(n..=n, -100.0..100.0);
        let plan = RealFftPlan::new(n);
        let back = plan.irfft(&plan.rfft(&sig));
        assert_eq!(back.len(), n);
        let scale: f64 = sig.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (i, (a, b)) in sig.iter().zip(back.iter()).enumerate() {
            assert!((a - b).abs() / scale < 1e-10, "n={n} sample {i}: {a} vs {b}");
        }
    }

    #[cases(64)]
    fn rfft_roundtrip_recovers_padded_arbitrary_length(g) {
        // Arbitrary lengths zero-padded into the next power-of-two plan —
        // the correlation pipeline's padding regime.
        let sig = finite_signal(g, 100);
        let n = next_pow2(sig.len()).max(2);
        let plan = RealFftPlan::new(n);
        let back = plan.irfft(&plan.rfft(&sig));
        let scale: f64 = sig.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (i, b) in back.iter().enumerate() {
            let a = sig.get(i).copied().unwrap_or(0.0);
            assert!((a - b).abs() / scale < 1e-10, "n={n} sample {i}: {a} vs {b}");
        }
    }

    #[cases(64)]
    fn rfft_agrees_with_complex_fft_on_half_spectrum(g) {
        let sig = finite_signal(g, 100);
        let n = next_pow2(sig.len()).max(2);
        let packed = RealFftPlan::new(n).rfft(&sig);
        assert_eq!(packed.len(), n / 2 + 1);
        let mut buf: Vec<Complex> = sig.iter().copied().map(Complex::from_real).collect();
        buf.resize(n, Complex::ZERO);
        let full = Radix2Fft::new(n).forward_vec(buf);
        let scale: f64 = full.iter().map(|z| z.re.abs().max(z.im.abs())).fold(1.0, f64::max);
        for (k, (a, b)) in packed.iter().zip(full.iter()).enumerate() {
            assert!(
                (a.re - b.re).abs() / scale < 1e-10 && (a.im - b.im).abs() / scale < 1e-10,
                "n={n} bin {k}: {a:?} vs {b:?}"
            );
        }
    }

    #[cases(64)]
    fn spectra_correlation_matches_naive(g) {
        // The fused conjugate-multiply + half-size inverse kernel agrees
        // with direct O(m^2) correlation for any same-length pair.
        let (x, y) = same_len_pair(g, 48);
        let n = next_pow2(2 * x.len() - 1).max(2);
        let plan = RealFftPlan::new(n);
        let (mut circ, mut scratch) = (vec![0.0; n], Vec::new());
        plan.correlate_spectra_into(&plan.rfft(&x), &plan.rfft(&y), &mut circ, &mut scratch);
        let slow = cross_correlate_naive(&x, &y);
        let scale: f64 = slow.iter().map(|v| v.abs()).fold(1.0, f64::max);
        // Unwrap circular lags: negative lags live at the tail.
        let m = x.len();
        for (i, &expect) in slow.iter().enumerate() {
            let lag = i as isize - (m as isize - 1);
            let got = if lag < 0 { circ[n - lag.unsigned_abs()] } else { circ[lag as usize] };
            assert!((got - expect).abs() / scale < 1e-9, "lag {lag}: {got} vs {expect}");
        }
    }
}
