//! Property-based tests for the FFT substrate.

use proptest::prelude::*;
use tsfft::complex::Complex;
use tsfft::correlate::{cross_correlate_fft, cross_correlate_naive};
use tsfft::fft::Radix2Fft;
use tsfft::next_pow2;

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_recovers_signal(sig in finite_signal(64)) {
        let n = next_pow2(sig.len());
        let mut buf: Vec<Complex> = sig.iter().copied().map(Complex::from_real).collect();
        buf.resize(n, Complex::ZERO);
        let plan = Radix2Fft::new(n);
        let back = plan.inverse_vec(plan.forward_vec(buf.clone()));
        for (a, b) in buf.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_energy_conservation(sig in finite_signal(64)) {
        let n = next_pow2(sig.len());
        let mut buf: Vec<Complex> = sig.iter().copied().map(Complex::from_real).collect();
        buf.resize(n, Complex::ZERO);
        let spec = Radix2Fft::new(n).forward_vec(buf.clone());
        let te: f64 = buf.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        let scale = te.abs().max(1.0);
        prop_assert!((te - fe).abs() / scale < 1e-9);
    }

    #[test]
    fn fft_correlation_matches_naive(
        (x, y) in finite_signal(48).prop_flat_map(|x| {
            let m = x.len();
            (Just(x), prop::collection::vec(-100.0f64..100.0, m..=m))
        })
    ) {
        let fast = cross_correlate_fft(&x, &y);
        let slow = cross_correlate_naive(&x, &y);
        prop_assert_eq!(fast.len(), 2 * x.len() - 1);
        let scale: f64 = slow.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a - b).abs() / scale < 1e-9);
        }
    }

    #[test]
    fn correlation_peak_bounded_by_cauchy_schwarz(
        (x, y) in finite_signal(48).prop_flat_map(|x| {
            let m = x.len();
            (Just(x), prop::collection::vec(-100.0f64..100.0, m..=m))
        })
    ) {
        let cc = cross_correlate_naive(&x, &y);
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        for &c in &cc {
            prop_assert!(c.abs() <= nx * ny + 1e-7 * (1.0 + nx * ny));
        }
    }

    #[test]
    fn autocorrelation_peaks_at_zero_lag(x in finite_signal(48)) {
        let cc = cross_correlate_naive(&x, &x);
        let mid = x.len() - 1;
        for &c in &cc {
            prop_assert!(c <= cc[mid] + 1e-9 * (1.0 + cc[mid].abs()));
        }
    }
}
