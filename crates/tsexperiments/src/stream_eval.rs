//! Streaming-drift evaluation: a synthetic unbounded feed whose cluster
//! shapes rotate mid-stream, with a configurable fraction of arrivals
//! corrupted by [`tsdata::corrupt::StreamFault`]s.
//!
//! The feed is *regenerable by arrival index*: every arrival derives its
//! RNG from `(seed, index)` alone, so a run killed at any point and
//! resumed from a [`CheckpointStore`] replays the identical suffix and
//! produces byte-identical labels — the property CI's SIGKILL→resume
//! protocol diffs (see the `stream_drift` binary).
//!
//! The report answers the acceptance questions directly: quarantine
//! leaks (an invalidating fault that was not quarantined — must be 0),
//! reseed count and drift-recovery latency in arrivals, and the
//! post-recovery Rand index of the stream labels against a fresh batch
//! k-Shape fit on the same clean window.

use kshape::{PushOutcome, StreamConfig, StreamKShape};
use tsdata::corrupt::{StreamFault, StreamFaultSchedule};
use tseval::rand_index;
use tsrand::{Rng, StdRng};

use crate::checkpoint::CheckpointStore;

/// Artifact name of the per-arrival label journal (written first).
pub const LABELS_ARTIFACT: &str = "stream_labels";
/// Artifact name of the engine checkpoint (written after the labels, so
/// a kill between the two writes leaves labels ahead of the engine —
/// resume truncates them back to the engine's arrival count).
pub const ENGINE_ARTIFACT: &str = "stream_engine";

/// Label-journal code for a quarantined arrival.
pub const CODE_QUARANTINED: i64 = -1;
/// Label-journal code for an arrival buffered before bootstrap.
pub const CODE_BUFFERED: i64 = -2;
/// Flag OR-ed onto a label code when that arrival triggered a reseed.
pub const RESEED_FLAG: i64 = 1 << 32;

/// Scenario knobs for [`run_stream_drift`].
#[derive(Debug, Clone, Copy)]
pub struct StreamDriftConfig {
    /// Total arrivals in the feed.
    pub n: usize,
    /// Series length.
    pub m: usize,
    /// Number of clusters (and of ground-truth shape classes).
    pub k: usize,
    /// Arrival index at which every class swaps to a new shape.
    pub rotate_at: usize,
    /// Per-arrival corruption probability (over all `StreamFault`s).
    pub corrupt_p: f64,
    /// Base seed; each arrival re-derives its RNG from `(seed, index)`.
    pub seed: u64,
    /// Checkpoint cadence in arrivals (0 disables checkpointing even
    /// when the store is enabled).
    pub checkpoint_every: usize,
}

impl Default for StreamDriftConfig {
    fn default() -> Self {
        StreamDriftConfig {
            n: 10_000,
            m: 64,
            k: 3,
            rotate_at: 5_000,
            corrupt_p: 0.05,
            seed: 2015,
            checkpoint_every: 1_000,
        }
    }
}

/// What a drifting-feed run produced. Every field is deterministic in
/// `StreamDriftConfig` alone — no wall-clock values — so the report of a
/// killed-and-resumed run diffs byte-identical against an uninterrupted
/// one.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDriftReport {
    /// Total arrivals pushed.
    pub arrivals: u64,
    /// Arrivals accepted (assigned or buffered).
    pub accepted: u64,
    /// Arrivals quarantined with a typed reason.
    pub quarantined: u64,
    /// Invalidating faults that were **not** quarantined. Must be 0.
    pub quarantine_leaks: u64,
    /// Drift-triggered reseeds over the whole feed.
    pub reseeds: u64,
    /// Centroid refreshes from the streaming sufficient statistics.
    pub refreshes: u64,
    /// Non-finite values in the final centroids. Must be 0.
    pub nan_centroid_values: usize,
    /// Arrivals between the rotation and the first reseed after it
    /// (−1 when no reseed fired post-rotation).
    pub recovery_arrivals: i64,
    /// Rand index of the stream labels on the clean post-recovery
    /// window, against ground truth.
    pub stream_rand: f64,
    /// Rand index of a fresh batch k-Shape fit on the same window.
    pub batch_rand: f64,
    /// FNV-1a hash over the per-arrival label journal.
    pub labels_fnv: u64,
}

impl StreamDriftReport {
    /// Stable single-line JSON rendering (fixed key order, shortest
    /// round-trip floats) for CI diffing.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"arrivals\":{},\"accepted\":{},\"quarantined\":{},",
                "\"quarantine_leaks\":{},\"reseeds\":{},\"refreshes\":{},",
                "\"nan_centroid_values\":{},\"recovery_arrivals\":{},",
                "\"stream_rand\":{:?},\"batch_rand\":{:?},\"labels_fnv\":\"{:#018x}\"}}"
            ),
            self.arrivals,
            self.accepted,
            self.quarantined,
            self.quarantine_leaks,
            self.reseeds,
            self.refreshes,
            self.nan_centroid_values,
            self.recovery_arrivals,
            self.stream_rand,
            self.batch_rand,
            self.labels_fnv,
        )
    }
}

/// RNG for one arrival, derived from the base seed and the arrival index
/// only — the property that makes the feed replayable from any resume
/// point.
#[must_use]
pub fn arrival_rng(seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One clean arrival: class `class` is a noisy periodic shape drawn from
/// a waveform family (sine / square / sawtooth) at a class-specific
/// frequency. After rotation every class moves to the *next* family and
/// jumps `k` frequency steps, which changes the shape itself — SBD is
/// shift-invariant, so a mere phase rotation would be invisible to the
/// drift detector, but a family/frequency change is not.
#[must_use]
pub fn class_series(class: usize, k: usize, rotated: bool, m: usize, rng: &mut StdRng) -> Vec<f64> {
    let family = if rotated { class + 1 } else { class };
    let freq = (2 + class + if rotated { k } else { 0 }) as f64;
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    (0..m)
        .map(|t| {
            let x = std::f64::consts::TAU * freq * t as f64 / m as f64 + phase;
            let base = match family % 3 {
                0 => x.sin(),
                1 => {
                    if x.sin() >= 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                _ => 2.0 * (x / std::f64::consts::TAU).fract() - 1.0,
            };
            base + 0.1 * rng.gen_range(-1.0..1.0)
        })
        .collect()
}

/// One generated arrival: ground-truth class, the (possibly corrupted)
/// samples, and the fault that was applied, if any.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Ground-truth shape class.
    pub class: usize,
    /// The samples handed to the engine.
    pub series: Vec<f64>,
    /// The corruption applied, when the schedule fired.
    pub fault: Option<StreamFault>,
}

/// Regenerates arrival `index` of the configured feed.
#[must_use]
pub fn generate_arrival(cfg: &StreamDriftConfig, index: u64) -> Arrival {
    let mut rng = arrival_rng(cfg.seed, index);
    let class = rng.gen_range(0..cfg.k);
    let rotated = (index as usize) >= cfg.rotate_at;
    let mut series = class_series(class, cfg.k, rotated, cfg.m, &mut rng);
    let schedule = StreamFaultSchedule::all(cfg.corrupt_p);
    let fault = schedule.apply(&mut series, &mut rng);
    Arrival {
        class,
        series,
        fault,
    }
}

/// FNV-1a over the label journal (little-endian i64 codes).
#[must_use]
pub fn labels_fnv(labels: &[i64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for code in labels {
        for byte in code.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn labels_to_json(labels: &[i64]) -> String {
    let mut out = String::with_capacity(labels.len() * 3 + 2);
    out.push('[');
    for (i, code) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&code.to_string());
    }
    out.push(']');
    out
}

fn labels_from_json(text: &str) -> Option<Vec<i64>> {
    let inner = text.trim().strip_prefix('[')?.strip_suffix(']')?;
    if inner.trim().is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|tok| tok.trim().parse().ok())
        .collect()
}

/// The streaming engine configuration used by the drift scenario.
#[must_use]
pub fn stream_config(cfg: &StreamDriftConfig) -> StreamConfig {
    StreamConfig::new(cfg.k, cfg.m)
        .with_seed(cfg.seed)
        .with_warmup((8 * cfg.k).max(cfg.k + 1))
}

/// Runs the drifting-feed scenario, checkpointing through `store` when
/// enabled, and resuming from a prior checkpoint when one is present.
///
/// The label journal is written **before** the engine artifact at every
/// checkpoint, so a kill between the two leaves the journal ahead — on
/// resume it is truncated back to the engine's arrival count and the
/// suffix is regenerated, which makes the final journal independent of
/// where (or whether) the run was killed.
///
/// # Panics
///
/// Panics if the scenario configuration produces an invalid
/// [`StreamConfig`] (e.g. `k == 0`), or if a checkpoint write fails.
#[must_use]
pub fn run_stream_drift(cfg: &StreamDriftConfig, store: &CheckpointStore) -> StreamDriftReport {
    // Resume: engine first (the authoritative cursor), then the journal,
    // truncated to the engine's arrival count.
    let (resumed_engine, _) = store.load_named(ENGINE_ARTIFACT, StreamKShape::from_json);
    let (mut engine, mut labels) = match resumed_engine {
        Some(engine) => {
            let (journal, _) = store.load_named(LABELS_ARTIFACT, labels_from_json);
            let arrivals = engine.stats().arrivals as usize;
            match journal {
                Some(mut journal) if journal.len() >= arrivals => {
                    journal.truncate(arrivals);
                    (engine, journal)
                }
                // Journal missing or behind the engine: the checkpoint
                // pair is unusable — start fresh.
                _ => (
                    StreamKShape::new(stream_config(cfg)).expect("valid stream config"),
                    Vec::new(),
                ),
            }
        }
        None => (
            StreamKShape::new(stream_config(cfg)).expect("valid stream config"),
            Vec::new(),
        ),
    };

    let start = labels.len();
    for i in start..cfg.n {
        let arrival = generate_arrival(cfg, i as u64);
        let outcome = engine.push(&arrival.series);
        let code = match outcome {
            PushOutcome::Quarantined(_) => CODE_QUARANTINED,
            PushOutcome::Buffered { .. } => CODE_BUFFERED,
            PushOutcome::Bootstrapped { ref labels } => {
                *labels.last().expect("bootstrap labels non-empty") as i64
            }
            PushOutcome::Assigned(a) => {
                let mut code = a.label as i64;
                if a.reseeded {
                    code |= RESEED_FLAG;
                }
                code
            }
        };
        labels.push(code);
        if cfg.checkpoint_every > 0 && (i + 1) % cfg.checkpoint_every == 0 {
            store
                .store_named(LABELS_ARTIFACT, &labels_to_json(&labels))
                .expect("label journal write");
            store
                .store_named(ENGINE_ARTIFACT, &engine.to_json())
                .expect("engine checkpoint write");
        }
    }

    // Derived metrics come from a replay over the journal, never from
    // in-loop counters, so they are identical whether or not the run was
    // killed and resumed part-way.
    let mut quarantine_leaks = 0u64;
    let mut first_reseed_after_rotate: Option<usize> = None;
    let eval_from = cfg.rotate_at + cfg.n.saturating_sub(cfg.rotate_at) / 2;
    let mut eval_series: Vec<Vec<f64>> = Vec::new();
    let mut eval_truth: Vec<usize> = Vec::new();
    let mut eval_stream: Vec<usize> = Vec::new();
    for (i, &code) in labels.iter().enumerate() {
        let arrival = generate_arrival(cfg, i as u64);
        if arrival.fault.is_some_and(StreamFault::invalidates) && code != CODE_QUARANTINED {
            quarantine_leaks += 1;
        }
        if i >= cfg.rotate_at
            && code >= 0
            && code & RESEED_FLAG != 0
            && first_reseed_after_rotate.is_none()
        {
            first_reseed_after_rotate = Some(i);
        }
        if i >= eval_from && arrival.fault.is_none() && code >= 0 {
            eval_series.push(arrival.series);
            eval_truth.push(arrival.class);
            eval_stream.push((code & ((1 << 32) - 1)) as usize);
        }
    }

    // A feed cut short of the rotation (e.g. a killed run evaluated
    // before resume) has no post-recovery window to score.
    let (stream_rand, batch_rand) = if eval_series.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        let batch_config = kshape::KShapeConfig {
            k: cfg.k,
            max_iter: 30,
            seed: cfg.seed,
            ..Default::default()
        };
        let batch = kshape::multi::try_fit_best(&batch_config, &eval_series, 3)
            .expect("clean eval window fits");
        (
            rand_index(&eval_stream, &eval_truth),
            rand_index(&batch.labels, &eval_truth),
        )
    };

    let stats = engine.stats();
    let nan_centroid_values = engine
        .centroids()
        .iter()
        .flat_map(|c| c.iter())
        .filter(|v| !v.is_finite())
        .count();
    StreamDriftReport {
        arrivals: stats.arrivals,
        accepted: stats.accepted,
        quarantined: stats.quarantined,
        quarantine_leaks,
        reseeds: stats.reseeds,
        refreshes: stats.refreshes,
        nan_centroid_values,
        recovery_arrivals: first_reseed_after_rotate.map_or(-1, |i| (i - cfg.rotate_at) as i64),
        stream_rand,
        batch_rand,
        labels_fnv: labels_fnv(&labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StreamDriftConfig {
        StreamDriftConfig {
            n: 1_200,
            m: 32,
            k: 2,
            rotate_at: 600,
            corrupt_p: 0.05,
            seed: 9,
            checkpoint_every: 0,
        }
    }

    #[test]
    fn feed_is_regenerable_by_index() {
        let cfg = small();
        for i in [0u64, 17, 599, 600, 1_199] {
            let a = generate_arrival(&cfg, i);
            let b = generate_arrival(&cfg, i);
            assert_eq!(a.class, b.class);
            assert_eq!(a.series, b.series);
            assert_eq!(a.fault, b.fault);
        }
    }

    #[test]
    fn rotation_changes_the_shape_not_just_the_phase() {
        let cfg = small();
        let mut rng = arrival_rng(cfg.seed, 1);
        let before = class_series(0, cfg.k, false, cfg.m, &mut rng);
        let after = class_series(0, cfg.k, true, cfg.m, &mut rng);
        let d = kshape::sbd(&before, &after).dist;
        assert!(d > 0.2, "rotation must move the shape, SBD {d}");
    }

    #[test]
    fn small_drift_run_meets_the_acceptance_contract() {
        let report = run_stream_drift(&small(), &CheckpointStore::disabled());
        assert_eq!(report.arrivals, 1_200);
        assert_eq!(report.quarantine_leaks, 0, "invalidating fault leaked");
        assert_eq!(report.nan_centroid_values, 0);
        assert!(report.reseeds >= 1, "drift never triggered a reseed");
        assert!(report.recovery_arrivals >= 0, "no post-rotation reseed");
        assert!(
            report.stream_rand >= report.batch_rand - 0.05,
            "stream Rand {} not within 5% of batch {}",
            report.stream_rand,
            report.batch_rand,
        );
    }

    #[test]
    fn journal_roundtrips_and_hash_is_stable() {
        let labels = vec![3, CODE_QUARANTINED, CODE_BUFFERED, RESEED_FLAG | 1];
        let json = labels_to_json(&labels);
        assert_eq!(labels_from_json(&json), Some(labels.clone()));
        assert_eq!(labels_fnv(&labels), labels_fnv(&labels));
        assert_ne!(labels_fnv(&labels), labels_fnv(&labels[..3]));
    }
}
