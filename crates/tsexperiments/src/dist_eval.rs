//! Distance-measure evaluation machinery (Table 2, Figures 5, 6, 10, 11).
//!
//! For every dataset in the collection: run 1-NN classification over the
//! train/test split with each measure, record per-dataset accuracy and the
//! total CPU time, then summarize against the ED baseline with
//! win/tie/loss counts and the Wilcoxon signed-rank test — the exact
//! structure of Table 2.

use std::time::Instant;

use kshape::ncc::{ncc_max, NccVariant};
use kshape::sbd::{CorrMethod, Sbd};
use tsdata::dataset::SplitDataset;
use tsdata::normalize::optimal_scaling_coefficient;
use tsdist::dtw::Dtw;
use tsdist::nn::{one_nn_accuracy, one_nn_accuracy_lb};
use tsdist::tune::tune_window;
use tsdist::Distance;
use tseval::stats::wilcoxon_signed_rank;

/// Per-measure evaluation outcome across the collection.
#[derive(Debug, Clone)]
pub struct MeasureEval {
    /// Measure name as reported in Table 2.
    pub name: String,
    /// 1-NN accuracy per dataset, in collection order.
    pub accuracies: Vec<f64>,
    /// Total classification CPU seconds across the collection.
    pub seconds: f64,
}

impl MeasureEval {
    /// Mean accuracy across datasets ("Average Accuracy" column).
    #[must_use]
    pub fn mean_accuracy(&self) -> f64 {
        if self.accuracies.is_empty() {
            return 0.0;
        }
        self.accuracies.iter().sum::<f64>() / self.accuracies.len() as f64
    }
}

/// Win/tie/loss + significance summary of one measure against a baseline
/// (the `>`, `=`, `<`, "Better" columns of Table 2).
#[derive(Debug, Clone, Copy)]
pub struct BaselineComparison {
    /// Datasets where the measure beats the baseline.
    pub wins: usize,
    /// Exact ties.
    pub ties: usize,
    /// Losses.
    pub losses: usize,
    /// Wilcoxon two-sided p-value.
    pub p_value: f64,
    /// Significantly better than the baseline at 99% confidence.
    pub better: bool,
    /// Significantly worse at 99% confidence.
    pub worse: bool,
}

/// Compares per-dataset scores of `measure` against `baseline`.
///
/// # Panics
///
/// Panics if the score vectors differ in length.
#[must_use]
pub fn compare_to_baseline(measure: &[f64], baseline: &[f64]) -> BaselineComparison {
    assert_eq!(measure.len(), baseline.len(), "score vectors must align");
    let mut wins = 0;
    let mut ties = 0;
    let mut losses = 0;
    for (m, b) in measure.iter().zip(baseline.iter()) {
        if (m - b).abs() < 1e-12 {
            ties += 1;
        } else if m > b {
            wins += 1;
        } else {
            losses += 1;
        }
    }
    let w = wilcoxon_signed_rank(measure, baseline);
    let significant = w.significant(0.99);
    let mean_m: f64 = measure.iter().sum::<f64>();
    let mean_b: f64 = baseline.iter().sum::<f64>();
    BaselineComparison {
        wins,
        ties,
        losses,
        p_value: w.p_value,
        better: significant && mean_m > mean_b,
        worse: significant && mean_m < mean_b,
    }
}

/// Times the 1-NN sweep of one generic measure over the collection.
#[must_use]
pub fn eval_measure<D: Distance>(collection: &[SplitDataset], dist: &D) -> MeasureEval {
    let start = Instant::now();
    let accuracies = collection
        .iter()
        .map(|split| one_nn_accuracy(dist, &split.train, &split.test))
        .collect();
    MeasureEval {
        name: dist.name(),
        accuracies,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Times the LB_Keogh-cascaded cDTW sweep (the `*_LB` rows). `window_frac`
/// of `None` runs unconstrained DTW; `Some(f)` uses `f·m` per dataset.
#[must_use]
pub fn eval_cdtw_lb(
    collection: &[SplitDataset],
    window_frac: Option<f64>,
    name: &str,
) -> MeasureEval {
    let start = Instant::now();
    let accuracies = collection
        .iter()
        .map(|split| {
            let window =
                window_frac.map(|f| (f * split.train.series_len() as f64).round() as usize);
            one_nn_accuracy_lb(window, &split.train, &split.test).0
        })
        .collect();
    MeasureEval {
        name: name.into(),
        accuracies,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Per-dataset cDTW-opt: tunes the warping window by leave-one-out on the
/// training half (coarse 0–10% grid in 2% steps — the paper finds the
/// average optimum near 4.5%, well inside this range), then classifies.
///
/// Returns the evaluation plus the tuned windows (for reporting) and the
/// tuning-only seconds (kept separate from classification time, as the
/// paper's runtime column measures the classification work).
#[must_use]
pub fn eval_cdtw_opt(collection: &[SplitDataset], with_lb: bool) -> (MeasureEval, Vec<usize>, f64) {
    let mut windows = Vec::with_capacity(collection.len());
    let tune_start = Instant::now();
    for split in collection {
        let m = split.train.series_len();
        let candidates: Vec<usize> = (0..=5)
            .map(|step| (0.02 * step as f64 * m as f64).round() as usize)
            .collect();
        let (w, _) = tune_window(&split.train, &candidates);
        windows.push(w);
    }
    let tuning_seconds = tune_start.elapsed().as_secs_f64();

    let start = Instant::now();
    let accuracies: Vec<f64> = collection
        .iter()
        .zip(windows.iter())
        .map(|(split, &w)| {
            if with_lb {
                one_nn_accuracy_lb(Some(w), &split.train, &split.test).0
            } else {
                one_nn_accuracy(&Dtw::with_window(w), &split.train, &split.test)
            }
        })
        .collect();
    let eval = MeasureEval {
        name: if with_lb { "cDTW-opt_LB" } else { "cDTW-opt" }.into(),
        accuracies,
        seconds: start.elapsed().as_secs_f64(),
    };
    (eval, windows, tuning_seconds)
}

/// The full Table 2 sweep: every measure row, in the paper's order.
///
/// Returns `(rows, ed_index)` where `rows[ed_index]` is the ED baseline.
#[must_use]
pub fn table2_sweep(collection: &[SplitDataset]) -> (Vec<MeasureEval>, usize) {
    let mut rows = Vec::new();
    rows.push(eval_measure(collection, &tsdist::EuclideanDistance));
    let ed_index = 0;

    rows.push(eval_measure(collection, &Dtw::unconstrained()));
    rows.push(eval_cdtw_lb(collection, None, "DTW_LB"));

    let (opt, _windows, _tuning) = eval_cdtw_opt(collection, false);
    rows.push(opt);
    let (opt_lb, _, _) = eval_cdtw_opt(collection, true);
    rows.push(opt_lb);

    // cDTW-5 / cDTW-10 use fixed fractions per dataset.
    rows.push(eval_fraction_cdtw(collection, 0.05, "cDTW-5"));
    rows.push(eval_cdtw_lb(collection, Some(0.05), "cDTW-5_LB"));
    rows.push(eval_fraction_cdtw(collection, 0.10, "cDTW-10"));
    rows.push(eval_cdtw_lb(collection, Some(0.10), "cDTW-10_LB"));

    rows.push(eval_measure(
        collection,
        &Sbd::with_method(CorrMethod::Naive),
    ));
    rows.push(eval_measure(
        collection,
        &Sbd::with_method(CorrMethod::FftExact),
    ));
    rows.push(eval_measure(collection, &Sbd::new()));
    (rows, ed_index)
}

/// cDTW with a per-dataset window fraction (no lower bounding).
#[must_use]
pub fn eval_fraction_cdtw(collection: &[SplitDataset], frac: f64, name: &str) -> MeasureEval {
    let start = Instant::now();
    let accuracies = collection
        .iter()
        .map(|split| {
            let d = Dtw::with_window_fraction(frac, split.train.series_len());
            one_nn_accuracy(&d, &split.train, &split.test)
        })
        .collect();
    MeasureEval {
        name: name.into(),
        accuracies,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Cross-correlation-variant distance under a data normalization, for the
/// Appendix A comparison (Figures 10 and 11).
#[derive(Debug, Clone, Copy)]
pub struct NormalizedNcc {
    /// Which NCC normalization to use.
    pub variant: NccVariant,
    /// Which data normalization to apply pairwise.
    pub data_norm: DataNorm,
}

/// Data normalization modes of Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataNorm {
    /// Pairwise least-squares scaling of `y` toward `x`.
    OptimalScaling,
    /// Each series rescaled into `[0, 1]` (assumed done upstream).
    AsIs,
}

impl Distance for NormalizedNcc {
    fn name(&self) -> String {
        format!("{}-{:?}", self.variant.name(), self.data_norm)
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        let scaled;
        let y_eff: &[f64] = match self.data_norm {
            DataNorm::OptimalScaling => {
                let c = optimal_scaling_coefficient(x, y);
                scaled = y.iter().map(|v| c * v).collect::<Vec<f64>>();
                &scaled
            }
            DataNorm::AsIs => y,
        };
        if y_eff.iter().all(|&v| v == 0.0) || x.iter().all(|&v| v == 0.0) {
            return 1.0;
        }
        1.0 - ncc_max(x, y_eff, self.variant).0
    }
}

#[cfg(test)]
mod tests {
    use super::{compare_to_baseline, eval_measure, DataNorm, NormalizedNcc};
    use kshape::ncc::NccVariant;
    use tsdata::collection::{synthetic_collection, CollectionSpec};
    use tsdist::Distance;
    use tsdist::EuclideanDistance;

    #[test]
    fn comparison_counts() {
        let base = vec![0.5, 0.5, 0.5, 0.5];
        let m = vec![0.6, 0.5, 0.4, 0.7];
        let c = compare_to_baseline(&m, &base);
        assert_eq!((c.wins, c.ties, c.losses), (2, 1, 1));
        assert!(!c.better && !c.worse);
    }

    #[test]
    fn comparison_detects_dominance() {
        let base: Vec<f64> = (0..20).map(|i| 0.5 + 0.001 * i as f64).collect();
        let m: Vec<f64> = base.iter().map(|v| v + 0.05).collect();
        let c = compare_to_baseline(&m, &base);
        assert_eq!(c.wins, 20);
        assert!(c.better);
        assert!(!c.worse);
    }

    #[test]
    fn eval_measure_on_tiny_collection() {
        let collection = synthetic_collection(&CollectionSpec {
            seed: 3,
            size_factor: 0.34,
        });
        let eval = eval_measure(&collection[..2], &EuclideanDistance);
        assert_eq!(eval.accuracies.len(), 2);
        assert!(eval.mean_accuracy() > 0.0);
        assert!(eval.seconds >= 0.0);
    }

    #[test]
    fn normalized_ncc_distance_behaves() {
        let d = NormalizedNcc {
            variant: NccVariant::Coefficient,
            data_norm: DataNorm::OptimalScaling,
        };
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| 4.0 * v).collect();
        assert!(d.dist(&x, &y) < 1e-9);
        assert!(d.name().contains("NCCc"));
        // Zero sequence is maximally distant.
        assert_eq!(d.dist(&x, &vec![0.0; 32]), 1.0);
    }
}
