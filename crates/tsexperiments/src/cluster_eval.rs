//! Clustering evaluation machinery (Tables 3–4, Figures 7, 8, 9).
//!
//! Every method clusters the *fused* train+test half of each dataset with
//! `k` set to the true class count (the paper's protocol) and is scored
//! with the Rand index. Stochastic methods average over several random
//! restarts; hierarchical and PAM are deterministic and run once.

use std::time::Instant;

use kshape::sbd::Sbd;
use kshape::{KShape, KShapeConfig, KShapeOptions};
use tscluster::dba::{kdba_with, KDbaConfig, KDbaOptions};
use tscluster::hierarchical::{hierarchical_cluster_with, HierarchicalOptions, Linkage};
use tscluster::kmeans::{kmeans_with, KMeansConfig, KMeansOptions};
use tscluster::ksc::{ksc_with, KscConfig, KscOptions};
use tscluster::matrix::{DissimilarityMatrix, MatrixOptions};
use tscluster::pam::{pam_with, PamOptions};
use tscluster::spectral::{spectral_cluster_with, SpectralConfig, SpectralOptions};
use tsdata::dataset::SplitDataset;
use tsdist::dtw::Dtw;
use tsdist::Distance;
use tseval::rand_index::rand_index;
use tsobs::{Obs, Recorder};

use crate::checkpoint::{config_tag, CheckpointCell, CheckpointStore};
use crate::config::ExperimentConfig;
use crate::variants::kshape_dtw;

/// Distance choices shared by several method families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKind {
    /// Euclidean distance.
    Ed,
    /// Constrained DTW with a 5% Sakoe–Chiba window (the paper's choice
    /// for non-scalable methods; see Table 1's footnote).
    Cdtw5,
    /// Unconstrained DTW.
    Dtw,
    /// Shape-based distance.
    Sbd,
}

impl DistKind {
    /// Table label fragment.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DistKind::Ed => "ED",
            DistKind::Cdtw5 => "cDTW",
            DistKind::Dtw => "DTW",
            DistKind::Sbd => "SBD",
        }
    }

    fn make(self, series_len: usize) -> Box<dyn Distance> {
        match self {
            DistKind::Ed => Box::new(tsdist::EuclideanDistance),
            DistKind::Cdtw5 => Box::new(Dtw::with_window_fraction(0.05, series_len)),
            DistKind::Dtw => Box::new(Dtw::unconstrained()),
            DistKind::Sbd => Box::new(Sbd::new()),
        }
    }
}

/// Every clustering method of Tables 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// k-means with arithmetic-mean centroids and the given distance.
    KAvg(DistKind),
    /// The paper's k-Shape.
    KShape,
    /// k-Shape with DTW assignment (ablation row of Table 3).
    KShapeDtw,
    /// k-means with DTW + DBA centroids.
    KDba,
    /// K-Spectral Centroid clustering.
    Ksc,
    /// Partitioning Around Medoids with the given distance.
    Pam(DistKind),
    /// Agglomerative hierarchical clustering.
    Hierarchical(Linkage, DistKind),
    /// Normalized spectral clustering.
    Spectral(DistKind),
}

impl Method {
    /// Table label, matching the paper's naming.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Method::KAvg(d) => format!("k-AVG+{}", d.label()),
            Method::KShape => "k-Shape".into(),
            Method::KShapeDtw => "k-Shape+DTW".into(),
            Method::KDba => "k-DBA".into(),
            Method::Ksc => "KSC".into(),
            Method::Pam(d) => format!("PAM+{}", d.label()),
            Method::Hierarchical(l, d) => format!("{}+{}", l.short_name(), d.label()),
            Method::Spectral(d) => format!("S+{}", d.label()),
        }
    }

    /// Whether repeated runs differ (stochastic initialization).
    #[must_use]
    pub fn stochastic(self) -> bool {
        !matches!(self, Method::Pam(_) | Method::Hierarchical(_, _))
    }
}

/// Per-method evaluation outcome across the collection.
#[derive(Debug, Clone)]
pub struct MethodEval {
    /// Method label.
    pub name: String,
    /// Mean Rand index per dataset (averaged over restarts where
    /// stochastic).
    pub rand_indices: Vec<f64>,
    /// Total CPU seconds across the collection and restarts.
    pub seconds: f64,
}

impl MethodEval {
    /// Mean Rand index across datasets (the "Rand Index" column).
    #[must_use]
    pub fn mean_rand(&self) -> f64 {
        if self.rand_indices.is_empty() {
            return 0.0;
        }
        self.rand_indices.iter().sum::<f64>() / self.rand_indices.len() as f64
    }
}

/// Runs one method over the whole collection.
#[must_use]
pub fn evaluate_method(
    method: Method,
    collection: &[SplitDataset],
    cfg: &ExperimentConfig,
) -> MethodEval {
    evaluate_method_checkpointed(method, collection, cfg, &CheckpointStore::disabled())
}

/// [`evaluate_method`] with per-`(method, dataset)` checkpointing: cells
/// already present in `store` (same configuration tag) are reused
/// verbatim, missing ones are computed and persisted atomically right
/// after they finish — so a killed sweep resumes where it died and, on a
/// pinned seed, reproduces byte-identical Rand indices.
///
/// Checkpoint I/O failures are deliberately non-fatal (the sweep result
/// matters more than the cache); a failed write only costs a recompute
/// on the next resume.
#[must_use]
pub fn evaluate_method_checkpointed(
    method: Method,
    collection: &[SplitDataset],
    cfg: &ExperimentConfig,
    store: &CheckpointStore,
) -> MethodEval {
    evaluate_method_observed(method, collection, cfg, store, None)
}

/// [`evaluate_method_checkpointed`] with an optional telemetry recorder.
///
/// With a recorder attached, every `(method, dataset)` cell is wrapped
/// in a `cell.<method>.<dataset>` span (so per-cell wall time lands in
/// the event stream), checkpoint reuse shows up as `checkpoint.hits`,
/// persisted cells as `checkpoint.stores`, and the recorder is threaded
/// into every clustering run so algorithm-level iteration events carry
/// through. Disarmed (`recorder = None`) it is exactly
/// [`evaluate_method_checkpointed`].
#[must_use]
pub fn evaluate_method_observed(
    method: Method,
    collection: &[SplitDataset],
    cfg: &ExperimentConfig,
    store: &CheckpointStore,
    recorder: Option<&dyn Recorder>,
) -> MethodEval {
    let start = Instant::now();
    let runs = if method.stochastic() { cfg.runs } else { 1 };
    let tag = config_tag(cfg);
    let name = method.label();
    let obs = Obs::from_option(recorder);
    let rand_indices = collection
        .iter()
        .map(|split| {
            let cell_label = format!("cell.{}.{}", name, split.name());
            let cell_span = obs.span(&cell_label);
            if let (Some(cell), _) = store.load(&name, split.name(), &tag) {
                obs.counter("checkpoint.hits", 1);
                cell_span.end();
                return cell.rand_index;
            }
            let fused = split.fused();
            let k = split.n_classes().max(1).min(fused.n_series());
            let mut acc = 0.0;
            for r in 0..runs {
                let seed = cfg.seed.wrapping_add(r as u64).wrapping_mul(0x9E37_79B9);
                let labels = run_method_observed(method, &fused.series, k, cfg, seed, recorder);
                acc += rand_index(&labels, &fused.labels);
            }
            let ri = acc / runs as f64;
            let stored = store.store(&CheckpointCell {
                method: name.clone(),
                dataset: split.name().to_string(),
                config_tag: tag.clone(),
                rand_index: ri,
            });
            if store.is_enabled() && stored.is_ok() {
                obs.counter("checkpoint.stores", 1);
            }
            cell_span.end();
            ri
        })
        .collect();
    MethodEval {
        name,
        rand_indices,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Dispatches one clustering run and returns the labels.
#[must_use]
pub fn run_method(
    method: Method,
    series: &[Vec<f64>],
    k: usize,
    cfg: &ExperimentConfig,
    seed: u64,
) -> Vec<usize> {
    run_method_observed(method, series, k, cfg, seed, None)
}

/// [`run_method`] with an optional telemetry recorder threaded into the
/// underlying algorithm, so its spans, counters, and per-iteration
/// convergence events land in the caller's sink.
///
/// # Panics
///
/// Panics when a method rejects the input (empty, non-finite, bad `k`) —
/// the experiment harness validates its synthetic collections up front,
/// so a rejection here is a harness bug, not an operational error.
#[must_use]
pub fn run_method_observed(
    method: Method,
    series: &[Vec<f64>],
    k: usize,
    cfg: &ExperimentConfig,
    seed: u64,
    recorder: Option<&dyn Recorder>,
) -> Vec<usize> {
    let m = series.first().map_or(0, Vec::len);
    let matrix_for = |d: DistKind| {
        let dist = d.make(m);
        let mut mopts = MatrixOptions::default().with_threads(cfg.threads);
        mopts.recorder = recorder;
        DissimilarityMatrix::compute_with(series, dist.as_ref(), &mopts)
            .expect("harness input must build a finite matrix")
    };
    match method {
        Method::KAvg(d) => {
            let dist = d.make(m);
            let mut opts = KMeansOptions::from(KMeansConfig {
                k,
                max_iter: cfg.max_iter,
                seed,
            });
            opts.recorder = recorder;
            kmeans_with(series, dist.as_ref(), &opts)
                .expect("harness input must be valid for k-means")
                .labels
        }
        Method::KShape => {
            let mut opts = KShapeOptions::from(KShapeConfig {
                k,
                max_iter: cfg.max_iter,
                seed,
                ..Default::default()
            });
            opts.recorder = recorder;
            KShape::fit_with(series, &opts)
                .expect("harness input must be valid for k-Shape")
                .labels
        }
        Method::KShapeDtw => kshape_dtw(series, k, cfg.max_iter, seed).labels,
        Method::KDba => {
            let mut opts = KDbaOptions::from(KDbaConfig {
                k,
                max_iter: cfg.max_iter,
                seed,
                ..Default::default()
            });
            opts.recorder = recorder;
            kdba_with(series, &opts)
                .expect("harness input must be valid for k-DBA")
                .labels
        }
        Method::Ksc => {
            let mut opts = KscOptions::from(KscConfig {
                k,
                max_iter: cfg.max_iter,
                seed,
            });
            opts.recorder = recorder;
            ksc_with(series, &opts)
                .expect("harness input must be valid for KSC")
                .labels
        }
        Method::Pam(d) => {
            let matrix = matrix_for(d);
            let mut opts = PamOptions::new(k).with_max_iter(cfg.max_iter);
            opts.recorder = recorder;
            pam_with(&matrix, &opts)
                .expect("harness matrix must be valid for PAM")
                .labels
        }
        Method::Hierarchical(linkage, d) => {
            let matrix = matrix_for(d);
            let mut opts = HierarchicalOptions::new(k).with_linkage(linkage);
            opts.recorder = recorder;
            hierarchical_cluster_with(&matrix, &opts)
                .expect("harness matrix must be valid for hierarchical clustering")
        }
        Method::Spectral(d) => {
            let matrix = matrix_for(d);
            let mut opts = SpectralOptions::from(SpectralConfig {
                k,
                max_iter: cfg.max_iter,
                seed,
                sigma: None,
            });
            opts.recorder = recorder;
            spectral_cluster_with(&matrix, &opts)
                .expect("harness matrix must be valid for spectral clustering")
                .labels
        }
    }
}

/// The scalable-method rows of Table 3, in the paper's order, ending with
/// the `k-AVG+ED` baseline appended last for ratio reporting.
#[must_use]
pub fn table3_methods() -> Vec<Method> {
    vec![
        Method::KAvg(DistKind::Sbd),
        Method::KAvg(DistKind::Dtw),
        Method::Ksc,
        Method::KDba,
        Method::KShapeDtw,
        Method::KShape,
        Method::KAvg(DistKind::Ed),
    ]
}

/// The non-scalable-method rows of Table 4, in the paper's order.
#[must_use]
pub fn table4_methods() -> Vec<Method> {
    let mut rows = Vec::new();
    for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
        for d in [DistKind::Ed, DistKind::Cdtw5, DistKind::Sbd] {
            rows.push(Method::Hierarchical(linkage, d));
        }
    }
    for d in [DistKind::Ed, DistKind::Cdtw5, DistKind::Sbd] {
        rows.push(Method::Spectral(d));
    }
    for d in [DistKind::Ed, DistKind::Cdtw5, DistKind::Sbd] {
        rows.push(Method::Pam(d));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::{evaluate_method, table3_methods, table4_methods, DistKind, Method};
    use crate::config::ExperimentConfig;
    use tscluster::hierarchical::Linkage;
    use tsdata::collection::{synthetic_collection, CollectionSpec};

    fn tiny() -> (Vec<tsdata::dataset::SplitDataset>, ExperimentConfig) {
        let collection = synthetic_collection(&CollectionSpec {
            seed: 5,
            size_factor: 0.34,
        });
        let cfg = ExperimentConfig {
            size_factor: 0.34,
            runs: 1,
            max_iter: 10,
            seed: 5,
            threads: 2,
        };
        (collection, cfg)
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(Method::KAvg(DistKind::Ed).label(), "k-AVG+ED");
        assert_eq!(Method::KShape.label(), "k-Shape");
        assert_eq!(Method::Pam(DistKind::Cdtw5).label(), "PAM+cDTW");
        assert_eq!(
            Method::Hierarchical(Linkage::Average, DistKind::Sbd).label(),
            "H-A+SBD"
        );
        assert_eq!(Method::Spectral(DistKind::Ed).label(), "S+ED");
    }

    #[test]
    fn method_lists_cover_the_tables() {
        assert_eq!(table3_methods().len(), 7);
        assert_eq!(table4_methods().len(), 15);
    }

    #[test]
    fn stochasticity_flags() {
        assert!(Method::KShape.stochastic());
        assert!(!Method::Pam(DistKind::Ed).stochastic());
        assert!(!Method::Hierarchical(Linkage::Single, DistKind::Ed).stochastic());
        assert!(Method::Spectral(DistKind::Ed).stochastic());
    }

    #[test]
    fn kavg_ed_scores_reasonably_on_two_datasets() {
        let (collection, cfg) = tiny();
        let eval = evaluate_method(Method::KAvg(DistKind::Ed), &collection[..2], &cfg);
        assert_eq!(eval.rand_indices.len(), 2);
        for &r in &eval.rand_indices {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn kshape_scores_on_ecg_dataset() {
        let (collection, cfg) = tiny();
        // Dataset index 2 of the first variant block is the ECG family.
        let ecg: Vec<_> = collection
            .iter()
            .filter(|d| d.name().starts_with("ecg"))
            .take(1)
            .cloned()
            .collect();
        let eval = evaluate_method(Method::KShape, &ecg, &cfg);
        assert!(eval.rand_indices[0] > 0.5, "Rand {}", eval.rand_indices[0]);
    }
}
