//! Sharded Figure-12 scale sweep: out-of-core cells, kill-safe claims,
//! and a deterministic merged report.
//!
//! The paper's Figure 12 measures runtime at `n` up to 10⁵–10⁶ series —
//! sizes where a single in-process sweep is fragile (one OOM or CI
//! timeout loses hours) and where peak RSS is itself a result worth
//! recording. This module breaks the `(method, n, m)` grid into
//! independent **cells**, each computed by a dedicated worker *process*
//! so its `/proc/self/status` `VmHWM` is an honest per-cell peak-RSS
//! measurement, and coordinates them with two disk protocols:
//!
//! * **claims** — a worker owns a cell by atomically creating
//!   `<cell>.claim` (`O_CREAT|O_EXCL`) containing its PID. A claim
//!   whose PID no longer exists (`/proc/<pid>` gone — the worker was
//!   `kill -9`ed) is *stale* and silently broken. Two racing claimants
//!   are arbitrated by the filesystem: exactly one `create_new` wins;
//! * **results** — finished cells go through
//!   [`CheckpointStore::store_named`]'s atomic tmp-then-rename write,
//!   so a kill mid-write never leaves a half-written cell.
//!
//! The merged report ([`merged_report`]) covers only the deterministic
//! fields (labels hash, inertia, iteration count) — never wall time or
//! RSS — so a sweep that was killed and resumed merges to **byte
//! identical** output against an uninterrupted one. The CI `scale` job
//! enforces exactly that, plus the peak-RSS budget
//! ([`nested_vec_budget_bytes`]): every out-of-core cell must peak
//! below what merely *materializing* the dataset as `Vec<Vec<f64>>`
//! would cost.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use kshape::{KShapeOptions, TsResult};
use tscluster::kmeans_store;
use tscluster::options::KMeansOptions;
use tsdata::generators::{cbf, GenParams};
use tsdata::store::{ChannelView, ElemType, RaggedStore, SeriesStore, SpillConfig};
use tsdist::EuclideanDistance;
use tsrand::StdRng;

use crate::checkpoint::{escape, json_f64_field, json_str_field, CheckpointStore};

/// The two Figure-12 contestants, in report order.
pub const METHODS: [&str; 2] = ["kavg", "kshape"];

/// One `(method, n, m)` grid point of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleCell {
    /// `"kshape"` (out-of-core k-Shape) or `"kavg"` (streaming k-AVG+ED).
    pub method: String,
    /// Number of series.
    pub n: usize,
    /// Series length.
    pub m: usize,
}

impl ScaleCell {
    /// The checkpoint artifact name for this cell.
    #[must_use]
    pub fn name(&self) -> String {
        format!("fig12__{}__n{}_m{}", self.method, self.n, self.m)
    }
}

/// Knobs shared by every cell of one sweep. Everything here affects
/// results, so coordinator and workers must agree on it.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// RNG seed for the CBF data (Figure 12 uses one dataset per size).
    pub data_seed: u64,
    /// RNG seed for the initial cluster assignment.
    pub fit_seed: u64,
    /// Refinement iteration cap.
    pub max_iter: usize,
    /// Cluster count (CBF has 3 classes).
    pub k: usize,
    /// Directory for this worker's spill segments (wiped on drop).
    pub spill_dir: PathBuf,
}

impl ScaleConfig {
    /// Figure-12 defaults (data seed 7, fit seed 1, `k = 3`,
    /// `max_iter = 30`) spilling under `spill_dir`.
    #[must_use]
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        ScaleConfig {
            data_seed: 7,
            fit_seed: 1,
            max_iter: 30,
            k: 3,
            spill_dir: spill_dir.into(),
        }
    }
}

/// One finished cell: the deterministic fit fingerprint plus the two
/// measurements (wall clock, peak RSS) that vary run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Method label (see [`METHODS`]).
    pub method: String,
    /// Number of series.
    pub n: usize,
    /// Series length.
    pub m: usize,
    /// Refinement iterations executed.
    pub iterations: usize,
    /// Whether memberships converged before the cap.
    pub converged: bool,
    /// Final sum of squared assignment distances.
    pub inertia: f64,
    /// FNV-1a-64 over the label vector — the cheap determinism witness.
    pub labels_hash: u64,
    /// Wall-clock milliseconds for the fit (excluded from the merge).
    pub wall_ms: u64,
    /// Process peak RSS in KiB from `VmHWM` (excluded from the merge).
    pub peak_rss_kb: u64,
}

impl CellResult {
    /// Serializes to the flat in-tree JSON object format.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"method\":\"{}\",\"n\":{},\"m\":{},\"iterations\":{},\
             \"converged\":{},\"inertia\":{:?},\"labels_hash\":\"{:016x}\",\
             \"wall_ms\":{},\"peak_rss_kb\":{}}}\n",
            escape(&self.method),
            self.n,
            self.m,
            self.iterations,
            self.converged,
            self.inertia,
            self.labels_hash,
            self.wall_ms,
            self.peak_rss_kb,
        )
    }

    /// Parses the flat JSON format; `None` on anything malformed (the
    /// checkpoint layer quarantines such files).
    #[must_use]
    pub fn from_json(text: &str) -> Option<CellResult> {
        let trimmed = text.trim();
        if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
            return None;
        }
        let as_usize = |key: &str| -> Option<usize> {
            let v = json_f64_field(text, key)?;
            (v.is_finite() && v >= 0.0 && v.fract() == 0.0).then_some(v as usize)
        };
        let converged = if text.contains("\"converged\":true") {
            true
        } else if text.contains("\"converged\":false") {
            false
        } else {
            return None;
        };
        let inertia = json_f64_field(text, "inertia")?;
        if !inertia.is_finite() || inertia < 0.0 {
            return None;
        }
        Some(CellResult {
            method: json_str_field(text, "method")?,
            n: as_usize("n")?,
            m: as_usize("m")?,
            iterations: as_usize("iterations")?,
            converged,
            inertia,
            labels_hash: u64::from_str_radix(&json_str_field(text, "labels_hash")?, 16).ok()?,
            wall_ms: as_usize("wall_ms")? as u64,
            peak_rss_kb: as_usize("peak_rss_kb")? as u64,
        })
    }

    /// The deterministic merge line: everything except timing and RSS.
    #[must_use]
    pub fn merge_line(&self) -> String {
        format!(
            "{} n={} m={} iterations={} converged={} inertia={:?} labels=0x{:016x}",
            self.method,
            self.n,
            self.m,
            self.iterations,
            self.converged,
            self.inertia,
            self.labels_hash,
        )
    }
}

/// FNV-1a-64 over the label vector (labels as little-endian `u64`s).
#[must_use]
pub fn labels_hash(labels: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in labels {
        for b in (l as u64).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Streams a z-normalized CBF dataset of exactly `n` series of length
/// `m` into a spilled [`SeriesStore`] — never holding more than the
/// spill tier's resident window in memory.
///
/// Row order and RNG consumption match the in-memory Figure-12 feeder
/// (class-major, truncated at `n`), so in-RAM and out-of-core runs
/// cluster identical data. When `n` is a multiple of 3 the streaming
/// generator writer ([`cbf::generate_into`]) is used directly.
///
/// # Errors
///
/// Propagates spill-tier I/O failures as [`kshape::TsError::CorruptData`].
pub fn cbf_store(n: usize, m: usize, seed: u64, spill: SpillConfig) -> TsResult<SeriesStore> {
    let mut store = SeriesStore::spilled(m, ElemType::F64, spill)?;
    let mut rng = StdRng::seed_from_u64(seed);
    if n.is_multiple_of(3) {
        let params = GenParams {
            n_per_class: n / 3,
            len: m,
            ..GenParams::default()
        };
        cbf::generate_into(&params, &mut store, &mut rng)?;
    } else {
        let per_class = n.div_ceil(3);
        'outer: for class in 0..3 {
            for _ in 0..per_class {
                if store.n_series() == n {
                    break 'outer;
                }
                store.push_row(&cbf::generate_one(class, m, &mut rng))?;
            }
        }
    }
    store.z_normalize_in_place()?;
    Ok(store)
}

/// Streams a variable-length CBF dataset into a spilled
/// [`RaggedStore`]: `n` series of class `i % 3` whose lengths cycle
/// deterministically over `[3m/4, m]`, z-normalized per row.
///
/// This feeds the `kshape_ragged` cell — reachable only through an
/// explicit `--cell` selection, never part of [`METHODS`], so the
/// univariate Figure-12 grid and its merged report stay untouched.
///
/// # Errors
///
/// Propagates spill-tier I/O failures as [`kshape::TsError::CorruptData`].
pub fn cbf_ragged_store(
    n: usize,
    m: usize,
    seed: u64,
    spill: SpillConfig,
) -> TsResult<RaggedStore> {
    let mut store = RaggedStore::spilled(ElemType::F64, spill)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let span = m / 4 + 1;
    for i in 0..n {
        let len = 3 * m / 4 + i % span;
        store.push_row(&cbf::generate_one(i % 3, len, &mut rng))?;
    }
    store.z_normalize_in_place()?;
    Ok(store)
}

/// Streams a 3-channel CBF dataset: `n` channel-major rows of `3 * m`
/// samples (class `i % 3`, three independent draws per row, each
/// channel z-normalized independently — the shape-aware contract).
///
/// Feeds the `kshape_mc3` cell; like [`cbf_ragged_store`] it is only
/// reachable through an explicit `--cell` selection.
///
/// # Errors
///
/// Propagates spill-tier I/O failures as [`kshape::TsError::CorruptData`].
pub fn cbf_mc3_store(n: usize, m: usize, seed: u64, spill: SpillConfig) -> TsResult<SeriesStore> {
    let mut store = SeriesStore::spilled(3 * m, ElemType::F64, spill)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row = Vec::with_capacity(3 * m);
    for i in 0..n {
        row.clear();
        for _ch in 0..3 {
            let z = tsdata::normalize::try_z_normalize_series(
                &cbf::generate_one(i % 3, m, &mut rng),
                i,
            )?;
            row.extend_from_slice(&z);
        }
        store.push_row(&row)?;
    }
    Ok(store)
}

/// Computes one cell end to end: generate the spilled CBF dataset, run
/// the cell's out-of-core method, fingerprint the labels, and capture
/// wall clock plus this process's peak RSS. Meant to run in a dedicated
/// worker process so the RSS reading belongs to this cell alone.
///
/// Besides the two [`METHODS`] grid contestants, two shape-aware
/// methods are accepted for explicitly selected cells: `kshape_ragged`
/// (variable-length rows through the unequal-length SBD path) and
/// `kshape_mc3` (3-channel rows through the summed per-channel NCC).
///
/// # Errors
///
/// Propagates generator, spill, and fit errors; an unknown method is
/// reported as [`kshape::TsError::NumericalFailure`].
pub fn run_cell(cell: &ScaleCell, cfg: &ScaleConfig) -> TsResult<CellResult> {
    let spill = SpillConfig::new(&cfg.spill_dir);
    let kshape_opts = KShapeOptions::new(cfg.k)
        .with_seed(cfg.fit_seed)
        .with_max_iter(cfg.max_iter);
    let (labels, iterations, converged, inertia, wall_ms) = match cell.method.as_str() {
        "kshape" => {
            let store = cbf_store(cell.n, cell.m, cfg.data_seed, spill)?;
            let t = Instant::now();
            let fit = kshape::fit_store(&store, &kshape_opts)?;
            let wall_ms = t.elapsed().as_millis() as u64;
            (fit.labels, fit.iterations, fit.converged, fit.inertia, wall_ms)
        }
        "kavg" => {
            let store = cbf_store(cell.n, cell.m, cfg.data_seed, spill)?;
            let opts = KMeansOptions::new(cfg.k)
                .with_seed(cfg.fit_seed)
                .with_max_iter(cfg.max_iter);
            let t = Instant::now();
            let fit = kmeans_store(&store, &EuclideanDistance, &opts)?;
            let wall_ms = t.elapsed().as_millis() as u64;
            (fit.labels, fit.iterations, fit.converged, fit.inertia, wall_ms)
        }
        "kshape_ragged" => {
            let store = cbf_ragged_store(cell.n, cell.m, cfg.data_seed, spill)?;
            let t = Instant::now();
            let fit = kshape::fit_store(&store, &kshape_opts)?;
            let wall_ms = t.elapsed().as_millis() as u64;
            (fit.labels, fit.iterations, fit.converged, fit.inertia, wall_ms)
        }
        "kshape_mc3" => {
            let store = cbf_mc3_store(cell.n, cell.m, cfg.data_seed, spill)?;
            let view = ChannelView::new(&store, 3)?;
            let t = Instant::now();
            let fit = kshape::fit_store(&view, &kshape_opts)?;
            let wall_ms = t.elapsed().as_millis() as u64;
            (fit.labels, fit.iterations, fit.converged, fit.inertia, wall_ms)
        }
        other => {
            return Err(kshape::TsError::NumericalFailure {
                context: format!(
                    "unknown scale method {other:?} (expected kshape, kavg, kshape_ragged, or kshape_mc3)"
                ),
            })
        }
    };
    Ok(CellResult {
        method: cell.method.clone(),
        n: cell.n,
        m: cell.m,
        iterations,
        converged,
        inertia,
        labels_hash: labels_hash(&labels),
        wall_ms,
        peak_rss_kb: peak_rss_kb(),
    })
}

/// This process's peak resident set size in KiB (`VmHWM` from
/// `/proc/self/status`); `0` where procfs is unavailable.
#[must_use]
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix("VmHWM:")?;
            rest.trim().trim_end_matches("kB").trim().parse().ok()
        })
        .unwrap_or(0)
}

/// The bytes a nested `Vec<Vec<f64>>` materialization of the dataset
/// would occupy: `m · 8` payload plus ~72 bytes of per-row overhead
/// (outer `Vec` triple, allocation header, rounding). The CI peak-RSS
/// gate requires every out-of-core cell to stay *below* this — the
/// whole point of the data plane is to beat the naive footprint.
#[must_use]
pub fn nested_vec_budget_bytes(n: usize, m: usize) -> u64 {
    (n as u64) * ((m as u64) * 8 + 72)
}

/// A held claim on one cell; [`ClaimGuard::release`] (or drop) removes
/// the claim file. A `kill -9` skips both, leaving a claim whose PID is
/// dead — the next [`try_claim`] detects and breaks it.
#[derive(Debug)]
pub struct ClaimGuard {
    path: PathBuf,
}

impl ClaimGuard {
    /// Removes the claim file, surrendering the cell.
    pub fn release(self) {
        // Drop does the removal.
    }
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Attempts to claim `name` under `dir` by atomically creating
/// `<name>.claim` containing this process's PID.
///
/// Returns `Ok(Some(guard))` when the claim was won, `Ok(None)` when a
/// *live* process holds it. A claim held by a dead PID (the holder was
/// killed) is broken and re-contested — the filesystem's `O_EXCL`
/// arbitration guarantees at most one winner even when several workers
/// break the same stale claim simultaneously.
///
/// # Errors
///
/// Propagates filesystem errors other than the expected
/// `AlreadyExists`.
pub fn try_claim(dir: &Path, name: &str) -> io::Result<Option<ClaimGuard>> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.claim"));
    for attempt in 0..2 {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(file) => {
                use std::io::Write;
                let mut file = file;
                write!(file, "{}", std::process::id())?;
                file.sync_all()?;
                return Ok(Some(ClaimGuard { path }));
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let holder: Option<u32> = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse().ok());
                let alive = holder.is_some_and(pid_alive);
                if alive || attempt == 1 {
                    return Ok(None);
                }
                // Stale (dead or unparsable holder): break it and
                // re-contest once.
                let _ = fs::remove_file(&path);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Whether a PID currently exists (procfs check; conservatively `true`
/// where procfs is unavailable, so claims are never broken blindly).
fn pid_alive(pid: u32) -> bool {
    if !Path::new("/proc").is_dir() {
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Loads every stored `fig12__*` cell and renders the deterministic
/// merged report: one [`CellResult::merge_line`] per cell, sorted by
/// `(method, n, m)`, excluding wall time and RSS. Two sweeps over the
/// same grid and seeds produce byte-identical reports regardless of
/// worker count, kill/resume history, or cell completion order.
#[must_use]
pub fn merged_report(store: &CheckpointStore) -> String {
    let mut cells: Vec<CellResult> = store
        .list_named("fig12__")
        .iter()
        .filter_map(|name| store.load_named(name, CellResult::from_json).0)
        .collect();
    cells.sort_by(|a, b| {
        a.method
            .cmp(&b.method)
            .then(a.n.cmp(&b.n))
            .then(a.m.cmp(&b.m))
    });
    let mut out = String::from("figure 12 scale sweep (deterministic merge)\n");
    for c in &cells {
        out.push_str(&c.merge_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{
        cbf_store, labels_hash, merged_report, nested_vec_budget_bytes, peak_rss_kb, run_cell,
        try_claim, CellResult, ScaleCell, ScaleConfig,
    };
    use crate::checkpoint::CheckpointStore;
    use tsdata::store::SpillConfig;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tsexp_scale_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn result() -> CellResult {
        CellResult {
            method: "kshape".into(),
            n: 3000,
            m: 128,
            iterations: 12,
            converged: true,
            inertia: 0.123_456_789_012_345_68,
            labels_hash: 0xdead_beef_cafe_f00d,
            wall_ms: 1234,
            peak_rss_kb: 45678,
        }
    }

    #[test]
    fn cell_result_json_roundtrip_is_exact() {
        let r = result();
        let parsed = CellResult::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert_eq!(parsed.inertia.to_bits(), r.inertia.to_bits());
    }

    #[test]
    fn malformed_cells_are_rejected() {
        let r = result();
        let json = r.to_json();
        assert!(CellResult::from_json(&json[..json.len() - 3]).is_none());
        assert!(CellResult::from_json(&json.replace("true", "maybe")).is_none());
        assert!(CellResult::from_json(&json.replace(":0.12", ":NaN0.12")).is_none());
        assert!(CellResult::from_json("").is_none());
    }

    #[test]
    fn labels_hash_is_order_sensitive_and_stable() {
        let a = labels_hash(&[0, 1, 2, 1, 0]);
        let b = labels_hash(&[0, 1, 2, 1, 0]);
        let c = labels_hash(&[1, 0, 2, 1, 0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(labels_hash(&[]), labels_hash(&[0]));
    }

    #[test]
    fn claims_arbitrate_and_break_stale_holders() {
        let dir = temp_dir("claims");
        // Win a fresh claim; a second claimant loses while we hold it
        // (our PID is alive).
        let guard = try_claim(&dir, "cell_a").expect("io").expect("claimed");
        assert!(try_claim(&dir, "cell_a").expect("io").is_none());
        guard.release();
        // Released: claimable again.
        let guard = try_claim(&dir, "cell_a").expect("io").expect("reclaimed");
        drop(guard);
        // A claim from a dead PID is stale and gets broken.
        std::fs::write(dir.join("cell_b.claim"), "4294967294").expect("plant");
        assert!(try_claim(&dir, "cell_b").expect("io").is_some());
        // An unparsable claim is also stale.
        std::fs::write(dir.join("cell_c.claim"), "not-a-pid").expect("plant");
        assert!(try_claim(&dir, "cell_c").expect("io").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_cell_is_deterministic_and_spills() {
        let dir = temp_dir("runcell");
        let cell = ScaleCell {
            method: "kshape".into(),
            n: 60,
            m: 32,
        };
        let a = run_cell(&cell, &ScaleConfig::new(dir.join("s1"))).expect("fit a");
        let b = run_cell(&cell, &ScaleConfig::new(dir.join("s2"))).expect("fit b");
        assert_eq!(a.labels_hash, b.labels_hash);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.n, 60);
        // The kavg method runs on the same store shape.
        let kavg = run_cell(
            &ScaleCell {
                method: "kavg".into(),
                n: 60,
                m: 32,
            },
            &ScaleConfig::new(dir.join("s3")),
        )
        .expect("kavg fit");
        assert_eq!(kavg.method, "kavg");
        assert!(kavg.inertia.is_finite());
        // Unknown methods are typed errors.
        assert!(run_cell(
            &ScaleCell {
                method: "pam".into(),
                n: 9,
                m: 32
            },
            &ScaleConfig::new(dir.join("s4"))
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shape_aware_cells_cluster_end_to_end_and_deterministically() {
        let dir = temp_dir("shapecells");
        for method in ["kshape_ragged", "kshape_mc3"] {
            let cell = ScaleCell {
                method: method.into(),
                n: 45,
                m: 32,
            };
            let a = run_cell(&cell, &ScaleConfig::new(dir.join(format!("{method}_a"))))
                .expect("shape-aware fit a");
            let b = run_cell(&cell, &ScaleConfig::new(dir.join(format!("{method}_b"))))
                .expect("shape-aware fit b");
            assert_eq!(a.labels_hash, b.labels_hash, "{method} determinism");
            assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
            assert!(a.inertia.is_finite());
            assert_eq!(a.n, 45);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cbf_store_matches_in_memory_feeder_row_order() {
        use tsdata::normalize::z_normalize_in_place;
        use tsdata::store::SeriesView;
        use tsrand::StdRng;
        let dir = temp_dir("cbfeq");
        // n divisible by 3 exercises generate_into; 20 exercises the
        // truncating path. Both must match the legacy in-memory feeder.
        for n in [21usize, 20] {
            let store =
                cbf_store(n, 32, 7, SpillConfig::new(dir.join(format!("n{n}")))).expect("store");
            let mut rng = StdRng::seed_from_u64(7);
            let per_class = n.div_ceil(3);
            let mut expected = Vec::new();
            'outer: for class in 0..3 {
                for _ in 0..per_class {
                    if expected.len() == n {
                        break 'outer;
                    }
                    let mut s = tsdata::generators::cbf::generate_one(class, 32, &mut rng);
                    z_normalize_in_place(&mut s);
                    expected.push(s);
                }
            }
            assert_eq!(store.n_series(), n);
            let mut scratch = Vec::new();
            for (i, want) in expected.iter().enumerate() {
                let got = store.try_row(i, &mut scratch).expect("row");
                assert_eq!(got, want.as_slice(), "row {i} (n = {n})");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_report_is_sorted_and_deterministic() {
        let dir = temp_dir("merge");
        let store = CheckpointStore::new(&dir);
        let mut b = result();
        b.method = "kavg".into();
        b.wall_ms = 9999; // timing must not leak into the merge
        let a = result();
        store
            .store_named(
                &ScaleCell {
                    method: b.method.clone(),
                    n: b.n,
                    m: b.m,
                }
                .name(),
                &b.to_json(),
            )
            .expect("store");
        store
            .store_named(
                &ScaleCell {
                    method: a.method.clone(),
                    n: a.n,
                    m: a.m,
                }
                .name(),
                &a.to_json(),
            )
            .expect("store");
        let report = merged_report(&store);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("kavg "), "{report}");
        assert!(lines[2].starts_with("kshape "), "{report}");
        assert!(!report.contains("9999"), "wall time leaked: {report}");
        // A different wall/RSS reading merges identically.
        let mut b2 = b.clone();
        b2.wall_ms = 1;
        b2.peak_rss_kb = 2;
        store
            .store_named(
                &ScaleCell {
                    method: b2.method.clone(),
                    n: b2.n,
                    m: b2.m,
                }
                .name(),
                &b2.to_json(),
            )
            .expect("store");
        assert_eq!(merged_report(&store), report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rss_budget_and_probe_are_sane() {
        assert_eq!(nested_vec_budget_bytes(1000, 128), 1000 * (128 * 8 + 72));
        // On Linux the probe reads a positive VmHWM; elsewhere 0.
        let rss = peak_rss_kb();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0);
        }
    }
}
