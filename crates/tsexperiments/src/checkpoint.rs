//! Checkpoint/resume for long experiment sweeps.
//!
//! The paper's full evaluation ran for weeks; even the scaled-down
//! harness can be killed by a CI timeout or a laptop lid. This module
//! makes sweeps restartable at per-`(method, dataset)` granularity:
//!
//! * every finished cell is written to `<dir>/<method>__<dataset>.json`
//!   **atomically** (write to a `.tmp` sibling, then rename — a kill
//!   mid-write can never leave a half-written checkpoint under the
//!   final name);
//! * a restarted run loads each cell, validates it (parsable, matching
//!   method/dataset/config tag, Rand index finite and in `[0, 1]`) and
//!   recomputes only the missing cells;
//! * an unreadable or invalid file is **quarantined** — renamed to
//!   `<name>.corrupt` so the evidence survives — and its cell is
//!   recomputed;
//! * a *stale* cell (valid JSON from a different seed/size/iteration
//!   configuration) is silently ignored and overwritten.
//!
//! The format is a single flat JSON object written and parsed in-tree
//! (the workspace is hermetic — no serde). Floats are serialized with
//! Rust's shortest round-trip formatting, so a resumed sweep reproduces
//! *byte-identical* aggregate output to an uninterrupted one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::ExperimentConfig;

/// One finished experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointCell {
    /// Method label (e.g. `k-Shape`, `PAM+cDTW`).
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Configuration tag; cells from other configurations are stale.
    pub config_tag: String,
    /// Mean Rand index for the cell.
    pub rand_index: f64,
}

impl CheckpointCell {
    /// Serializes to the flat JSON object format.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"method\":\"{}\",\"dataset\":\"{}\",\"config\":\"{}\",\"rand_index\":{:?}}}\n",
            escape(&self.method),
            escape(&self.dataset),
            escape(&self.config_tag),
            self.rand_index,
        )
    }

    /// Parses the flat JSON object format. Returns `None` on anything
    /// malformed — the caller treats that as corruption.
    #[must_use]
    pub fn from_json(text: &str) -> Option<CheckpointCell> {
        // A truncated write loses the closing brace; reject it up front so
        // byte-level corruption cannot masquerade as a shorter-but-valid
        // cell (e.g. a number cut after its first decimal digit).
        let trimmed = text.trim();
        if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
            return None;
        }
        let method = json_str_field(text, "method")?;
        let dataset = json_str_field(text, "dataset")?;
        let config_tag = json_str_field(text, "config")?;
        let rand_index = json_f64_field(text, "rand_index")?;
        if !rand_index.is_finite() || !(0.0..=1.0).contains(&rand_index) {
            return None;
        }
        Some(CheckpointCell {
            method,
            dataset,
            config_tag,
            rand_index,
        })
    }
}

/// Outcome of one checkpoint lookup, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// No checkpoint file existed.
    Miss,
    /// A valid, matching cell was loaded.
    Hit,
    /// A valid cell from another configuration was ignored.
    Stale,
    /// An unparsable/invalid file was renamed to `.corrupt`.
    Quarantined,
}

/// A directory of per-cell checkpoints; `disabled()` turns every
/// operation into a no-op so callers need no branching.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: Option<PathBuf>,
}

impl CheckpointStore {
    /// Store rooted at `dir` (created on first write).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore {
            dir: Some(dir.into()),
        }
    }

    /// A store that never loads or saves anything.
    #[must_use]
    pub fn disabled() -> Self {
        CheckpointStore { dir: None }
    }

    /// Reads `KSHAPE_CHECKPOINT_DIR`; unset or empty disables
    /// checkpointing.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("KSHAPE_CHECKPOINT_DIR") {
            Ok(dir) if !dir.is_empty() => CheckpointStore::new(dir),
            _ => CheckpointStore::disabled(),
        }
    }

    /// Whether this store persists anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The directory this store persists into (`None` when disabled).
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The checkpoint path for a named artifact.
    fn path_for_name(&self, name: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", sanitize(name))))
    }

    /// Loads a named artifact, validating its bytes with `parse`. A file
    /// whose contents `parse` rejects (returns `None`) is **quarantined**
    /// to `<name>.json.corrupt` — the evidence survives, the caller
    /// recomputes. Callers own any staleness policy on the parsed value
    /// (see [`CheckpointStore::load`]).
    ///
    /// This is the substrate under both the experiment-cell API and
    /// `tsserve` model persistence: anything that must survive a `kill
    /// -9` goes through the same atomic-write / quarantine discipline.
    pub fn load_named<T>(
        &self,
        name: &str,
        parse: impl FnOnce(&str) -> Option<T>,
    ) -> (Option<T>, LoadOutcome) {
        let Some(path) = self.path_for_name(name) else {
            return (None, LoadOutcome::Miss);
        };
        let Ok(text) = fs::read_to_string(&path) else {
            return (None, LoadOutcome::Miss);
        };
        match parse(&text) {
            Some(value) => (Some(value), LoadOutcome::Hit),
            None => {
                quarantine(&path);
                (None, LoadOutcome::Quarantined)
            }
        }
    }

    /// Atomically persists a named artifact: write `<name>.json.tmp`,
    /// then rename over `<name>.json` — a kill mid-write can never leave
    /// a half-written artifact under the final name. No-op when disabled.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, write, rename).
    pub fn store_named(&self, name: &str, payload: &str) -> io::Result<()> {
        let Some(path) = self.path_for_name(name) else {
            return Ok(());
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, payload)?;
        fs::rename(&tmp, &path)
    }

    /// Names (sanitized file stems) of every persisted artifact whose
    /// name starts with `prefix`. Quarantined and temporary files are
    /// excluded. Empty when disabled or the directory does not exist.
    #[must_use]
    pub fn list_named(&self, prefix: &str) -> Vec<String> {
        let Some(dir) = self.dir.as_ref() else {
            return Vec::new();
        };
        let Ok(entries) = fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let path = e.path();
                if path.extension().and_then(|x| x.to_str()) != Some("json") {
                    return None;
                }
                let stem = path.file_stem()?.to_str()?;
                stem.starts_with(prefix).then(|| stem.to_string())
            })
            .collect();
        names.sort();
        names
    }

    /// The sanitized artifact name for an experiment cell.
    fn cell_name(method: &str, dataset: &str) -> String {
        format!("{}__{}", sanitize(method), sanitize(dataset))
    }

    /// Loads the cell for `(method, dataset)` if present, valid, and
    /// matching `config_tag`. Corrupt files are quarantined to
    /// `<name>.corrupt`; stale ones are left for overwrite.
    pub fn load(
        &self,
        method: &str,
        dataset: &str,
        config_tag: &str,
    ) -> (Option<CheckpointCell>, LoadOutcome) {
        let (cell, outcome) = self.load_named(&Self::cell_name(method, dataset), |text| {
            // Unparsable, out-of-range, or labeled for a different cell
            // counts as corruption; a mismatched config tag does not.
            CheckpointCell::from_json(text).filter(|c| c.method == method && c.dataset == dataset)
        });
        match cell {
            Some(c) if c.config_tag != config_tag => (None, LoadOutcome::Stale),
            other => (other, outcome),
        }
    }

    /// Atomically persists a cell (see [`CheckpointStore::store_named`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, write, rename).
    pub fn store(&self, cell: &CheckpointCell) -> io::Result<()> {
        self.store_named(
            &Self::cell_name(&cell.method, &cell.dataset),
            &cell.to_json(),
        )
    }
}

/// Builds the configuration tag that binds checkpoints to the knobs that
/// change results. `threads` is deliberately excluded: it changes wall
/// time, never labels.
#[must_use]
pub fn config_tag(cfg: &ExperimentConfig) -> String {
    format!(
        "seed={};size_factor={:?};runs={};max_iter={}",
        cfg.seed, cfg.size_factor, cfg.runs, cfg.max_iter
    )
}

/// Renames a corrupt checkpoint to `<name>.corrupt` (replacing any
/// previous quarantine of the same cell). Falls back to deletion when the
/// rename itself fails, so the sweep never loops on a bad file.
fn quarantine(path: &Path) {
    let mut q = path.as_os_str().to_owned();
    q.push(".corrupt");
    if fs::rename(path, PathBuf::from(&q)).is_err() {
        let _ = fs::remove_file(path);
    }
}

/// Replaces filesystem-hostile characters so any method/dataset label
/// maps to a portable file name.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Minimal JSON string escaping for the two characters our writer could
/// ever need to protect.
pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts `"key":"value"` from a flat JSON object, handling escaped
/// quotes/backslashes inside the value.
pub(crate) fn json_str_field(text: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = text.find(&marker)? + marker.len();
    let rest = &text[start..];
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    Some(unescape(&rest[..end?]))
}

/// Extracts `"key":<number>` from a flat JSON object.
pub(crate) fn json_f64_field(text: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = text.find(&marker)? + marker.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::{config_tag, CheckpointCell, CheckpointStore, LoadOutcome};
    use crate::config::ExperimentConfig;

    fn cell() -> CheckpointCell {
        CheckpointCell {
            method: "PAM+cDTW".into(),
            dataset: "ecg_warped".into(),
            config_tag: "seed=1;size_factor=0.5;runs=3;max_iter=30".into(),
            rand_index: 0.8765432109876543,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tsexp_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let c = cell();
        let parsed = CheckpointCell::from_json(&c.to_json()).expect("round trip");
        assert_eq!(parsed, c);
        // Bit-exact float round trip, not approximate.
        assert_eq!(parsed.rand_index.to_bits(), c.rand_index.to_bits());
    }

    #[test]
    fn store_load_hit_and_miss() {
        let dir = temp_dir("hit");
        let store = CheckpointStore::new(&dir);
        let c = cell();
        assert!(matches!(
            store.load(&c.method, &c.dataset, &c.config_tag),
            (None, LoadOutcome::Miss)
        ));
        store.store(&c).expect("store");
        let (loaded, outcome) = store.load(&c.method, &c.dataset, &c.config_tag);
        assert_eq!(outcome, LoadOutcome::Hit);
        assert_eq!(loaded.expect("hit"), c);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_config_is_ignored_not_quarantined() {
        let dir = temp_dir("stale");
        let store = CheckpointStore::new(&dir);
        let c = cell();
        store.store(&c).expect("store");
        let (loaded, outcome) = store.load(&c.method, &c.dataset, "seed=2;other");
        assert_eq!(outcome, LoadOutcome::Stale);
        assert!(loaded.is_none());
        // The original file is still there for overwrite.
        assert!(dir.join("PAM_cDTW__ecg_warped.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_quarantined() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::new(&dir);
        let c = cell();
        store.store(&c).expect("store");
        let path = dir.join("PAM_cDTW__ecg_warped.json");
        // Truncate mid-number: unparsable.
        std::fs::write(&path, "{\"method\":\"PAM+cDTW\",\"dataset\":\"ecg_warped\",\"config\":\"x\",\"rand_index\":0.8").expect("write");
        let (loaded, outcome) = store.load(&c.method, &c.dataset, &c.config_tag);
        assert_eq!(outcome, LoadOutcome::Quarantined);
        assert!(loaded.is_none());
        assert!(!path.exists(), "corrupt file left in place");
        assert!(
            dir.join("PAM_cDTW__ecg_warped.json.corrupt").exists(),
            "quarantine file missing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_range_rand_index_is_rejected() {
        assert!(CheckpointCell::from_json(
            "{\"method\":\"m\",\"dataset\":\"d\",\"config\":\"c\",\"rand_index\":1.5}"
        )
        .is_none());
        assert!(CheckpointCell::from_json(
            "{\"method\":\"m\",\"dataset\":\"d\",\"config\":\"c\",\"rand_index\":NaN}"
        )
        .is_none());
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = CheckpointStore::disabled();
        assert!(!store.is_enabled());
        store.store(&cell()).expect("no-op");
        assert!(matches!(
            store.load("m", "d", "c"),
            (None, LoadOutcome::Miss)
        ));
    }

    #[test]
    fn config_tag_covers_result_affecting_knobs() {
        let a = config_tag(&ExperimentConfig::default());
        let b = config_tag(&ExperimentConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, b);
        // Threads change wall time only, never results.
        let c = config_tag(&ExperimentConfig {
            threads: 99,
            ..Default::default()
        });
        assert_eq!(a, c);
    }

    #[test]
    fn named_artifacts_roundtrip_list_and_quarantine() {
        let dir = temp_dir("named");
        let store = CheckpointStore::new(&dir);
        assert_eq!(store.dir(), Some(dir.as_path()));
        store
            .store_named("model__alpha", "{\"k\":2}")
            .expect("store");
        store
            .store_named("model__beta", "{\"k\":3}")
            .expect("store");
        store.store_named("other", "{}").expect("store");
        assert_eq!(
            store.list_named("model__"),
            vec!["model__alpha".to_string(), "model__beta".to_string()]
        );
        let (payload, outcome) = store.load_named("model__alpha", |t| Some(t.to_string()));
        assert_eq!(outcome, LoadOutcome::Hit);
        assert_eq!(payload.as_deref(), Some("{\"k\":2}"));
        // A parse rejection quarantines the file.
        let (none, outcome) = store.load_named("model__beta", |_| None::<()>);
        assert!(none.is_none());
        assert_eq!(outcome, LoadOutcome::Quarantined);
        assert!(dir.join("model__beta.json.corrupt").exists());
        assert_eq!(
            store.list_named("model__"),
            vec!["model__alpha".to_string()]
        );
        // Missing artifacts and disabled stores are misses.
        assert!(matches!(
            store.load_named("model__gone", |t| Some(t.len())),
            (None, LoadOutcome::Miss)
        ));
        let off = CheckpointStore::disabled();
        assert!(off.dir().is_none());
        assert!(off.list_named("").is_empty());
        assert!(matches!(
            off.load_named("x", |t| Some(t.len())),
            (None, LoadOutcome::Miss)
        ));
        off.store_named("x", "{}").expect("no-op");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let c = CheckpointCell {
            method: "we\"ird\\name".into(),
            dataset: "d".into(),
            config_tag: "c".into(),
            rand_index: 0.5,
        };
        let parsed = CheckpointCell::from_json(&c.to_json()).expect("round trip");
        assert_eq!(parsed.method, c.method);
    }
}
