//! Regenerates **Table 3**: Rand index and runtime of the scalable
//! k-means-family methods against the `k-AVG+ED` baseline.
//!
//! Paper expectations: only k-Shape beats k-AVG+ED with significance;
//! k-AVG+DTW is significantly *worse*; k-Shape stays within ~an order of
//! magnitude of k-AVG+ED while k-DBA and KSC are far slower.

use tseval::tables::{fmt3, fmt_ratio, TextTable};
use tsexperiments::cluster_eval::{evaluate_method, table3_methods};
use tsexperiments::dist_eval::compare_to_baseline;
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!(
        "table3: {} datasets, {} runs, max_iter {}",
        collection.len(),
        cfg.runs,
        cfg.max_iter
    );

    let methods = table3_methods();
    let evals: Vec<_> = methods
        .iter()
        .map(|&m| {
            let e = evaluate_method(m, &collection, &cfg);
            eprintln!("  {} done in {:.1}s", e.name, e.seconds);
            e
        })
        .collect();
    let baseline = evals
        .iter()
        .find(|e| e.name == "k-AVG+ED")
        .expect("baseline present")
        .clone();

    let mut table = TextTable::new(vec![
        "Algorithm",
        ">",
        "=",
        "<",
        "Better",
        "Worse",
        "Rand Index",
        "Runtime vs k-AVG+ED",
    ]);
    for e in &evals {
        if e.name == baseline.name {
            table.add_row(vec![
                e.name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                fmt3(e.mean_rand()),
                "1.0x".into(),
            ]);
            continue;
        }
        let cmp = compare_to_baseline(&e.rand_indices, &baseline.rand_indices);
        table.add_row(vec![
            e.name.clone(),
            cmp.wins.to_string(),
            cmp.ties.to_string(),
            cmp.losses.to_string(),
            if cmp.better { "yes" } else { "no" }.to_string(),
            if cmp.worse { "yes" } else { "no" }.to_string(),
            fmt3(e.mean_rand()),
            fmt_ratio(e.seconds / baseline.seconds.max(1e-9)),
        ]);
    }
    println!("Table 3 — k-means variants vs k-AVG+ED");
    println!("{}", table.render());
}
