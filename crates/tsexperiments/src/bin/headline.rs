//! Regenerates the paper's **§1 / §5.1 ECG headline anecdote**: on the
//! phase-shift-dominated ECG dataset,
//!
//! * SBD's 1-NN accuracy beats cDTW's decisively (paper: 98.9% vs 79.7%),
//! * k-Shape's Rand index beats PAM+cDTW's decisively (paper: 84% vs 53%).
//!
//! The synthetic ECG family reproduces that regime: two beat morphologies
//! whose members differ mainly by a global phase shift.

use kshape::sbd::Sbd;
use kshape::{KShape, KShapeOptions};
use tscluster::matrix::DissimilarityMatrix;
use tscluster::pam::{pam_with, PamOptions};
use tsdata::collection::split_alternating;
use tsdata::generators::{ecg, GenParams};
use tsdist::dtw::Dtw;
use tsdist::nn::one_nn_accuracy;
use tseval::rand_index::rand_index;
use tsrand::StdRng;

fn main() {
    // Strongly out-of-phase ECG data, the paper's motivating regime.
    let params = GenParams {
        n_per_class: 40,
        len: 128,
        noise: 0.25,
        max_shift_frac: 0.3,
        amp_jitter: 1.4,
    };
    let mut rng = StdRng::seed_from_u64(0xEC6);
    let mut data = ecg::generate(&params, &mut rng);
    data.z_normalize();
    let mut split = split_alternating(data);
    split.z_normalize();

    println!("ECG headline experiment (phase-shifted two-class beats)\n");

    // --- distance measures: 1-NN accuracy ---
    let sbd_acc = one_nn_accuracy(&Sbd::new(), &split.train, &split.test);
    let w = (0.05 * params.len as f64).round() as usize;
    let cdtw_acc = one_nn_accuracy(&Dtw::with_window(w), &split.train, &split.test);
    println!(
        "1-NN accuracy:  SBD {:.1}%   cDTW-5 {:.1}%   (paper: 98.9% vs 79.7%)",
        100.0 * sbd_acc,
        100.0 * cdtw_acc
    );
    assert!(
        sbd_acc >= cdtw_acc,
        "SBD must not lose to cDTW on phase-shifted ECG data"
    );

    // --- clustering: k-Shape vs PAM+cDTW ---
    let fused = split.fused();
    let ks_opts = KShapeOptions::new(2).with_seed(0xEC6).with_max_iter(50);
    let kshape = KShape::fit_with(&fused.series, &ks_opts).expect("ECG series are clean");
    let kshape_rand = rand_index(&kshape.labels, &fused.labels);

    let matrix = DissimilarityMatrix::compute(&fused.series, &Dtw::with_window(w));
    let pam_opts = PamOptions::new(2).with_max_iter(100);
    let pam_result = pam_with(&matrix, &pam_opts).expect("ECG matrix is finite");
    let pam_rand = rand_index(&pam_result.labels, &fused.labels);

    println!(
        "Rand index:     k-Shape {:.1}%   PAM+cDTW {:.1}%   (paper: 84% vs 53%)",
        100.0 * kshape_rand,
        100.0 * pam_rand
    );
    assert!(
        kshape_rand >= pam_rand,
        "k-Shape must not lose to PAM+cDTW on phase-shifted ECG data"
    );
    println!("\nBoth headline comparisons reproduce: SBD/k-Shape dominate on");
    println!("similar-but-out-of-phase sequences, where a linear drift beats an");
    println!("expensive non-linear alignment.");
}
