//! Regenerates **Figure 2**: (a) point alignments of two sequences under
//! ED (one-to-one) and DTW (one-to-many), and (b) the Sakoe–Chiba band of
//! width 5 with the warping path computed under cDTW.
//!
//! Output is text: the alignment pairs and an ASCII rendering of the band
//! and path, matching the figure's content.

use tsdist::dtw::dtw_path;

fn main() {
    // Two out-of-phase sinusoid fragments, like the figure's sketch.
    let m = 24usize;
    let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.45).sin()).collect();
    let y: Vec<f64> = (0..m).map(|i| ((i as f64 - 3.0) * 0.45).sin()).collect();

    println!("Figure 2(a) — alignments");
    println!("ED aligns index i to index i (one-to-one):");
    let ed_pairs: Vec<String> = (0..m.min(8)).map(|i| format!("({i},{i})")).collect();
    println!("  {} …", ed_pairs.join(" "));

    let (d, path) = dtw_path(&x, &y, None);
    println!("DTW alignment (one-to-many), distance {d:.3}:");
    let dtw_pairs: Vec<String> = path.iter().map(|&(i, j)| format!("({i},{j})")).collect();
    println!("  {}", dtw_pairs.join(" "));

    // (b) Sakoe–Chiba band of half-width 5 and the constrained path.
    let w = 5usize;
    let (dc, cpath) = dtw_path(&x, &y, Some(w));
    println!("\nFigure 2(b) — Sakoe–Chiba band (w = {w}), cDTW distance {dc:.3}");
    println!("  '.' outside band, 'o' in band, '#' on warping path");
    for i in 0..m {
        let mut line = String::with_capacity(m + 2);
        for j in 0..m {
            let c = if cpath.contains(&(i, j)) {
                '#'
            } else if i.abs_diff(j) <= w {
                'o'
            } else {
                '.'
            };
            line.push(c);
        }
        println!("  {line}");
    }
    // The path must stay inside the band — assert it so the binary doubles
    // as a smoke test.
    assert!(cpath.iter().all(|&(i, j)| i.abs_diff(j) <= w));
    println!(
        "\npath length {} (m = {m}); all cells within the band",
        cpath.len()
    );
}
