//! Regenerates **Table 4**: Rand index of the non-scalable methods
//! (hierarchical, spectral, PAM) against the `k-AVG+ED` baseline.
//!
//! Paper expectations: all hierarchical variants and S+ED/S+cDTW lose to
//! k-AVG+ED with significance; PAM+cDTW, PAM+SBD, and S+SBD beat it;
//! k-Shape remains the reference point (printed last for context).

use tseval::tables::{fmt3, TextTable};
use tsexperiments::cluster_eval::{evaluate_method, table4_methods, DistKind, Method};
use tsexperiments::dist_eval::compare_to_baseline;
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!(
        "table4: {} datasets, {} runs (stochastic methods), {} threads",
        collection.len(),
        cfg.runs,
        cfg.threads
    );

    let baseline = evaluate_method(Method::KAvg(DistKind::Ed), &collection, &cfg);
    let kshape = evaluate_method(Method::KShape, &collection, &cfg);

    let mut table = TextTable::new(vec![
        "Algorithm",
        ">",
        "=",
        "<",
        "Better",
        "Worse",
        "Rand Index",
    ]);
    for method in table4_methods() {
        let e = evaluate_method(method, &collection, &cfg);
        eprintln!("  {} done in {:.1}s", e.name, e.seconds);
        let cmp = compare_to_baseline(&e.rand_indices, &baseline.rand_indices);
        table.add_row(vec![
            e.name.clone(),
            cmp.wins.to_string(),
            cmp.ties.to_string(),
            cmp.losses.to_string(),
            if cmp.better { "yes" } else { "no" }.to_string(),
            if cmp.worse { "yes" } else { "no" }.to_string(),
            fmt3(e.mean_rand()),
        ]);
    }
    println!("Table 4 — hierarchical, spectral, and k-medoids variants vs k-AVG+ED");
    println!("{}", table.render());
    println!(
        "Context: k-AVG+ED Rand {}  |  k-Shape Rand {}",
        fmt3(baseline.mean_rand()),
        fmt3(kshape.mean_rand())
    );
}
