//! Extended distance-measure comparison, in the spirit of the broader
//! evaluations the paper builds on (Ding et al. [19] / Wang et al. [81]:
//! "9 measures and their variants"; Giusti & Batista [26]: 48 measures).
//!
//! Runs 1-NN classification with every measure implemented in this
//! workspace — ED, DTW, cDTW-5, SBD, plus the elastic/robust extensions
//! ERP, EDR, LCSS, MSM, and CID — and ranks them with the Friedman/Nemenyi
//! machinery.
//!
//! Expected shape (matching the literature): the elastic measures and SBD
//! cluster at the top well ahead of ED; no single elastic measure
//! dominates all others.

use kshape::sbd::Sbd;
use tsdist::cid::ComplexityInvariantDistance;
use tsdist::dtw::Dtw;
use tsdist::edr::Edr;
use tsdist::erp::Erp;
use tsdist::lcss::Lcss;
use tsdist::msm::Msm;
use tseval::stats::{friedman_test, nemenyi_critical_difference, nemenyi_groups};
use tseval::tables::{fmt3, TextTable};
use tsexperiments::dist_eval::{
    compare_to_baseline, eval_fraction_cdtw, eval_measure, MeasureEval,
};
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!("extended_measures: {} datasets", collection.len());

    let rows: Vec<MeasureEval> = vec![
        eval_measure(&collection, &tsdist::EuclideanDistance),
        eval_measure(&collection, &Dtw::unconstrained()),
        eval_fraction_cdtw(&collection, 0.05, "cDTW-5"),
        eval_measure(&collection, &Sbd::new()),
        eval_measure(&collection, &Erp::default()),
        eval_measure(&collection, &Edr::default()),
        eval_measure(&collection, &Lcss::default()),
        eval_measure(&collection, &Msm::default()),
        eval_measure(&collection, &ComplexityInvariantDistance),
    ];

    let ed = rows[0].clone();
    let mut table = TextTable::new(vec!["Measure", ">", "=", "<", "vs ED", "Avg Accuracy"]);
    for row in &rows {
        if row.name == ed.name {
            table.add_row(vec![
                row.name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "baseline".into(),
                fmt3(row.mean_accuracy()),
            ]);
            continue;
        }
        let cmp = compare_to_baseline(&row.accuracies, &ed.accuracies);
        table.add_row(vec![
            row.name.clone(),
            cmp.wins.to_string(),
            cmp.ties.to_string(),
            cmp.losses.to_string(),
            if cmp.better {
                "better"
            } else if cmp.worse {
                "worse"
            } else {
                "ns"
            }
            .to_string(),
            fmt3(row.mean_accuracy()),
        ]);
    }
    println!("Extended 1-NN comparison over all implemented measures");
    println!("{}", table.render());

    // Friedman/Nemenyi over the full panel.
    let names: Vec<String> = rows.iter().map(|r| r.name.clone()).collect();
    let scores: Vec<Vec<f64>> = rows.iter().map(|r| r.accuracies.clone()).collect();
    let fr = friedman_test(&scores);
    let cd = nemenyi_critical_difference(rows.len(), collection.len());
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| {
        fr.average_ranks[a]
            .partial_cmp(&fr.average_ranks[b])
            .unwrap()
    });
    println!("Average ranks (lower is better; Nemenyi CD = {cd:.3}):");
    for &i in &order {
        println!("  {:<8} {:.2}", names[i], fr.average_ranks[i]);
    }
    for group in nemenyi_groups(&fr.average_ranks, cd) {
        let members: Vec<&str> = group.iter().map(|&i| names[i].as_str()).collect();
        println!("  not significantly different: {}", members.join(" ~ "));
    }
}
