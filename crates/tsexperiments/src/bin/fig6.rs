//! Regenerates **Figure 6**: average rank of ED, SBD, cDTW-5, and cDTW-opt
//! across datasets, with the Friedman test and the Nemenyi critical
//! difference (the "wiggly line" connects measures that do not differ
//! significantly).
//!
//! Paper expectation: cDTW-opt ranks first (~1.96 there), cDTW-5 and SBD
//! follow within one critical difference of each other, and ED ranks last
//! and significantly worse.

use tseval::stats::{friedman_test, nemenyi_critical_difference, nemenyi_groups};
use tsexperiments::dist_eval::{eval_cdtw_opt, eval_fraction_cdtw, eval_measure};
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!("fig6: {} datasets", collection.len());

    let ed = eval_measure(&collection, &tsdist::EuclideanDistance);
    let sbd = eval_measure(&collection, &kshape::sbd::Sbd::new());
    let cdtw5 = eval_fraction_cdtw(&collection, 0.05, "cDTW-5");
    let (cdtw_opt, windows, _) = eval_cdtw_opt(&collection, false);

    let names = ["cDTW-opt", "cDTW-5", "SBD", "ED"];
    let scores = vec![
        cdtw_opt.accuracies.clone(),
        cdtw5.accuracies.clone(),
        sbd.accuracies.clone(),
        ed.accuracies.clone(),
    ];
    let fr = friedman_test(&scores);
    let cd = nemenyi_critical_difference(names.len(), collection.len());

    println!("Figure 6 — ranking of distance measures");
    let mut order: Vec<usize> = (0..names.len()).collect();
    order.sort_by(|&a, &b| {
        fr.average_ranks[a]
            .partial_cmp(&fr.average_ranks[b])
            .unwrap()
    });
    for &i in &order {
        println!("  {:<9} average rank {:.2}", names[i], fr.average_ranks[i]);
    }
    println!(
        "Friedman chi2 = {:.2} (df {}), p = {:.4}",
        fr.chi_square, fr.df, fr.p_value
    );
    println!("Nemenyi critical difference (alpha 0.05): {cd:.3}");
    for group in nemenyi_groups(&fr.average_ranks, cd) {
        let members: Vec<&str> = group.iter().map(|&i| names[i]).collect();
        println!("  not significantly different: {}", members.join(" ~ "));
    }
    let mean_window_pct: f64 = collection
        .iter()
        .zip(windows.iter())
        .map(|(split, &w)| 100.0 * w as f64 / split.train.series_len() as f64)
        .sum::<f64>()
        / collection.len() as f64;
    println!(
        "average tuned warping window: {mean_window_pct:.1}% of series length \
         (paper: 4.5%)"
    );
}
