//! Regenerates **Figure 12** (Appendix B): runtime of k-Shape vs k-AVG+ED
//! on the CBF dataset, (a) varying the number of series `n` at fixed
//! length `m = 128`, and (b) varying `m` at fixed `n`.
//!
//! Paper expectations: both methods scale linearly in `n` (k-Shape staying
//! within a constant factor, helped by needing fewer iterations); k-Shape's
//! O(m²)/O(m³) centroid cost shows once `m` grows toward `n`.
//!
//! # Modes
//!
//! * **no arguments** — the historical in-memory laptop-scale sweep
//!   (unchanged output; `KSHAPE_FIG12_MAX_N` / `KSHAPE_FIG12_N` /
//!   `KSHAPE_MAX_ITER` still apply);
//! * `--shard --dir D [--workers W] [--n LIST] [--m LIST]
//!   [--max-iter I]` — the out-of-core sharded sweep at Figure-12 scale
//!   (`n` up to 10⁵–10⁶): the `(method, n, m)` grid is fanned over `W`
//!   worker *processes*, one process per cell so each cell's peak RSS
//!   (`VmHWM`) is measured in isolation. Cells are claimed by atomic
//!   claim files and stored through atomic checkpoint writes, so the
//!   sweep survives `kill -9` of workers or the coordinator and resumes
//!   where it stopped — the deterministic merged report on stdout is
//!   byte-identical to an uninterrupted run's. Timings and RSS go to
//!   stderr;
//! * `--cell METHOD:NxM --dir D [--max-iter I]` — compute one cell in
//!   this process (the coordinator spawns these). Besides the grid
//!   methods, `kshape_ragged` (variable-length rows) and `kshape_mc3`
//!   (3-channel rows) are accepted here — shape-aware cells that never
//!   join the sharded grid or its merged report;
//! * `--merge --dir D` — print the deterministic merged report only;
//! * `--gate-rss --dir D` — exit non-zero if any stored cell peaked at
//!   or above the nested-`Vec` materialization budget.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Instant;

use kshape::{KShape, KShapeOptions};
use tscluster::kmeans::{kmeans_with, KMeansOptions};
use tsdata::generators::cbf;
use tsdata::normalize::z_normalize_in_place;
use tsdist::EuclideanDistance;
use tseval::tables::TextTable;
use tsexperiments::scale::{
    merged_report, nested_vec_budget_bytes, run_cell, try_claim, CellResult, ScaleCell,
    ScaleConfig, METHODS,
};
use tsexperiments::CheckpointStore;
use tsrand::StdRng;

fn cbf_series(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_class = n.div_ceil(3);
    let mut out = Vec::with_capacity(n);
    'outer: for class in 0..3 {
        for _ in 0..per_class {
            if out.len() == n {
                break 'outer;
            }
            let mut s = cbf::generate_one(class, m, &mut rng);
            z_normalize_in_place(&mut s);
            out.push(s);
        }
    }
    out
}

fn time_methods(series: &[Vec<f64>], max_iter: usize) -> (f64, f64) {
    let t = Instant::now();
    let kavg_opts = KMeansOptions::new(3).with_seed(1).with_max_iter(max_iter);
    let _ = kmeans_with(series, &EuclideanDistance, &kavg_opts).expect("CBF series are clean");
    let kavg = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let ks_opts = KShapeOptions::new(3).with_seed(1).with_max_iter(max_iter);
    let _ = KShape::fit_with(series, &ks_opts).expect("CBF series are clean");
    let kshape = t.elapsed().as_secs_f64();
    (kavg, kshape)
}

fn env(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The historical single-process in-memory sweep (CI smoke path).
fn legacy_main() {
    let max_iter = env("KSHAPE_MAX_ITER", 30);
    let max_n = env("KSHAPE_FIG12_MAX_N", 9000);
    let fixed_n = env("KSHAPE_FIG12_N", 1800);

    println!("Figure 12(a) — runtime vs number of series (m = 128, k = 3)");
    let mut table = TextTable::new(vec!["n", "k-AVG+ED (s)", "k-Shape (s)", "ratio"]);
    let mut n = max_n / 10;
    while n <= max_n {
        let series = cbf_series(n, 128, 7);
        let (kavg, kshape) = time_methods(&series, max_iter);
        table.add_row(vec![
            n.to_string(),
            format!("{kavg:.3}"),
            format!("{kshape:.3}"),
            format!("{:.1}x", kshape / kavg.max(1e-9)),
        ]);
        eprintln!("  n = {n} done");
        n += max_n / 10;
    }
    println!("{}", table.render());

    println!("Figure 12(b) — runtime vs series length (n = {fixed_n}, k = 3)");
    let mut table = TextTable::new(vec!["m", "k-AVG+ED (s)", "k-Shape (s)", "ratio"]);
    for m in [64usize, 128, 256, 512, 1024] {
        let series = cbf_series(fixed_n, m, 7);
        let (kavg, kshape) = time_methods(&series, max_iter);
        table.add_row(vec![
            m.to_string(),
            format!("{kavg:.3}"),
            format!("{kshape:.3}"),
            format!("{:.1}x", kshape / kavg.max(1e-9)),
        ]);
        eprintln!("  m = {m} done");
    }
    println!("{}", table.render());
    println!("Expected shape: linear growth in n for both; super-linear in m for k-Shape");
    println!("(its refinement step is O(m^2)/O(m^3)) once m approaches n.");
}

/// Minimal flag parser for the sharded modes.
struct Args {
    dir: Option<PathBuf>,
    cell: Option<String>,
    workers: usize,
    n_list: Vec<usize>,
    m_list: Vec<usize>,
    max_iter: usize,
    shard: bool,
    merge: bool,
    gate_rss: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: None,
        cell: None,
        workers: 2,
        n_list: vec![10_000, 30_000, 100_000],
        m_list: vec![128],
        max_iter: 30,
        shard: false,
        merge: false,
        gate_rss: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usize_list =
        |v: &str| -> Vec<usize> { v.split(',').filter_map(|s| s.trim().parse().ok()).collect() };
    while i < argv.len() {
        let flag = argv[i].clone();
        let mut take = |name: &str| -> String {
            i += 1;
            argv.get(i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--shard" => args.shard = true,
            "--merge" => args.merge = true,
            "--gate-rss" => args.gate_rss = true,
            "--dir" => args.dir = Some(PathBuf::from(take("--dir"))),
            "--cell" => args.cell = Some(take("--cell")),
            "--workers" => args.workers = take("--workers").parse().unwrap_or(2).max(1),
            "--n" => args.n_list = usize_list(&take("--n")),
            "--m" => args.m_list = usize_list(&take("--m")),
            "--max-iter" => args.max_iter = take("--max-iter").parse().unwrap_or(30),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Parses `METHOD:NxM` (e.g. `kshape:100000x128`).
fn parse_cell(spec: &str) -> Option<ScaleCell> {
    let (method, grid) = spec.split_once(':')?;
    let (n, m) = grid.split_once('x')?;
    Some(ScaleCell {
        method: method.to_string(),
        n: n.parse().ok()?,
        m: m.parse().ok()?,
    })
}

/// Child mode: compute one cell, store it atomically, report to stderr.
fn cell_main(spec: &str, dir: &PathBuf, max_iter: usize) -> i32 {
    let Some(cell) = parse_cell(spec) else {
        eprintln!("bad cell spec {spec:?} (expected METHOD:NxM)");
        return 2;
    };
    let spill = dir.join(format!("spill-{}", std::process::id()));
    let mut cfg = ScaleConfig::new(spill);
    cfg.max_iter = max_iter;
    match run_cell(&cell, &cfg) {
        Ok(result) => {
            let store = CheckpointStore::new(dir);
            if let Err(e) = store.store_named(&cell.name(), &result.to_json()) {
                eprintln!("{}: store failed: {e}", cell.name());
                return 1;
            }
            let budget = nested_vec_budget_bytes(cell.n, cell.m);
            eprintln!(
                "{}: wall={}ms peak_rss={}KiB budget={}KiB",
                cell.name(),
                result.wall_ms,
                result.peak_rss_kb,
                budget / 1024,
            );
            0
        }
        Err(e) => {
            eprintln!("{}: {e}", cell.name());
            1
        }
    }
}

/// Coordinator: fan the grid over worker processes with claim files,
/// retry cells whose workers die, then merge.
fn shard_main(args: &Args) -> i32 {
    let dir = args.dir.clone().expect("--shard requires --dir");
    let store = CheckpointStore::new(&dir);
    let exe = std::env::current_exe().expect("own path");
    let mut pending: Vec<ScaleCell> = Vec::new();
    for method in METHODS {
        for &n in &args.n_list {
            for &m in &args.m_list {
                pending.push(ScaleCell {
                    method: method.to_string(),
                    n,
                    m,
                });
            }
        }
    }
    let total = pending.len();
    // (child, cell, claim) triples for in-flight workers.
    let mut running: Vec<(
        std::process::Child,
        ScaleCell,
        tsexperiments::scale::ClaimGuard,
    )> = Vec::new();
    let mut attempts = std::collections::HashMap::<String, usize>::new();
    let mut failed: Vec<String> = Vec::new();
    loop {
        // Reap finished workers; a dead worker's cell is retried (its
        // next claim wins because the claim was released here, or was
        // left stale if *we* were killed — the resume run breaks it).
        let mut i = 0;
        while i < running.len() {
            match running[i].0.try_wait() {
                Ok(Some(status)) => {
                    let (_, cell, claim) = running.swap_remove(i);
                    claim.release();
                    let done = store.load_named(&cell.name(), CellResult::from_json).0;
                    if status.success() && done.is_some() {
                        eprintln!("[{}] cell {} done", done_count(&store, total), cell.name());
                    } else {
                        let tries = attempts.entry(cell.name()).or_insert(0);
                        *tries += 1;
                        if *tries < 3 {
                            eprintln!("cell {} failed (attempt {tries}); retrying", cell.name());
                            pending.push(cell);
                        } else {
                            eprintln!("cell {} failed {tries} times; giving up", cell.name());
                            failed.push(cell.name());
                        }
                    }
                }
                Ok(None) => i += 1,
                Err(e) => {
                    eprintln!("wait failed: {e}");
                    i += 1;
                }
            }
        }
        // Fill free worker slots.
        while running.len() < args.workers {
            let Some(cell) = pending.pop() else { break };
            if store
                .load_named(&cell.name(), CellResult::from_json)
                .0
                .is_some()
            {
                continue; // resumed: already computed
            }
            match try_claim(&dir, &cell.name()) {
                Ok(Some(claim)) => {
                    let child = Command::new(&exe)
                        .arg("--cell")
                        .arg(format!("{}:{}x{}", cell.method, cell.n, cell.m))
                        .arg("--dir")
                        .arg(&dir)
                        .arg("--max-iter")
                        .arg(args.max_iter.to_string())
                        .stdout(Stdio::null())
                        .spawn();
                    match child {
                        Ok(child) => running.push((child, cell, claim)),
                        Err(e) => {
                            eprintln!("spawn failed for {}: {e}", cell.name());
                            claim.release();
                            failed.push(cell.name());
                        }
                    }
                }
                Ok(None) => {
                    // Another live coordinator owns it; skip — the merge
                    // below only covers what finished.
                    eprintln!("cell {} claimed elsewhere; skipping", cell.name());
                }
                Err(e) => {
                    eprintln!("claim failed for {}: {e}", cell.name());
                    failed.push(cell.name());
                }
            }
        }
        if running.is_empty() && pending.is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    print!("{}", merged_report(&store));
    if failed.is_empty() {
        0
    } else {
        eprintln!("{} cell(s) permanently failed", failed.len());
        1
    }
}

fn done_count(store: &CheckpointStore, total: usize) -> String {
    format!("{}/{}", store.list_named("fig12__").len(), total)
}

/// RSS gate: every stored cell must have peaked below the nested-`Vec`
/// materialization budget for its size.
fn gate_rss_main(dir: &PathBuf) -> i32 {
    let store = CheckpointStore::new(dir);
    let mut bad = 0usize;
    let mut seen = 0usize;
    for name in store.list_named("fig12__") {
        let Some(cell) = store.load_named(&name, CellResult::from_json).0 else {
            continue;
        };
        seen += 1;
        let budget = nested_vec_budget_bytes(cell.n, cell.m);
        let peak = cell.peak_rss_kb * 1024;
        let verdict = if peak == 0 {
            "no-procfs"
        } else if peak < budget {
            "ok"
        } else {
            bad += 1;
            "OVER BUDGET"
        };
        eprintln!(
            "{name}: peak_rss={}KiB budget={}KiB [{verdict}]",
            cell.peak_rss_kb,
            budget / 1024
        );
    }
    if seen == 0 {
        eprintln!("no cells under {}", dir.display());
        return 1;
    }
    i32::from(bad > 0)
}

fn main() {
    let args = parse_args();
    if let Some(spec) = &args.cell {
        let dir = args.dir.clone().expect("--cell requires --dir");
        std::process::exit(cell_main(spec, &dir, args.max_iter));
    }
    if args.shard {
        std::process::exit(shard_main(&args));
    }
    if args.merge {
        let dir = args.dir.clone().expect("--merge requires --dir");
        print!("{}", merged_report(&CheckpointStore::new(&dir)));
        return;
    }
    if args.gate_rss {
        let dir = args.dir.clone().expect("--gate-rss requires --dir");
        std::process::exit(gate_rss_main(&dir));
    }
    legacy_main();
}
