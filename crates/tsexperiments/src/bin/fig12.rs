//! Regenerates **Figure 12** (Appendix B): runtime of k-Shape vs k-AVG+ED
//! on the CBF dataset, (a) varying the number of series `n` at fixed
//! length `m = 128`, and (b) varying `m` at fixed `n`.
//!
//! Paper expectations: both methods scale linearly in `n` (k-Shape staying
//! within a constant factor, helped by needing fewer iterations); k-Shape's
//! O(m²)/O(m³) centroid cost shows once `m` grows toward `n`.
//!
//! Scales are reduced from the paper's 100k×128 to laptop sizes; override
//! with `KSHAPE_FIG12_MAX_N` / `KSHAPE_FIG12_N` if desired.

use std::time::Instant;

use kshape::{KShape, KShapeOptions};
use tscluster::kmeans::{kmeans_with, KMeansOptions};
use tsdata::generators::cbf;
use tsdata::normalize::z_normalize_in_place;
use tsdist::EuclideanDistance;
use tseval::tables::TextTable;
use tsrand::StdRng;

fn cbf_series(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_class = n.div_ceil(3);
    let mut out = Vec::with_capacity(n);
    'outer: for class in 0..3 {
        for _ in 0..per_class {
            if out.len() == n {
                break 'outer;
            }
            let mut s = cbf::generate_one(class, m, &mut rng);
            z_normalize_in_place(&mut s);
            out.push(s);
        }
    }
    out
}

fn time_methods(series: &[Vec<f64>], max_iter: usize) -> (f64, f64) {
    let t = Instant::now();
    let kavg_opts = KMeansOptions::new(3).with_seed(1).with_max_iter(max_iter);
    let _ = kmeans_with(series, &EuclideanDistance, &kavg_opts).expect("CBF series are clean");
    let kavg = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let ks_opts = KShapeOptions::new(3).with_seed(1).with_max_iter(max_iter);
    let _ = KShape::fit_with(series, &ks_opts).expect("CBF series are clean");
    let kshape = t.elapsed().as_secs_f64();
    (kavg, kshape)
}

fn env(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let max_iter = env("KSHAPE_MAX_ITER", 30);
    let max_n = env("KSHAPE_FIG12_MAX_N", 9000);
    let fixed_n = env("KSHAPE_FIG12_N", 1800);

    println!("Figure 12(a) — runtime vs number of series (m = 128, k = 3)");
    let mut table = TextTable::new(vec!["n", "k-AVG+ED (s)", "k-Shape (s)", "ratio"]);
    let mut n = max_n / 10;
    while n <= max_n {
        let series = cbf_series(n, 128, 7);
        let (kavg, kshape) = time_methods(&series, max_iter);
        table.add_row(vec![
            n.to_string(),
            format!("{kavg:.3}"),
            format!("{kshape:.3}"),
            format!("{:.1}x", kshape / kavg.max(1e-9)),
        ]);
        eprintln!("  n = {n} done");
        n += max_n / 10;
    }
    println!("{}", table.render());

    println!("Figure 12(b) — runtime vs series length (n = {fixed_n}, k = 3)");
    let mut table = TextTable::new(vec!["m", "k-AVG+ED (s)", "k-Shape (s)", "ratio"]);
    for m in [64usize, 128, 256, 512, 1024] {
        let series = cbf_series(fixed_n, m, 7);
        let (kavg, kshape) = time_methods(&series, max_iter);
        table.add_row(vec![
            m.to_string(),
            format!("{kavg:.3}"),
            format!("{kshape:.3}"),
            format!("{:.1}x", kshape / kavg.max(1e-9)),
        ]);
        eprintln!("  m = {m} done");
    }
    println!("{}", table.render());
    println!("Expected shape: linear growth in n for both; super-linear in m for k-Shape");
    println!("(its refinement step is O(m^2)/O(m^3)) once m approaches n.");
}
