//! Regenerates **Figure 3**: how the cross-correlation normalizations
//! (`NCCb` without z-normalization, `NCCu` and `NCCc` with it) change where
//! the cross-correlation sequence of two *aligned* series peaks.
//!
//! The paper's example uses m = 1024 aligned sequences; the correct answer
//! is "no shifting required", i.e. a peak at lag 0 (index 1024 in the
//! paper's 1-based indexing). NCCb without z-normalization is dragged off
//! by amplitude/offset, NCCu is dragged off by its small-overlap edge
//! amplification, and only NCCc with z-normalization finds lag 0.

use kshape::ncc::{ncc, NccVariant};
use tsdata::normalize::z_normalize;

fn peak(seq: &[f64], m: usize) -> (isize, f64) {
    let (idx, &val) = seq
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
        .expect("non-empty");
    (idx as isize - (m as isize - 1), val)
}

fn main() {
    let m = 1024usize;
    // Shared shape with a negative baseline; x and y are aligned but differ
    // in amplitude and offset plus independent measurement noise — exactly
    // the distortions z-normalization is meant to remove.
    let mut state = 0x5ADE_u64;
    let mut noise = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.2
    };
    let shape: Vec<f64> = (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            (2.0 * std::f64::consts::TAU * t).sin() + 0.4 * (5.0 * std::f64::consts::TAU * t).sin()
        })
        .collect();
    let x: Vec<f64> = shape.iter().map(|v| 0.5 * v - 2.0 + noise()).collect();
    let y: Vec<f64> = shape.iter().map(|v| 6.0 * v + 30.0 + noise()).collect();

    let zx = z_normalize(&x);
    let zy = z_normalize(&y);

    println!("Figure 3 — cross-correlation normalizations (m = {m}, sequences aligned)");
    println!("correct answer: peak at lag 0 (paper's index {m})\n");

    let (lag_b, val) = peak(&ncc(&x, &y, NccVariant::Biased), m);
    println!(
        "(b) NCCb, no z-normalization:  peak at lag {lag_b:+5} (index {:4}), value {val:10.3}",
        lag_b + m as isize
    );
    let (lag_u, val) = peak(&ncc(&zx, &zy, NccVariant::Unbiased), m);
    println!(
        "(c) NCCu, z-normalized:        peak at lag {lag_u:+5} (index {:4}), value {val:10.3}",
        lag_u + m as isize
    );
    let (lag_c, val) = peak(&ncc(&zx, &zy, NccVariant::Coefficient), m);
    println!(
        "(d) NCCc, z-normalized:        peak at lag {lag_c:+5} (index {:4}), value {val:10.3}",
        lag_c + m as isize
    );
    assert_eq!(lag_c, 0, "NCCc must locate the true (zero) shift");
    println!();
    if lag_b != 0 {
        println!("NCCb without z-normalization mislocated the shift by {lag_b} samples.");
    }
    if lag_u != 0 {
        println!("NCCu mislocated the shift by {lag_u} samples (edge-overlap amplification).");
    }
    println!("NCCc (the SBD normalization) is bounded in [-1, 1] and recovers the alignment.");
}
