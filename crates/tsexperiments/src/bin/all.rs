//! Runs the entire experiment suite and writes each artifact's output into
//! a results directory (default `results/`, override with the first CLI
//! argument) — the one-command reproduction driver behind
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p tsexperiments --bin all [RESULTS_DIR]
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Instant;

const BINARIES: [&str; 16] = [
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10_11",
    "fig12",
    "headline",
    "extended_measures",
    "feature_based",
];

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".into())
        .into();
    fs::create_dir_all(&out_dir).expect("cannot create results directory");

    // Sibling binaries live next to this driver.
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();

    let mut failures = Vec::new();
    for name in BINARIES {
        let started = Instant::now();
        eprint!("running {name:<18}… ");
        let output = Command::new(bin_dir.join(name))
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .output();
        match output {
            Ok(out) if out.status.success() => {
                fs::write(out_dir.join(format!("{name}.txt")), &out.stdout).expect("write stdout");
                fs::write(out_dir.join(format!("{name}.log")), &out.stderr).expect("write stderr");
                eprintln!("ok ({:.1}s)", started.elapsed().as_secs_f64());
            }
            Ok(out) => {
                eprintln!("FAILED (exit {:?})", out.status.code());
                failures.push(name);
            }
            Err(e) => {
                eprintln!("FAILED to launch: {e}");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        eprintln!("\nall artifacts written to {}", out_dir.display());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
