//! Regenerates **Table 2**: 1-NN accuracy and runtime of every distance
//! measure against the ED baseline over the 48-dataset collection.
//!
//! Paper expectations to check against the output:
//! * every measure beats ED with statistical significance except that
//!   SBD/ED margins can be narrow on warped families,
//! * constrained DTW ≥ unconstrained DTW,
//! * SBD runs within a small factor of ED while DTW variants are orders of
//!   magnitude slower, and `SBD-NoFFT` ≫ `SBD-NoPow2` ≥ `SBD`.

use tseval::tables::{fmt3, fmt_ratio, TextTable};
use tsexperiments::dist_eval::{compare_to_baseline, table2_sweep};
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!(
        "table2: {} datasets, size_factor {}",
        collection.len(),
        cfg.size_factor
    );

    let (rows, ed_index) = table2_sweep(&collection);
    let ed = rows[ed_index].clone();

    let mut table = TextTable::new(vec![
        "Distance Measure",
        ">",
        "=",
        "<",
        "Better",
        "Avg Accuracy",
        "Runtime vs ED",
    ]);
    for row in &rows {
        if row.name == ed.name {
            table.add_row(vec![
                row.name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                fmt3(row.mean_accuracy()),
                "1.0x".into(),
            ]);
            continue;
        }
        let cmp = compare_to_baseline(&row.accuracies, &ed.accuracies);
        table.add_row(vec![
            row.name.clone(),
            cmp.wins.to_string(),
            cmp.ties.to_string(),
            cmp.losses.to_string(),
            if cmp.better {
                "yes".to_string()
            } else if cmp.worse {
                "WORSE".to_string()
            } else {
                "no".to_string()
            },
            fmt3(row.mean_accuracy()),
            fmt_ratio(row.seconds / ed.seconds.max(1e-9)),
        ]);
    }
    println!("Table 2 — comparison of distance measures (baseline: ED)");
    println!("{}", table.render());
}
