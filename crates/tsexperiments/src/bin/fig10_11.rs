//! Regenerates **Figures 10 and 11** (Appendix A): 1-NN accuracy of the
//! cross-correlation variants (SBD/NCCc vs NCCu vs NCCb) under the
//! `OptimalScaling` and `ValuesBetween0-1` time-series normalizations,
//! plus the z-normalization summary.
//!
//! Following the appendix, the z-normalized collection is first
//! "un-normalized" by multiplying each series by a random amplitude, then
//! each normalization scenario is applied before classification.
//!
//! Paper expectation: SBD (coefficient normalization) dominates NCCu and
//! NCCb in every scenario; average accuracies ~0.699 / 0.779 / 0.795 for
//! OptimalScaling / ValuesBetween0-1 / z-normalization there.

use kshape::ncc::NccVariant;
use tsdata::dataset::{Dataset, SplitDataset};
use tsdata::normalize::{values_between_0_1, z_normalize};
use tseval::tables::{fmt3, TextTable};
use tsexperiments::dist_eval::{compare_to_baseline, eval_measure, DataNorm, NormalizedNcc};
use tsexperiments::ExperimentConfig;
use tsrand::Rng;
use tsrand::StdRng;

/// Multiplies every series by a random positive amplitude, undoing the
/// collection's z-normalization so the normalization scenarios differ.
fn randomize_amplitudes(collection: &[SplitDataset], seed: u64) -> Vec<SplitDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    collection
        .iter()
        .map(|split| {
            let mut rescale = |d: &Dataset| {
                let series = d
                    .series
                    .iter()
                    .map(|s| {
                        let a = rng.gen_range(0.5..10.0);
                        s.iter().map(|v| a * v).collect()
                    })
                    .collect();
                Dataset::new(d.name.clone(), series, d.labels.clone())
            };
            SplitDataset {
                train: rescale(&split.train),
                test: rescale(&split.test),
            }
        })
        .collect()
}

/// Applies a per-series normalization to every series of the collection.
fn normalize_with(collection: &[SplitDataset], f: fn(&[f64]) -> Vec<f64>) -> Vec<SplitDataset> {
    collection
        .iter()
        .map(|split| {
            let map = |d: &Dataset| {
                Dataset::new(
                    d.name.clone(),
                    d.series.iter().map(|s| f(s)).collect(),
                    d.labels.clone(),
                )
            };
            SplitDataset {
                train: map(&split.train),
                test: map(&split.test),
            }
        })
        .collect()
}

fn scenario(label: &str, collection: &[SplitDataset], data_norm: DataNorm, table: &mut TextTable) {
    let mut accs = Vec::new();
    for variant in [
        NccVariant::Coefficient,
        NccVariant::Unbiased,
        NccVariant::Biased,
    ] {
        let d = NormalizedNcc { variant, data_norm };
        let eval = eval_measure(collection, &d);
        accs.push(eval.accuracies);
    }
    let sbd_vs_u = compare_to_baseline(&accs[0], &accs[1]);
    let sbd_vs_b = compare_to_baseline(&accs[0], &accs[2]);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    table.add_row(vec![
        label.to_string(),
        fmt3(mean(&accs[0])),
        fmt3(mean(&accs[1])),
        fmt3(mean(&accs[2])),
        format!("{}/{}", sbd_vs_u.wins, accs[0].len()),
        format!("{}/{}", sbd_vs_b.wins, accs[0].len()),
    ]);
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let raw = randomize_amplitudes(&cfg.collection(), cfg.seed ^ 0xA11CE);
    eprintln!("fig10_11: {} datasets", raw.len());

    let mut table = TextTable::new(vec![
        "normalization",
        "SBD (NCCc)",
        "NCCu",
        "NCCb",
        "SBD>NCCu",
        "SBD>NCCb",
    ]);

    // Figure 10: OptimalScaling — pairwise scaling inside the distance,
    // data left with random amplitudes.
    scenario("OptimalScaling", &raw, DataNorm::OptimalScaling, &mut table);

    // Figure 11: ValuesBetween0-1 — each series mapped into [0, 1].
    let unit = normalize_with(&raw, values_between_0_1);
    scenario("ValuesBetween0-1", &unit, DataNorm::AsIs, &mut table);

    // Appendix summary: z-normalization.
    let znorm = normalize_with(&raw, z_normalize);
    scenario("z-normalization", &znorm, DataNorm::AsIs, &mut table);

    println!("Figures 10-11 (Appendix A) — cross-correlation variants under normalizations");
    println!("{}", table.render());
    println!("SBD columns should dominate NCCu/NCCb in every scenario.");
}
