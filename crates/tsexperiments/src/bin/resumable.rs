//! Interruptible, resumable clustering sweep.
//!
//! Runs the scalable (Table 3) method set over the synthetic collection
//! with per-`(method, dataset)` checkpointing, then prints a fully
//! deterministic result table to stdout: every Rand index is serialized
//! with shortest round-trip float formatting and **no wall-clock values
//! appear in the output**, so
//!
//! ```text
//! KSHAPE_CHECKPOINT_DIR=ck resumable > a.txt     # killed half-way
//! KSHAPE_CHECKPOINT_DIR=ck resumable > a.txt     # resumed
//! resumable > b.txt                              # uninterrupted
//! diff a.txt b.txt                               # byte-identical
//! ```
//!
//! holds on a pinned seed. CI runs exactly this protocol (see the
//! `resume` job). Progress goes to stderr, which is not compared.
//!
//! Environment: the usual `KSHAPE_*` knobs ([`ExperimentConfig`]) plus
//! `KSHAPE_CHECKPOINT_DIR` to enable checkpointing.

use tsexperiments::checkpoint::CheckpointStore;
use tsexperiments::cluster_eval::{evaluate_method_checkpointed, table3_methods};
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let store = CheckpointStore::from_env();
    let collection = cfg.collection();
    eprintln!(
        "resumable: {} datasets, {} methods, checkpoints {}",
        collection.len(),
        table3_methods().len(),
        if store.is_enabled() { "on" } else { "off" },
    );

    println!(
        "resumable sweep (seed={}, size_factor={:?}, runs={}, max_iter={})",
        cfg.seed, cfg.size_factor, cfg.runs, cfg.max_iter
    );
    println!("method\tdataset\trand_index");
    for method in table3_methods() {
        let eval = evaluate_method_checkpointed(method, &collection, &cfg, &store);
        eprintln!("  {} done in {:.1}s", eval.name, eval.seconds);
        for (split, ri) in collection.iter().zip(eval.rand_indices.iter()) {
            println!("{}\t{}\t{ri:?}", eval.name, split.name());
        }
        println!("MEAN\t{}\t{:?}", eval.name, eval.mean_rand());
    }
}
