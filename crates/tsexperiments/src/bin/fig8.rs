//! Regenerates **Figure 8**: average ranks of the k-means variants
//! (k-Shape, k-AVG+ED, KSC, k-DBA) with the Nemenyi critical difference.
//!
//! Paper expectation: k-Shape ranks first (~1.89 there) and is
//! significantly better; KSC, k-DBA, and k-AVG+ED share a group.

use tseval::stats::{friedman_test, nemenyi_critical_difference, nemenyi_groups};
use tsexperiments::cluster_eval::{evaluate_method, DistKind, Method};
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!("fig8: {} datasets, {} runs", collection.len(), cfg.runs);

    let methods = [
        Method::KShape,
        Method::KAvg(DistKind::Ed),
        Method::Ksc,
        Method::KDba,
    ];
    let names: Vec<String> = methods.iter().map(|m| m.label()).collect();
    let scores: Vec<Vec<f64>> = methods
        .iter()
        .map(|&m| {
            let e = evaluate_method(m, &collection, &cfg);
            eprintln!("  {} done in {:.1}s", e.name, e.seconds);
            e.rand_indices
        })
        .collect();

    let fr = friedman_test(&scores);
    let cd = nemenyi_critical_difference(methods.len(), collection.len());

    println!("Figure 8 — ranking of k-means variants");
    let mut order: Vec<usize> = (0..methods.len()).collect();
    order.sort_by(|&a, &b| {
        fr.average_ranks[a]
            .partial_cmp(&fr.average_ranks[b])
            .unwrap()
    });
    for &i in &order {
        println!("  {:<10} average rank {:.2}", names[i], fr.average_ranks[i]);
    }
    println!(
        "Friedman chi2 = {:.2} (df {}), p = {:.4}",
        fr.chi_square, fr.df, fr.p_value
    );
    println!("Nemenyi critical difference (alpha 0.05): {cd:.3}");
    for group in nemenyi_groups(&fr.average_ranks, cd) {
        let members: Vec<&str> = group.iter().map(|&i| names[i].as_str()).collect();
        println!("  not significantly different: {}", members.join(" ~ "));
    }
}
