//! Regenerates **Figure 7**: per-dataset scatter of k-Shape's Rand index
//! against (a) KSC and (b) k-DBA. Points above the diagonal favor k-Shape.

use tseval::tables::TextTable;
use tsexperiments::cluster_eval::{evaluate_method, Method};
use tsexperiments::dist_eval::compare_to_baseline;
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!("fig7: {} datasets, {} runs", collection.len(), cfg.runs);

    let kshape = evaluate_method(Method::KShape, &collection, &cfg);
    eprintln!("  k-Shape done in {:.1}s", kshape.seconds);
    let ksc = evaluate_method(Method::Ksc, &collection, &cfg);
    eprintln!("  KSC done in {:.1}s", ksc.seconds);
    let kdba = evaluate_method(Method::KDba, &collection, &cfg);
    eprintln!("  k-DBA done in {:.1}s", kdba.seconds);

    let mut table = TextTable::new(vec!["dataset", "KSC", "k-DBA", "k-Shape"]);
    let (mut above_ksc, mut above_kdba) = (0usize, 0usize);
    for (i, split) in collection.iter().enumerate() {
        if kshape.rand_indices[i] > ksc.rand_indices[i] {
            above_ksc += 1;
        }
        if kshape.rand_indices[i] > kdba.rand_indices[i] {
            above_kdba += 1;
        }
        table.add_row(vec![
            split.name().to_string(),
            format!("{:.3}", ksc.rand_indices[i]),
            format!("{:.3}", kdba.rand_indices[i]),
            format!("{:.3}", kshape.rand_indices[i]),
        ]);
    }
    println!("Figure 7 — per-dataset Rand index scatter data");
    println!("{}", table.render());
    println!(
        "(a) k-Shape above the KSC diagonal on {above_ksc}/{} datasets",
        collection.len()
    );
    println!(
        "(b) k-Shape above the k-DBA diagonal on {above_kdba}/{} datasets",
        collection.len()
    );
    let vs_ksc = compare_to_baseline(&kshape.rand_indices, &ksc.rand_indices);
    let vs_kdba = compare_to_baseline(&kshape.rand_indices, &kdba.rand_indices);
    println!(
        "Wilcoxon: k-Shape vs KSC p = {:.4} (better: {}); vs k-DBA p = {:.4} (better: {})",
        vs_ksc.p_value, vs_ksc.better, vs_kdba.p_value, vs_kdba.better
    );
}
