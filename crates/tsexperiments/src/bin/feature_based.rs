//! Raw-based vs feature-based vs model-based clustering — the Section 2.4
//! taxonomy put to the test.
//!
//! The paper argues for *raw-based* methods because "feature- and
//! model-based approaches are usually domain-dependent and applications on
//! different domains require that we modify the features or models". This
//! experiment clusters every dataset of the collection three ways:
//!
//! * **raw**: k-Shape on the z-normalized series,
//! * **feature-based**: k-means (ED) on standardized characteristic
//!   feature vectors (reference [82]'s paradigm),
//! * **model-based**: k-means (ED) on AR(8) coefficient vectors
//!   (reference [38]'s paradigm),
//!
//! and compares the Rand indices. Expected shape: the fixed feature/model
//! batteries work on *some* families and collapse on others, while
//! raw-based k-Shape is consistent — which is exactly the
//! domain-dependence argument.

use tscluster::kmeans::{kmeans_with, KMeansOptions};
use tsdata::features::{ar_coefficients, feature_vector, standardize_features};
use tsdist::EuclideanDistance;
use tseval::rand_index::rand_index;
use tseval::tables::{fmt3, TextTable};
use tsexperiments::cluster_eval::{evaluate_method, Method};
use tsexperiments::dist_eval::compare_to_baseline;
use tsexperiments::ExperimentConfig;

fn cluster_on_vectors(
    vectors: &[Vec<f64>],
    truth: &[usize],
    k: usize,
    cfg: &ExperimentConfig,
) -> f64 {
    let mut acc = 0.0;
    for r in 0..cfg.runs {
        let seed = cfg.seed.wrapping_add(r as u64).wrapping_mul(0x9E37_79B9);
        let opts = KMeansOptions::new(k)
            .with_seed(seed)
            .with_max_iter(cfg.max_iter);
        let result =
            kmeans_with(vectors, &EuclideanDistance, &opts).expect("feature vectors are finite");
        acc += rand_index(&result.labels, truth);
    }
    acc / cfg.runs as f64
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!(
        "feature_based: {} datasets, {} runs",
        collection.len(),
        cfg.runs
    );

    let raw = evaluate_method(Method::KShape, &collection, &cfg);
    eprintln!("  k-Shape done in {:.1}s", raw.seconds);

    let mut feat_scores = Vec::with_capacity(collection.len());
    let mut model_scores = Vec::with_capacity(collection.len());
    for split in &collection {
        let fused = split.fused();
        let k = split.n_classes().max(1).min(fused.n_series());
        let features = standardize_features(
            &fused
                .series
                .iter()
                .map(|s| feature_vector(s))
                .collect::<Vec<_>>(),
        );
        feat_scores.push(cluster_on_vectors(&features, &fused.labels, k, &cfg));
        let models = standardize_features(
            &fused
                .series
                .iter()
                .map(|s| ar_coefficients(s, 8))
                .collect::<Vec<_>>(),
        );
        model_scores.push(cluster_on_vectors(&models, &fused.labels, k, &cfg));
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut table = TextTable::new(vec![
        "Approach",
        "Rand Index",
        ">raw",
        "=",
        "<raw",
        "verdict",
    ]);
    table.add_row(vec![
        "raw (k-Shape)".to_string(),
        fmt3(raw.mean_rand()),
        "-".into(),
        "-".into(),
        "-".into(),
        "baseline".into(),
    ]);
    for (name, scores) in [
        ("feature-based (stats)", &feat_scores),
        ("model-based (AR(8))", &model_scores),
    ] {
        let cmp = compare_to_baseline(scores, &raw.rand_indices);
        table.add_row(vec![
            name.to_string(),
            fmt3(mean(scores)),
            cmp.wins.to_string(),
            cmp.ties.to_string(),
            cmp.losses.to_string(),
            if cmp.worse {
                "significantly worse"
            } else if cmp.better {
                "significantly better"
            } else {
                "not significant"
            }
            .to_string(),
        ]);
    }
    println!("Raw-based vs feature-based vs model-based clustering (paper §2.4)");
    println!("{}", table.render());

    // Per-family breakdown exposing the domain dependence.
    println!("Per-family mean Rand (feature-based) — the domain-dependence signature:");
    let mut families: Vec<&str> = Vec::new();
    for d in &collection {
        let family = d.name().split('-').next().unwrap_or("");
        if !families.contains(&family) {
            families.push(family);
        }
    }
    for family in families {
        let scores: Vec<f64> = collection
            .iter()
            .zip(feat_scores.iter())
            .filter(|(d, _)| d.name().starts_with(family))
            .map(|(_, &s)| s)
            .collect();
        let raw_scores: Vec<f64> = collection
            .iter()
            .zip(raw.rand_indices.iter())
            .filter(|(d, _)| d.name().starts_with(family))
            .map(|(_, &s)| s)
            .collect();
        println!(
            "  {family:<13} features {:.3}   raw {:.3}",
            mean(&scores),
            mean(&raw_scores)
        );
    }
}
