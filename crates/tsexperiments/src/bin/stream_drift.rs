//! Streaming-drift acceptance run: a drifting, partially corrupted feed
//! through the online k-Shape engine, with kill-safe checkpoints.
//!
//! Prints exactly one line to stdout — the [`StreamDriftReport`] JSON —
//! which is fully deterministic in the configuration (no wall-clock
//! values), so
//!
//! ```text
//! KSHAPE_CHECKPOINT_DIR=ck stream_drift > a.txt   # killed half-way
//! KSHAPE_CHECKPOINT_DIR=ck stream_drift > a.txt   # resumed
//! stream_drift > b.txt                            # uninterrupted
//! diff a.txt b.txt                                # byte-identical
//! ```
//!
//! holds. CI runs exactly this SIGKILL→resume protocol and additionally
//! gates on `quarantine_leaks == 0`, `nan_centroid_values == 0`,
//! `reseeds >= 1`, and a bounded `recovery_arrivals`.
//!
//! Environment knobs (all optional): `KSHAPE_STREAM_N`,
//! `KSHAPE_STREAM_ROTATE_AT`, `KSHAPE_STREAM_SEED`,
//! `KSHAPE_STREAM_CKPT_EVERY`, plus `KSHAPE_CHECKPOINT_DIR` to enable
//! checkpointing.

use tsexperiments::stream_eval::{run_stream_drift, StreamDriftConfig, StreamDriftReport};
use tsexperiments::CheckpointStore;

fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("{var}={raw} is not a usize")),
        Err(_) => default,
    }
}

fn env_u64(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("{var}={raw} is not a u64")),
        Err(_) => default,
    }
}

fn main() {
    let defaults = StreamDriftConfig::default();
    let n = env_usize("KSHAPE_STREAM_N", defaults.n);
    let cfg = StreamDriftConfig {
        n,
        rotate_at: env_usize("KSHAPE_STREAM_ROTATE_AT", n / 2),
        seed: env_u64("KSHAPE_STREAM_SEED", defaults.seed),
        checkpoint_every: env_usize("KSHAPE_STREAM_CKPT_EVERY", defaults.checkpoint_every),
        ..defaults
    };
    let store = CheckpointStore::from_env();
    eprintln!(
        "stream_drift: n={} rotate_at={} corrupt_p={} seed={} checkpoints {}",
        cfg.n,
        cfg.rotate_at,
        cfg.corrupt_p,
        cfg.seed,
        if store.is_enabled() { "on" } else { "off" },
    );
    let report: StreamDriftReport = run_stream_drift(&cfg, &store);
    println!("{}", report.to_json());
}
