//! Captures a structured telemetry stream from a small clustering sweep.
//!
//! Runs a handful of Table 3/4 methods over a reduced synthetic
//! collection with a JSONL recorder attached and writes every event to
//! the path given as the first argument (default `telemetry.jsonl`).
//! CI pipes the output through `tsobs-validate` to keep the event schema
//! honest; locally the file is grep-able evidence of what the harness
//! actually did (`"type":"iteration"` lines show convergence per run).

use std::process::ExitCode;

use tscluster::hierarchical::Linkage;
use tsexperiments::checkpoint::CheckpointStore;
use tsexperiments::cluster_eval::{evaluate_method_observed, DistKind, Method};
use tsexperiments::ExperimentConfig;
use tsobs::JsonlSink;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "telemetry.jsonl".to_string());
    let sink = match JsonlSink::to_file(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("telemetry: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cfg = ExperimentConfig {
        size_factor: 0.3,
        runs: 1,
        max_iter: 20,
        seed: 11,
        threads: 2,
    };
    let collection = cfg.collection();
    let subset = &collection[..collection.len().min(3)];

    let methods = [
        Method::KShape,
        Method::KAvg(DistKind::Ed),
        Method::Ksc,
        Method::Pam(DistKind::Sbd),
        Method::Hierarchical(Linkage::Average, DistKind::Ed),
        Method::Spectral(DistKind::Ed),
    ];
    for method in methods {
        let eval = evaluate_method_observed(
            method,
            subset,
            &cfg,
            &CheckpointStore::disabled(),
            Some(&sink),
        );
        eprintln!(
            "telemetry: {:<12} mean Rand {:.3} in {:.2}s",
            eval.name,
            eval.mean_rand(),
            eval.seconds
        );
    }

    if let Err(e) = sink.flush() {
        eprintln!("telemetry: flush failed: {e}");
        return ExitCode::FAILURE;
    }
    if sink.dropped_writes() > 0 {
        eprintln!(
            "telemetry: {} events dropped by the sink",
            sink.dropped_writes()
        );
        return ExitCode::FAILURE;
    }
    eprintln!("telemetry: events written to {path}");
    ExitCode::SUCCESS
}
