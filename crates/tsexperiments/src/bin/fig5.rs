//! Regenerates **Figure 5**: per-dataset scatter of SBD's 1-NN accuracy
//! against (a) ED and (b) DTW. Points above the diagonal favor SBD.

use kshape::sbd::Sbd;
use tsdist::dtw::Dtw;
use tseval::tables::TextTable;
use tsexperiments::dist_eval::eval_measure;
use tsexperiments::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let collection = cfg.collection();
    eprintln!("fig5: {} datasets", collection.len());

    let ed = eval_measure(&collection, &tsdist::EuclideanDistance);
    let dtw = eval_measure(&collection, &Dtw::unconstrained());
    let sbd = eval_measure(&collection, &Sbd::new());

    let mut table = TextTable::new(vec!["dataset", "ED", "DTW", "SBD", "SBD>ED", "SBD>DTW"]);
    let (mut above_ed, mut above_dtw) = (0usize, 0usize);
    for (i, split) in collection.iter().enumerate() {
        let (e, d, s) = (ed.accuracies[i], dtw.accuracies[i], sbd.accuracies[i]);
        if s > e {
            above_ed += 1;
        }
        if s > d {
            above_dtw += 1;
        }
        table.add_row(vec![
            split.name().to_string(),
            format!("{e:.3}"),
            format!("{d:.3}"),
            format!("{s:.3}"),
            if s > e {
                "+"
            } else if s < e {
                "-"
            } else {
                "="
            }
            .to_string(),
            if s > d {
                "+"
            } else if s < d {
                "-"
            } else {
                "="
            }
            .to_string(),
        ]);
    }
    println!("Figure 5 — per-dataset 1-NN accuracy scatter data");
    println!("{}", table.render());
    println!(
        "(a) SBD above the ED diagonal on {above_ed}/{} datasets",
        collection.len()
    );
    println!(
        "(b) SBD above the DTW diagonal on {above_dtw}/{} datasets",
        collection.len()
    );
}
