//! Regenerates **Figure 4**: per-class centroids of the ECG-like dataset
//! computed with the arithmetic mean (k-means style) versus shape
//! extraction (Algorithm 2).
//!
//! The paper's point: with phase-shifted members, the arithmetic mean
//! smears the class shape while shape extraction preserves it. We print
//! both centroid series (for plotting) and quantify the smear as the SBD
//! of each centroid to the clean class prototype.

use kshape::extraction::{shape_extraction, EigenMethod};
use kshape::sbd::sbd;
use tsdata::generators::ecg;
use tsdata::generators::GenParams;
use tsdata::normalize::z_normalize;
use tsrand::StdRng;

fn main() {
    let params = GenParams {
        n_per_class: 30,
        len: 96,
        noise: 0.2,
        max_shift_frac: 0.2, // strong phase jitter, the figure's regime
        amp_jitter: 1.3,
    };
    let mut rng = StdRng::seed_from_u64(0x5ADE);
    let mut data = ecg::generate(&params, &mut rng);
    data.z_normalize();

    println!("Figure 4 — centroids of the two ECG classes");
    for class in 0..2 {
        let members: Vec<&[f64]> = data
            .class_indices(class)
            .into_iter()
            .map(|i| data.series[i].as_slice())
            .collect();
        // Arithmetic mean.
        let m = params.len;
        let mut mean = vec![0.0; m];
        for s in &members {
            for (a, v) in mean.iter_mut().zip(s.iter()) {
                *a += v / members.len() as f64;
            }
        }
        let mean = z_normalize(&mean);
        // Shape extraction, using the clean prototype's z-norm as a neutral
        // reference stand-in for the converged k-Shape centroid.
        let proto = z_normalize(&ecg::prototype(class, m));
        let extracted = shape_extraction(&members, &proto, EigenMethod::Full);

        let d_mean = sbd(&proto, &mean).dist;
        let d_extracted = sbd(&proto, &extracted).dist;
        println!(
            "\nClass {} ({}): SBD(prototype, arithmetic mean) = {d_mean:.4}, \
             SBD(prototype, shape extraction) = {d_extracted:.4}",
            (b'A' + class as u8) as char,
            if class == 0 {
                "sharp onset"
            } else {
                "gradual onset"
            },
        );
        assert!(
            d_extracted < d_mean,
            "shape extraction must preserve the class shape better"
        );
        println!("arithmetic-mean centroid: {}", fmt_series(&mean));
        println!("shape-extraction centroid: {}", fmt_series(&extracted));
    }
    println!("\nShape extraction preserves the class shapes; the mean smears them.");
}

fn fmt_series(s: &[f64]) -> String {
    s.iter()
        .map(|v| format!("{v:.3}"))
        .collect::<Vec<_>>()
        .join(",")
}
