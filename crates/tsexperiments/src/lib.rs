//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Sections 4–5 and Appendices A–B).
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary     | paper artifact |
//! |------------|----------------|
//! | `table2`   | Table 2 — distance-measure 1-NN accuracy & runtime |
//! | `table3`   | Table 3 — scalable clustering (k-means variants) |
//! | `table4`   | Table 4 — non-scalable clustering |
//! | `fig2`     | Figure 2 — ED vs DTW alignment, Sakoe–Chiba path |
//! | `fig3`     | Figure 3 — NCC normalizations |
//! | `fig4`     | Figure 4 — arithmetic mean vs shape extraction |
//! | `fig5`     | Figure 5 — SBD vs ED / DTW scatter |
//! | `fig6`     | Figure 6 — distance-measure rank + Nemenyi CD |
//! | `fig7`     | Figure 7 — k-Shape vs KSC / k-DBA scatter |
//! | `fig8`     | Figure 8 — k-means-variant rank + CD |
//! | `fig9`     | Figure 9 — methods beating k-AVG+ED, rank + CD |
//! | `fig10_11` | Figures 10–11 — NCC variants under normalizations |
//! | `fig12`    | Figure 12 — scalability in n and m (CBF) |
//! | `headline` | §5.1/§1 ECG anecdote — SBD vs cDTW, k-Shape vs PAM+cDTW |
//! | `extended_measures` | elastic-measure panel in the spirit of refs [19]/[26] |
//! | `feature_based` | raw vs feature-based vs model-based clustering (§2.4) |
//! | `all`      | driver: runs everything into a results directory |
//!
//! Knobs come from the environment (see [`config`]): collection size
//! factor, number of random restarts, and iteration caps, so the full
//! suite finishes in minutes on a laptop while keeping the paper's
//! comparative structure.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cluster_eval;
pub mod config;
pub mod dist_eval;
pub mod scale;
pub mod stream_eval;
pub mod variants;

pub use checkpoint::CheckpointStore;
pub use config::ExperimentConfig;
pub use scale::{CellResult, ScaleCell, ScaleConfig};
