//! Environment-driven experiment configuration.
//!
//! The paper's full sweep took two months on ten servers; the defaults
//! here finish in minutes while preserving the comparisons. Every knob can
//! be raised toward the paper's scale:
//!
//! * `KSHAPE_SIZE_FACTOR` — multiplier on per-class series counts of the
//!   synthetic collection (default 0.5; 1.0 matches DESIGN.md sizes),
//! * `KSHAPE_RUNS` — random restarts for stochastic clustering methods
//!   (default 3; the paper uses 10 for partitional and 100 for spectral),
//! * `KSHAPE_MAX_ITER` — iteration cap for iterative methods (default 30;
//!   the paper uses 100),
//! * `KSHAPE_SEED` — base RNG seed (default `0x5ADE`),
//! * `KSHAPE_THREADS` — worker threads for dissimilarity matrices
//!   (default: available parallelism).

use tsdata::collection::{synthetic_collection, CollectionSpec};
use tsdata::dataset::SplitDataset;

/// Resolved experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Collection size multiplier.
    pub size_factor: f64,
    /// Restarts for stochastic methods.
    pub runs: usize,
    /// Iteration cap for iterative methods.
    pub max_iter: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Threads for pairwise matrices.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            size_factor: 0.5,
            runs: 3,
            max_iter: 30,
            seed: 0x5ADE,
            threads: std::thread::available_parallelism().map_or(4, usize::from),
        }
    }
}

impl ExperimentConfig {
    /// Reads the configuration from the environment, falling back to
    /// defaults for unset or unparsable variables.
    #[must_use]
    pub fn from_env() -> Self {
        let d = ExperimentConfig::default();
        ExperimentConfig {
            size_factor: env_parse("KSHAPE_SIZE_FACTOR", d.size_factor),
            runs: env_parse("KSHAPE_RUNS", d.runs),
            max_iter: env_parse("KSHAPE_MAX_ITER", d.max_iter),
            seed: env_parse("KSHAPE_SEED", d.seed),
            threads: env_parse("KSHAPE_THREADS", d.threads),
        }
    }

    /// Builds the 48-dataset collection at this configuration's scale.
    #[must_use]
    pub fn collection(&self) -> Vec<SplitDataset> {
        synthetic_collection(&CollectionSpec {
            seed: self.seed,
            size_factor: self.size_factor,
        })
    }
}

fn env_parse<T: std::str::FromStr + Copy>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::ExperimentConfig;

    #[test]
    fn defaults_are_sane() {
        let c = ExperimentConfig::default();
        assert!(c.size_factor > 0.0);
        assert!(c.runs >= 1);
        assert!(c.max_iter >= 1);
        assert!(c.threads >= 1);
    }

    #[test]
    fn collection_builds_48_datasets() {
        let c = ExperimentConfig {
            size_factor: 0.34,
            ..Default::default()
        };
        assert_eq!(c.collection().len(), 48);
    }
}
