//! Algorithm variants that only the evaluation needs.
//!
//! The main one is **k-Shape+DTW** (Table 3): k-Shape with its assignment
//! distance replaced by DTW while keeping shape extraction for centroids.
//! The paper includes it to show that grafting an "obviously good" distance
//! onto k-Shape *hurts* — the distance and the centroid method must match.

use tsrand::StdRng;

use kshape::extraction::{shape_extraction, EigenMethod};
use kshape::init::random_assignment;
use tsdist::dtw::dtw_distance;

/// Result of a k-Shape+DTW run (labels plus bookkeeping).
#[derive(Debug, Clone)]
pub struct KShapeDtwResult {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether memberships converged before the cap.
    pub converged: bool,
}

/// k-Shape with DTW as the assignment distance (Table 3's `k-Shape+DTW`).
///
/// Refinement still uses shape extraction (Algorithm 2) so only the
/// distance measure differs from the real k-Shape.
///
/// # Panics
///
/// Panics if `series` is empty or ragged, `k == 0`, or `k > n`.
#[must_use]
pub fn kshape_dtw(series: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> KShapeDtwResult {
    let n = series.len();
    assert!(n > 0, "k-Shape+DTW requires at least one series");
    assert!(k > 0 && k <= n, "k must be in 1..=n");
    let m = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == m),
        "all series must have equal length"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = random_assignment(n, k, &mut rng);
    let mut centroids = vec![vec![0.0; m]; k];
    let mut dists = vec![0.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iter {
        iterations += 1;
        #[allow(clippy::needless_range_loop)]
        for j in 0..k {
            let members: Vec<&[f64]> = series
                .iter()
                .zip(labels.iter())
                .filter(|&(_, &l)| l == j)
                .map(|(s, _)| s.as_slice())
                .collect();
            if members.is_empty() {
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN distance"))
                    .map_or(0, |(i, _)| i);
                labels[worst] = j;
                centroids[j] = tsdata::normalize::z_normalize(&series[worst]);
                continue;
            }
            centroids[j] = shape_extraction(&members, &centroids[j], EigenMethod::Full);
        }
        let mut changed = false;
        for (i, s) in series.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                let d = dtw_distance(s, c, None);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    KShapeDtwResult {
        labels,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::kshape_dtw;
    use tsdata::normalize::z_normalize;

    #[test]
    fn runs_and_produces_valid_labels() {
        let mut series = Vec::new();
        for j in 0..4 {
            let up: Vec<f64> = (0..32).map(|i| (i + j) as f64).collect();
            let bump: Vec<f64> = (0..32)
                .map(|i| (-((i as f64 - 12.0 - j as f64) / 3.0).powi(2)).exp())
                .collect();
            series.push(z_normalize(&up));
            series.push(z_normalize(&bump));
        }
        let r = kshape_dtw(&series, 2, 30, 1);
        assert_eq!(r.labels.len(), 8);
        assert!(r.labels.iter().all(|&l| l < 2));
        assert!(r.iterations >= 1);
    }

    #[test]
    #[should_panic(expected = "1..=n")]
    fn rejects_bad_k() {
        let _ = kshape_dtw(&[vec![1.0, 2.0]], 2, 10, 0);
    }
}
