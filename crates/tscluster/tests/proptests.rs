//! Property-based tests for the baseline clustering algorithms.

use proptest::prelude::*;
use tscluster::hierarchical::{agglomerate, Linkage};
use tscluster::kmeans::{kmeans, KMeansConfig};
use tscluster::ksc::KscDistance;
use tscluster::matrix::DissimilarityMatrix;
use tscluster::pam::pam;
use tsdist::EuclideanDistance;

fn dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (3usize..12, 2usize..12).prop_flat_map(|(n, m)| {
        prop::collection::vec(prop::collection::vec(-50.0f64..50.0, m..=m), n..=n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn kmeans_invariants(series in dataset(), seed in 0u64..100, k in 1usize..4) {
        let k = k.min(series.len());
        let r = kmeans(&series, &EuclideanDistance, &KMeansConfig { k, seed, max_iter: 30 });
        prop_assert_eq!(r.labels.len(), series.len());
        prop_assert!(r.labels.iter().all(|&l| l < k));
        prop_assert!(r.inertia >= 0.0);
        for j in 0..k {
            prop_assert!(r.labels.contains(&j), "cluster {j} empty");
        }
    }

    #[test]
    fn kmeans_inertia_monotone_in_k(series in dataset(), seed in 0u64..50) {
        let n = series.len();
        let r1 = kmeans(&series, &EuclideanDistance, &KMeansConfig { k: 1, seed, max_iter: 50 });
        let rn = kmeans(&series, &EuclideanDistance, &KMeansConfig { k: n, seed, max_iter: 50 });
        // k = n puts every point alone: inertia 0; k = 1 is an upper bound.
        prop_assert!(rn.inertia <= r1.inertia + 1e-9);
        prop_assert!(rn.inertia < 1e-9);
    }

    #[test]
    fn pam_cost_is_local_optimum(series in dataset()) {
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let n = series.len();
        let r = pam(&matrix, 2.min(n), 100);
        prop_assert!(r.converged);
        // No single medoid replacement improves the cost.
        let cost_of = |meds: &[usize]| -> f64 {
            (0..n)
                .map(|i| meds.iter().map(|&mi| matrix.get(i, mi)).fold(f64::INFINITY, f64::min))
                .sum()
        };
        for slot in 0..r.medoids.len() {
            for cand in 0..n {
                if r.medoids.contains(&cand) {
                    continue;
                }
                let mut trial = r.medoids.clone();
                trial[slot] = cand;
                prop_assert!(cost_of(&trial) >= r.cost - 1e-7);
            }
        }
    }

    #[test]
    fn dendrogram_cut_counts_are_exact(series in dataset(), k in 1usize..6) {
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let dendro = agglomerate(&matrix, Linkage::Average);
        let k = k.min(series.len());
        let labels = dendro.cut(k);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), k);
        prop_assert!(labels.iter().all(|&l| l < k));
    }

    #[test]
    fn single_linkage_heights_nondecreasing(series in dataset()) {
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let dendro = agglomerate(&matrix, Linkage::Single);
        let heights: Vec<f64> = dendro.merges().iter().map(|m| m.height).collect();
        for w in heights.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn linkage_height_ordering(series in dataset()) {
        // For the same data, single-linkage merge heights never exceed
        // complete-linkage heights at the same step count... that is not
        // true step-by-step in general, but the FINAL merge height is
        // ordered: single <= average <= complete.
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let last = |l: Linkage| -> f64 {
            agglomerate(&matrix, l).merges().last().map_or(0.0, |m| m.height)
        };
        let s = last(Linkage::Single);
        let a = last(Linkage::Average);
        let c = last(Linkage::Complete);
        prop_assert!(s <= a + 1e-9, "single {s} vs average {a}");
        prop_assert!(a <= c + 1e-9, "average {a} vs complete {c}");
    }

    #[test]
    fn ksc_distance_range_and_identity(series in dataset()) {
        let x = &series[0];
        let y = &series[1];
        let (d, _) = KscDistance::dist_shift(x, y);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&d));
        let (d_self, shift) = KscDistance::dist_shift(x, x);
        prop_assert!(d_self < 1e-6);
        prop_assert_eq!(shift, 0);
    }
}
