//! Property-based tests for the baseline clustering algorithms (tscheck
//! harness).

use tscheck::Gen;
use tscluster::hierarchical::{agglomerate, Linkage};
use tscluster::ksc::KscDistance;
use tscluster::{
    kmeans_with, pam_with, DissimilarityMatrix, KMeansConfig, KMeansOptions, PamOptions,
};
use tsdist::EuclideanDistance;

fn dataset(g: &mut Gen) -> Vec<Vec<f64>> {
    let n = g.usize_in(3..12);
    let m = g.usize_in(2..12);
    (0..n).map(|_| g.vec_f64(m..=m, -50.0..50.0)).collect()
}

tscheck::props! {
    #[cases(40)]
    fn kmeans_invariants(g) {
        let series = dataset(g);
        let seed = g.u64_in(0..100);
        let k = g.usize_in(1..4).min(series.len());
        let opts = KMeansOptions::from(KMeansConfig { k, seed, max_iter: 30 });
        let r = kmeans_with(&series, &EuclideanDistance, &opts).expect("generated data is clean");
        assert_eq!(r.labels.len(), series.len());
        assert!(r.labels.iter().all(|&l| l < k));
        assert!(r.inertia >= 0.0);
        for j in 0..k {
            assert!(r.labels.contains(&j), "cluster {j} empty");
        }
    }

    #[cases(40)]
    fn kmeans_inertia_monotone_in_k(g) {
        let series = dataset(g);
        let seed = g.u64_in(0..50);
        let n = series.len();
        let opts1 = KMeansOptions::from(KMeansConfig { k: 1, seed, max_iter: 50 });
        let r1 = kmeans_with(&series, &EuclideanDistance, &opts1).expect("generated data is clean");
        let optsn = KMeansOptions::from(KMeansConfig { k: n, seed, max_iter: 50 });
        let rn = kmeans_with(&series, &EuclideanDistance, &optsn).expect("generated data is clean");
        // k = n puts every point alone: inertia 0; k = 1 is an upper bound.
        assert!(rn.inertia <= r1.inertia + 1e-9);
        assert!(rn.inertia < 1e-9);
    }

    #[cases(40)]
    fn pam_cost_is_local_optimum(g) {
        let series = dataset(g);
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let n = series.len();
        let r = pam_with(&matrix, &PamOptions::new(2.min(n)).with_max_iter(100))
            .expect("finite matrix");
        assert!(r.converged);
        // No single medoid replacement improves the cost.
        let cost_of = |meds: &[usize]| -> f64 {
            (0..n)
                .map(|i| meds.iter().map(|&mi| matrix.get(i, mi)).fold(f64::INFINITY, f64::min))
                .sum()
        };
        for slot in 0..r.medoids.len() {
            for cand in 0..n {
                if r.medoids.contains(&cand) {
                    continue;
                }
                let mut trial = r.medoids.clone();
                trial[slot] = cand;
                assert!(cost_of(&trial) >= r.cost - 1e-7);
            }
        }
    }

    #[cases(40)]
    fn dendrogram_cut_counts_are_exact(g) {
        let series = dataset(g);
        let k = g.usize_in(1..6).min(series.len());
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let dendro = agglomerate(&matrix, Linkage::Average);
        let labels = dendro.cut(k);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), k);
        assert!(labels.iter().all(|&l| l < k));
    }

    #[cases(40)]
    fn single_linkage_heights_nondecreasing(g) {
        let series = dataset(g);
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let dendro = agglomerate(&matrix, Linkage::Single);
        let heights: Vec<f64> = dendro.merges().iter().map(|m| m.height).collect();
        for w in heights.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[cases(40)]
    fn linkage_height_ordering(g) {
        // For the same data, single-linkage merge heights never exceed
        // complete-linkage heights at the same step count... that is not
        // true step-by-step in general, but the FINAL merge height is
        // ordered: single <= average <= complete.
        let series = dataset(g);
        let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let last = |l: Linkage| -> f64 {
            agglomerate(&matrix, l).merges().last().map_or(0.0, |m| m.height)
        };
        let s = last(Linkage::Single);
        let a = last(Linkage::Average);
        let c = last(Linkage::Complete);
        assert!(s <= a + 1e-9, "single {s} vs average {a}");
        assert!(a <= c + 1e-9, "average {a} vs complete {c}");
    }

    #[cases(40)]
    fn ksc_distance_range_and_identity(g) {
        let series = dataset(g);
        let x = &series[0];
        let y = &series[1];
        let (d, _) = KscDistance::dist_shift(x, y);
        assert!((-1e-9..=1.0 + 1e-9).contains(&d));
        let (d_self, shift) = KscDistance::dist_shift(x, x);
        assert!(d_self < 1e-6);
        assert_eq!(shift, 0);
    }
}
