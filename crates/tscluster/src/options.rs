//! Unified options objects for every tscluster algorithm.
//!
//! Each clusterer historically grew a triplet — the panicking entry
//! point, a fallible `try_*`, and a budget-aware `try_*_with_control` —
//! and PR 5 adds telemetry as a fourth orthogonal concern. Instead of a
//! fourth positional parameter, every algorithm now takes one borrowed
//! options object bundling its configuration with the three optional
//! execution concerns:
//!
//! * `budget` — a [`tsrun::Budget`] (deadline, iteration cap, cost cap),
//! * `cancel` — a [`tsrun::CancelToken`] for cooperative cancellation,
//! * `recorder` — a [`tsobs::Recorder`] for spans, counters, and
//!   per-iteration convergence telemetry; `None` keeps telemetry
//!   statically disarmed at near-zero cost.
//!
//! The `*_with` entry points built on these objects return `Ok` with a
//! `converged: false` result when the iteration cap is hit (the caller
//! inspects the flag), reserving `Err` for validation errors,
//! [`tserror::TsError::Stopped`], and numerical failures. The old
//! triplets survive as thin deprecated wrappers with their historical
//! `NotConverged`-as-error behavior.

use crate::dba::KDbaConfig;
use crate::fuzzy::FuzzyConfig;
use crate::hierarchical::HierarchicalConfig;
use crate::kmeans::KMeansConfig;
use crate::ksc::KscConfig;
use crate::matrix::MatrixConfig;
use crate::pam::PamConfig;
use crate::spectral::SpectralConfig;

/// Generates one options struct: the algorithm configuration plus the
/// three optional execution concerns (budget, cancellation, telemetry),
/// with builders, `From<Config>`, and the internal `control()` / `obs()`
/// accessors the entry points use.
macro_rules! cluster_options {
    (
        $(#[$outer:meta])*
        $name:ident, $config:ident, $fit:literal,
        { $($(#[$mdoc:meta])* fn $method:ident($field:ident: $fty:ty);)* }
    ) => {
        $(#[$outer])*
        #[derive(Clone, Default)]
        pub struct $name<'a> {
            /// Algorithm configuration (cluster count, seed, caps, ...).
            pub config: $config,
            /// Optional execution budget; `None` means unlimited.
            pub budget: Option<tsrun::Budget>,
            /// Optional cooperative cancellation token.
            pub cancel: Option<tsrun::CancelToken>,
            /// Optional telemetry recorder; `None` keeps telemetry
            /// disarmed (no clock reads, no allocations).
            pub recorder: Option<&'a dyn tsobs::Recorder>,
        }

        impl std::fmt::Debug for $name<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("config", &self.config)
                    .field("budget", &self.budget)
                    .field("cancel", &self.cancel.is_some())
                    .field("recorder", &self.recorder.is_some())
                    .finish()
            }
        }

        impl From<$config> for $name<'_> {
            fn from(config: $config) -> Self {
                Self {
                    config,
                    ..Default::default()
                }
            }
        }

        impl<'a> $name<'a> {
            /// Default configuration with the given cluster count `k`.
            #[must_use]
            pub fn new(k: usize) -> Self {
                let mut config = $config::default();
                config.k = k;
                Self {
                    config,
                    ..Default::default()
                }
            }

            $(
                $(#[$mdoc])*
                #[must_use]
                pub fn $method(mut self, $field: $fty) -> Self {
                    self.config.$field = $field;
                    self
                }
            )*

            /// Attaches an execution budget.
            #[must_use]
            pub fn with_budget(mut self, budget: tsrun::Budget) -> Self {
                self.budget = Some(budget);
                self
            }

            /// Attaches a cancellation token.
            #[must_use]
            pub fn with_cancel(mut self, cancel: tsrun::CancelToken) -> Self {
                self.cancel = Some(cancel);
                self
            }

            /// Attaches a telemetry recorder. Recorders only *observe*:
            /// an armed run produces bit-identical results to a disarmed
            /// one.
            #[must_use]
            pub fn with_recorder(mut self, recorder: &'a dyn tsobs::Recorder) -> Self {
                self.recorder = Some(recorder);
                self
            }

            /// Builds the run control from the budget and cancel fields.
            #[must_use]
            pub(crate) fn control(&self) -> tsrun::RunControl {
                tsrun::RunControl::from_parts(self.budget, self.cancel.clone())
            }

            /// The (possibly disarmed) observation handle.
            pub(crate) fn obs(&self) -> tsobs::Obs<'a> {
                tsobs::Obs::from_option(self.recorder)
            }
        }

        impl $name<'_> {
            /// Span name the algorithm's fit entry point records under.
            pub const FIT_SPAN: &'static str = $fit;
        }
    };
}

cluster_options!(
    /// Options for [`crate::kmeans::kmeans_with`] (the k-AVG family).
    KMeansOptions, KMeansConfig, "kmeans.fit",
    {
        /// Sets the RNG seed for the initial assignment.
        fn with_seed(seed: u64);
        /// Sets the Lloyd iteration cap.
        fn with_max_iter(max_iter: usize);
    }
);

cluster_options!(
    /// Options for [`crate::dba::kdba_with`] (k-DBA).
    KDbaOptions, KDbaConfig, "kdba.fit",
    {
        /// Sets the RNG seed for the initial assignment.
        fn with_seed(seed: u64);
        /// Sets the clustering iteration cap.
        fn with_max_iter(max_iter: usize);
        /// Sets the Sakoe–Chiba window for all DTW computations.
        fn with_window(window: Option<usize>);
    }
);

cluster_options!(
    /// Options for [`crate::ksc::ksc_with`] (K-Spectral Centroid).
    KscOptions, KscConfig, "ksc.fit",
    {
        /// Sets the RNG seed for the initial assignment.
        fn with_seed(seed: u64);
        /// Sets the refinement iteration cap.
        fn with_max_iter(max_iter: usize);
    }
);

cluster_options!(
    /// Options for [`crate::fuzzy::fuzzy_cmeans_with`] (fuzzy c-means).
    FuzzyOptions, FuzzyConfig, "fuzzy_cmeans.fit",
    {
        /// Sets the RNG seed for the initial memberships.
        fn with_seed(seed: u64);
        /// Sets the refinement iteration cap.
        fn with_max_iter(max_iter: usize);
        /// Sets the fuzzifier `m > 1`.
        fn with_fuzziness(fuzziness: f64);
        /// Sets the convergence tolerance on membership change.
        fn with_tol(tol: f64);
    }
);

cluster_options!(
    /// Options for [`crate::pam::pam_with`] (Partitioning Around
    /// Medoids).
    PamOptions, PamConfig, "pam.fit",
    {
        /// Sets the SWAP sweep cap.
        fn with_max_iter(max_iter: usize);
    }
);

cluster_options!(
    /// Options for [`crate::spectral::spectral_cluster_with`].
    SpectralOptions, SpectralConfig, "spectral.fit",
    {
        /// Sets the RNG seed for the embedding k-means.
        fn with_seed(seed: u64);
        /// Sets the embedding k-means iteration cap.
        fn with_max_iter(max_iter: usize);
        /// Sets the kernel bandwidth (`None` = median heuristic).
        fn with_sigma(sigma: Option<f64>);
    }
);

cluster_options!(
    /// Options for [`crate::hierarchical::hierarchical_cluster_with`].
    HierarchicalOptions, HierarchicalConfig, "hierarchical.fit",
    {
        /// Sets the linkage criterion.
        fn with_linkage(linkage: crate::hierarchical::Linkage);
    }
);

/// Options for [`crate::matrix::DissimilarityMatrix::compute_with`].
///
/// The matrix builder has no cluster count; its "configuration" is the
/// worker thread count. Use `MatrixOptions::default()` for a serial
/// build, or [`MatrixOptions::with_threads`] for a row-striped parallel
/// one.
#[derive(Clone, Default)]
pub struct MatrixOptions<'a> {
    /// Build configuration (worker thread count).
    pub config: MatrixConfig,
    /// Optional execution budget; `None` means unlimited.
    pub budget: Option<tsrun::Budget>,
    /// Optional cooperative cancellation token.
    pub cancel: Option<tsrun::CancelToken>,
    /// Optional telemetry recorder; `None` keeps telemetry disarmed.
    pub recorder: Option<&'a dyn tsobs::Recorder>,
}

impl std::fmt::Debug for MatrixOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixOptions")
            .field("config", &self.config)
            .field("budget", &self.budget)
            .field("cancel", &self.cancel.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl<'a> MatrixOptions<'a> {
    /// Sets the worker thread count (`<= 1` builds serially).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Attaches an execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: tsrun::Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: tsrun::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a telemetry recorder.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn tsobs::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the run control from the budget and cancel fields.
    #[must_use]
    pub(crate) fn control(&self) -> tsrun::RunControl {
        tsrun::RunControl::from_parts(self.budget, self.cancel.clone())
    }

    /// The (possibly disarmed) observation handle.
    pub(crate) fn obs(&self) -> tsobs::Obs<'a> {
        tsobs::Obs::from_option(self.recorder)
    }
}

/// Root-mean-square style centroid movement between two refinement
/// rounds: `sqrt(Σ_j Σ_t (prev[j][t] − next[j][t])²)`. Telemetry-only —
/// callers compute it exclusively when a recorder is armed.
pub(crate) fn centroid_shift(prev: &[Vec<f64>], next: &[Vec<f64>]) -> f64 {
    prev.iter()
        .zip(next.iter())
        .flat_map(|(p, n)| p.iter().zip(n.iter()))
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::{centroid_shift, KMeansOptions, MatrixOptions, PamOptions};

    #[test]
    fn builders_compose() {
        let token = tsrun::CancelToken::new();
        let opts = KMeansOptions::new(3)
            .with_seed(7)
            .with_max_iter(5)
            .with_budget(tsrun::Budget::unlimited().with_iteration_cap(9))
            .with_cancel(token);
        assert_eq!(opts.config.k, 3);
        assert_eq!(opts.config.seed, 7);
        assert_eq!(opts.config.max_iter, 5);
        assert!(opts.budget.is_some());
        assert!(opts.cancel.is_some());
        assert!(opts.recorder.is_none());
        let dbg = format!("{opts:?}");
        assert!(dbg.contains("recorder: false"), "{dbg}");
    }

    #[test]
    fn from_config_round_trips() {
        let cfg = crate::pam::PamConfig { k: 4, max_iter: 17 };
        let opts = PamOptions::from(cfg);
        assert_eq!(opts.config.k, 4);
        assert_eq!(opts.config.max_iter, 17);
    }

    #[test]
    fn matrix_options_default_is_serial() {
        let opts = MatrixOptions::default();
        assert_eq!(opts.config.threads, 1);
        assert!(!format!("{opts:?}").is_empty());
    }

    #[test]
    fn centroid_shift_is_euclidean() {
        let a = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let b = vec![vec![3.0, 4.0], vec![1.0, 1.0]];
        assert!((centroid_shift(&a, &b) - 5.0).abs() < 1e-12);
        assert_eq!(centroid_shift(&a, &a), 0.0);
    }
}
