//! Out-of-core k-means (the scalable `k-AVG` baseline) streamed over a
//! [`SeriesView`] row source.
//!
//! The Figure-12 runtime comparison pits k-Shape against `k-AVG+ED` at
//! dataset sizes where neither side may hold `n` uncompressed rows in
//! RAM. [`kmeans_store`] is the Lloyd iteration of
//! [`crate::kmeans::kmeans_with`] restructured the same way
//! `kshape::outofcore::fit_store` restructures k-Shape: one streaming
//! row pass per iteration that *fuses* assignment with the running
//! per-cluster sums the next refinement's arithmetic means need.
//! Working memory is `O(k·m)` regardless of the row count.
//!
//! Over an in-memory slice view this is floating-point-identical to
//! `kmeans_with` — same initial assignment, same ascending-row sum
//! accumulation, same reseed rule, same tie-breaking — which the tests
//! pin down bit for bit. The only divergence appears on spilled `f32`
//! stores, where rows were narrowed on write.

use tsdata::store::SeriesView;
use tsdist::Distance;
use tserror::{ensure_k, TsError, TsResult};
use tsobs::IterationEvent;
use tsrand::StdRng;
use tsrun::RunControl;

use crate::kmeans::KMeansResult;
use crate::options::KMeansOptions;
use kshape::init::random_assignment;

/// Streaming Lloyd iteration over any [`SeriesView`] with a pluggable
/// assignment distance — the out-of-core counterpart of
/// [`crate::kmeans::kmeans_with`].
///
/// # Errors
///
/// * [`TsError::EmptyInput`] when the view holds no rows;
/// * [`TsError::InvalidK`] unless `1 <= k <= n`;
/// * [`TsError::Stopped`] when the attached budget or cancellation
///   trips (carrying the best labeling so far);
/// * [`TsError::CorruptData`] if a spilled segment fails validation
///   mid-stream.
pub fn kmeans_store<V: SeriesView + ?Sized, D: Distance + ?Sized>(
    view: &V,
    dist: &D,
    opts: &KMeansOptions<'_>,
) -> TsResult<KMeansResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let config = &opts.config;
    let n = view.n_series();
    let m = view.series_len();
    if n == 0 || m == 0 {
        return Err(TsError::EmptyInput);
    }
    ensure_k(config.k, n)?;
    let k = config.k;
    let fit_span = obs.span("kmeans.ooc.fit");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels = random_assignment(n, k, &mut rng);
    let mut centroids = vec![vec![0.0f64; m]; k];
    let mut dists = vec![0.0f64; n];
    let mut row_scratch: Vec<f64> = Vec::new();

    // Fused accumulation state: the per-cluster element sums and member
    // counts the next refinement turns into arithmetic means. Pass 0
    // seeds them from the initial random assignment; every later
    // assignment sweep refills them as it relabels rows.
    let mut sums = vec![vec![0.0f64; m]; k];
    let mut counts = vec![0usize; k];
    for (i, &label) in labels.iter().enumerate() {
        let row = view.try_row(i, &mut row_scratch)?;
        counts[label] += 1;
        for (acc, v) in sums[label].iter_mut().zip(row.iter()) {
            *acc += v;
        }
    }

    let mut iterations = 0usize;
    let mut converged = false;
    let pair_cost = dist.cost_hint(m);
    // Armed-only per-cluster squared centroid movement, accumulated at
    // each centroid write instead of cloning the previous set.
    let mut deltas = if obs.is_armed() {
        Some(vec![0.0f64; k])
    } else {
        None
    };
    while iterations < config.max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        iterations += 1;
        if let Some(d) = deltas.as_deref_mut() {
            d.fill(0.0);
        }

        // Refinement: arithmetic means from the accumulated sums.
        for j in 0..k {
            if counts[j] == 0 {
                // Re-seed an empty cluster with the worst-served row.
                obs.counter("kmeans.empty_cluster_reseeds", 1);
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                let row = view.try_row(worst, &mut row_scratch)?;
                if let Some(d) = deltas.as_deref_mut() {
                    d[j] = l2_delta_sq(&centroids[j], row);
                }
                centroids[j].copy_from_slice(row);
                labels[worst] = j;
            } else {
                let inv = 1.0 / counts[j] as f64;
                if let Some(d) = deltas.as_deref_mut() {
                    d[j] = centroids[j]
                        .iter()
                        .zip(sums[j].iter())
                        .map(|(c, s)| {
                            let next = s * inv;
                            (c - next) * (c - next)
                        })
                        .sum();
                }
                for (c, s) in centroids[j].iter_mut().zip(sums[j].iter()) {
                    *c = s * inv;
                }
            }
        }

        // Fused assignment sweep: relabel each row and fold it into its
        // new cluster's sums for the next refinement.
        for s in &mut sums {
            s.iter_mut().for_each(|v| *v = 0.0);
        }
        counts.iter_mut().for_each(|c| *c = 0);
        let mut changed = 0usize;
        for i in 0..n {
            if let Err(reason) = ctrl.charge(k as u64 * pair_cost) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let row = view.try_row(i, &mut row_scratch)?;
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                let d = dist.dist(row, c);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed += 1;
            }
            counts[best_j] += 1;
            for (acc, v) in sums[best_j].iter_mut().zip(row.iter()) {
                *acc += v;
            }
        }
        if obs.is_armed() {
            let shift = deltas
                .as_deref()
                .map_or(f64::NAN, |d| d.iter().sum::<f64>().sqrt());
            obs.iteration(&IterationEvent {
                algorithm: "kmeans-ooc",
                iter: iterations - 1,
                inertia: dists.iter().map(|d| d * d).sum(),
                moved: changed,
                centroid_shift: shift,
            });
        }
        if changed == 0 {
            converged = true;
            break;
        }
    }

    obs.counter("kmeans.iterations", iterations as u64);
    fit_span.end();
    ctrl.report_cost(obs);
    Ok(KMeansResult {
        labels,
        centroids,
        iterations,
        converged,
        inertia: dists.iter().map(|d| d * d).sum(),
    })
}

/// Squared L2 distance between one cluster's outgoing and incoming
/// centroid — telemetry only, armed path only.
fn l2_delta_sq(prev: &[f64], next: &[f64]) -> f64 {
    prev.iter()
        .zip(next.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::kmeans_store;
    use crate::kmeans::kmeans_with;
    use crate::options::KMeansOptions;
    use tsdata::store::{ElemType, SeriesStore, SpillConfig};
    use tsdist::EuclideanDistance;
    use tserror::TsError;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for j in 0..6 {
            let eps = j as f64 * 0.01;
            out.push(vec![0.0 + eps, 0.1, 0.2 - eps, 0.1]);
            out.push(vec![9.0 - eps, 9.1, 9.2 + eps, 9.1]);
        }
        out
    }

    #[test]
    fn slice_view_is_bit_identical_to_in_memory_kmeans() {
        let series = two_blobs();
        let opts = KMeansOptions::new(2).with_seed(7);
        let a = kmeans_with(&series, &EuclideanDistance, &opts).expect("in-memory");
        let b = kmeans_store(&series[..], &EuclideanDistance, &opts).expect("streaming");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    #[test]
    fn spilled_store_matches_resident() {
        let series = two_blobs();
        let resident = SeriesStore::from_rows(&series, ElemType::F64).expect("build");
        let dir = std::env::temp_dir().join(format!("ooc_kmeans_spill_{}", std::process::id()));
        let mut spilled = SeriesStore::spilled(
            4,
            ElemType::F64,
            SpillConfig::new(&dir)
                .rows_per_segment(3)
                .resident_segments(1),
        )
        .expect("spill tier");
        for row in &series {
            spilled.push_row(row).expect("push");
        }
        let opts = KMeansOptions::new(2).with_seed(7);
        let a = kmeans_store(&resident, &EuclideanDistance, &opts).expect("resident");
        let b = kmeans_store(&spilled, &EuclideanDistance, &opts).expect("spilled");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    #[test]
    fn typed_errors_for_bad_input() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(matches!(
            kmeans_store(&empty[..], &EuclideanDistance, &KMeansOptions::new(1)),
            Err(TsError::EmptyInput)
        ));
        let series = two_blobs();
        assert!(matches!(
            kmeans_store(
                &series[..],
                &EuclideanDistance,
                &KMeansOptions::new(series.len() + 1)
            ),
            Err(TsError::InvalidK { .. })
        ));
    }
}
