//! Degradation-ladder reseeder for the streaming k-Shape engine.
//!
//! [`kshape::stream::StreamKShape`] self-heals from drift by refitting
//! over its recent window through a pluggable
//! [`Reseeder`](kshape::stream::Reseeder). The default reseeder is batch
//! k-Shape; [`LadderReseeder`] upgrades that to the full degradation
//! ladder ([`crate::cluster_with_ladder`]), so a reseed under pressure —
//! a tight budget mid-overload — descends to SBD-medoid or `k-AVG+ED`
//! instead of failing and leaving the stream on stale centroids.
//!
//! Medoid and mean rungs return raw (or merely averaged) series as
//! centroids; the stream engine z-normalizes whatever a reseeder returns
//! before installing, so every rung's output is a valid stream centroid.

use kshape::stream::{ReseedFit, ReseedRequest, Reseeder};
use tserror::TsResult;

use crate::ladder::{cluster_with_ladder, LadderOptions, LadderRung};

/// A [`Reseeder`] backed by the degradation ladder.
#[derive(Debug, Clone, Copy)]
pub struct LadderReseeder {
    /// Rung to start from (descends from here under pressure).
    pub start: LadderRung,
    /// Whether budget/cancel stops descend instead of erroring out.
    pub descend_on_stop: bool,
}

impl Default for LadderReseeder {
    fn default() -> Self {
        LadderReseeder {
            start: LadderRung::KShape,
            descend_on_stop: true,
        }
    }
}

impl Reseeder for LadderReseeder {
    fn reseed(&mut self, req: &ReseedRequest<'_>) -> TsResult<ReseedFit> {
        let mut opts = LadderOptions::new(req.k)
            .with_seed(req.seed)
            .with_max_iter(req.max_iter)
            .with_start(self.start)
            .with_descend_on_stop(self.descend_on_stop);
        if let Some(b) = req.budget {
            opts = opts.with_budget(b);
        }
        let outcome = cluster_with_ladder(req.window, &opts)?;
        Ok(ReseedFit {
            labels: outcome.labels,
            centroids: outcome.centroids,
        })
    }

    fn name(&self) -> &'static str {
        "ladder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshape::stream::{PushOutcome, StreamConfig, StreamKShape};
    use tsrand::{Rng, StdRng};
    use tsrun::Budget;

    fn two_class_series(i: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..m)
            .map(|t| {
                let x = t as f64 / m as f64 * std::f64::consts::TAU;
                let base = if i.is_multiple_of(2) {
                    (2.0 * x).sin()
                } else {
                    (3.0 * x).cos()
                };
                base + 0.1 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn ladder_reseeder_bootstraps_the_stream() {
        let config = StreamConfig::new(2, 32).with_warmup(12).with_seed(5);
        let mut engine = StreamKShape::new(config).unwrap();
        engine.set_reseeder(Box::new(LadderReseeder::default()));
        let mut rng = StdRng::seed_from_u64(9);
        let mut bootstrapped = false;
        for i in 0..80 {
            match engine.push(&two_class_series(i, 32, &mut rng)) {
                PushOutcome::Bootstrapped { labels } => {
                    bootstrapped = true;
                    assert_eq!(labels.len(), 12);
                }
                PushOutcome::Quarantined(r) => panic!("unexpected quarantine {r:?}"),
                _ => {}
            }
        }
        assert!(bootstrapped);
        for c in engine.centroids() {
            assert!(c.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn medoid_rung_centroids_are_z_normalized_on_install() {
        // Starting the ladder at SBD-medoid returns raw member series as
        // centroids; the stream engine must z-normalize them before
        // installing.
        let config = StreamConfig::new(2, 32).with_warmup(12).with_seed(5);
        let mut engine = StreamKShape::new(config).unwrap();
        engine.set_reseeder(Box::new(LadderReseeder {
            start: LadderRung::SbdMedoid,
            descend_on_stop: true,
        }));
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..40 {
            // Offset + amplitude keep raw series far from z-normalized.
            let x: Vec<f64> = two_class_series(i, 32, &mut rng)
                .into_iter()
                .map(|v| 10.0 + 5.0 * v)
                .collect();
            engine.push(&x);
        }
        assert!(engine.stats().bootstrapped);
        for c in engine.centroids() {
            assert!(c.iter().all(|v| v.is_finite()));
            let m = c.len() as f64;
            let mean: f64 = c.iter().sum::<f64>() / m;
            let var: f64 = c.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m;
            assert!(mean.abs() < 1e-9, "mean {mean}");
            assert!((var.sqrt() - 1.0).abs() < 1e-9, "std {}", var.sqrt());
        }
    }

    #[test]
    fn starved_budget_never_panics_and_stays_pre_bootstrap() {
        // A cost budget too small for even the cheapest rung fails every
        // reseed attempt; the engine keeps buffering (bounded) and
        // retries — no panic, no partial state.
        let config = StreamConfig::new(2, 32).with_warmup(12).with_seed(5);
        let mut engine = StreamKShape::new(config).unwrap();
        engine.set_reseeder(Box::new(LadderReseeder::default()));
        engine.set_refresh_budget(Some(Budget::unlimited().with_cost_cap(1)));
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..40 {
            match engine.push(&two_class_series(i, 32, &mut rng)) {
                PushOutcome::Buffered { .. } => {}
                other => panic!("expected Buffered under starved budget, got {other:?}"),
            }
        }
        assert!(!engine.stats().bootstrapped);
        assert_eq!(engine.stats().fits, 0);
        // Lifting the budget heals the stream on the next arrival.
        engine.set_refresh_budget(None);
        let outcome = engine.push(&two_class_series(40, 32, &mut rng));
        assert!(
            matches!(outcome, PushOutcome::Bootstrapped { .. }),
            "{outcome:?}"
        );
    }
}
