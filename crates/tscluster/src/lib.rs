//! Baseline clustering algorithms for the k-Shape evaluation
//! (Sections 2.4, 4, and 5 of the paper).
//!
//! Scalable baselines (Table 3):
//!
//! * [`kmeans`] — the k-means / k-AVG family with a pluggable distance and
//!   arithmetic-mean centroids (`k-AVG+ED`, `k-AVG+SBD`, `k-AVG+DTW`),
//! * [`dba`] — DTW Barycenter Averaging and the `k-DBA` algorithm,
//! * [`ksc`] — K-Spectral Centroid clustering (Yang & Leskovec).
//!
//! Non-scalable baselines (Table 4):
//!
//! * [`pam`] — Partitioning Around Medoids (k-medoids),
//! * [`hierarchical`] — agglomerative clustering with single / average /
//!   complete linkage,
//! * [`spectral`] — normalized spectral clustering (Ng–Jordan–Weiss).
//!
//! [`averaging`] adds the earlier DTW averaging schemes the paper reviews
//! in Section 2.5 (NLAAF, PSA) so the averaging design space is complete;
//! [`fuzzy`] adds the Golay-style fuzzy c-means the related work cites
//! ([28]), parameterized by any distance.
//!
//! [`matrix`] computes the full dissimilarity matrices the non-scalable
//! methods require — the very cost that makes them impractical, which the
//! runtime experiments quantify.
//!
//! Every clusterer ships a fallible `try_*` twin (`try_kmeans`,
//! `try_kdba`, `try_ksc`, `try_pam`, `try_hierarchical_cluster`,
//! `try_spectral_cluster`, `try_fuzzy_cmeans`) that validates inputs once
//! up front and returns a typed [`tserror::TsError`] instead of
//! panicking; the panicking entry points are thin wrappers kept for
//! backward compatibility.
//!
//! The preferred entry point for every algorithm is its `*_with`
//! function taking an options object from [`options`]: the algorithm
//! configuration plus an optional [`tsrun::Budget`], an optional
//! [`tsrun::CancelToken`], and an optional [`tsobs::Recorder`] for
//! structured telemetry (spans, counters, per-iteration convergence
//! events). Hitting the iteration cap is an `Ok` result with
//! `converged: false`; errors are reserved for invalid inputs, tripped
//! controls ([`tserror::TsError::Stopped`]), and numerical failure.
//!
//! ```
//! use tscluster::kmeans::{kmeans_with, KMeansOptions};
//! use tsdist::EuclideanDistance;
//!
//! let series: Vec<Vec<f64>> = vec![vec![0.0, 0.1], vec![0.1, 0.0], vec![9.0, 9.1]];
//! let opts = KMeansOptions::new(2).with_seed(7);
//! let result = kmeans_with(&series, &EuclideanDistance, &opts).unwrap();
//! assert_eq!(result.labels.len(), 3);
//! ```
//!
//! The earlier panicking / `try_*` / `*_with_control` triplets are kept
//! as deprecated wrappers. The lower-level primitives (matrix builders,
//! `agglomerate`, `spectral_embedding`, DBA averaging) stay supported —
//! they are building blocks, not redundant spellings of a fit.
//!
//! [`ladder`] composes the control-aware cores into a degradation ladder
//! (k-Shape → SBD-medoid → k-AVG) with retry-with-reseed per rung.

#![warn(missing_docs)]

pub mod averaging;
pub mod dba;
pub mod fuzzy;
pub mod hierarchical;
pub mod kmeans;
pub mod ksc;
pub mod ladder;
pub mod matrix;
pub mod options;
pub mod outofcore;
pub mod pam;
pub mod spectral;
pub mod stream;

pub use dba::{kdba_with, KDbaConfig, KDbaResult};
pub use fuzzy::{fuzzy_cmeans_with, FuzzyConfig, FuzzyResult};
pub use hierarchical::{hierarchical_cluster_with, HierarchicalConfig, Linkage};
pub use kmeans::{kmeans_with, KMeansConfig, KMeansResult};
pub use ksc::{ksc_with, KscConfig, KscResult};
pub use ladder::{
    cluster_with_ladder, Descent, LadderConfig, LadderOptions, LadderOutcome, LadderRung,
};
pub use matrix::{DissimilarityMatrix, MatrixConfig};
pub use options::{
    FuzzyOptions, HierarchicalOptions, KDbaOptions, KMeansOptions, KscOptions, MatrixOptions,
    PamOptions, SpectralOptions,
};
pub use outofcore::kmeans_store;
pub use pam::{pam_with, PamConfig, PamResult};
pub use spectral::{spectral_cluster_with, SpectralConfig, SpectralResult};
pub use stream::LadderReseeder;
pub use tserror::{TsError, TsResult};
